// Regenerates paper Table 2: Barnes-Hut execution statistics on 32 nodes.
//
// Rows match the paper: total messages and data, then per-phase (sequential
// vs parallel sections) diff traffic, request counts and average response
// times.  Expected shape:
//   * parallel-section messages/data shrink sharply under replication;
//   * parallel response time drops ~3x (contention gone);
//   * sequential-section messages *rise* (forwarded requests + null acks);
//   * sequential response time rises (flow-controlled multicast).
#include "bench_common.hpp"

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  using apps::harness::Mode;
  using util::fmt_count;

  const auto cfg = bh_config();
  print_header("Table 2: Barnes-Hut execution statistics",
               "PPoPP'01 Table 2 (131072 bodies, 2 steps, 32 nodes)",
               (std::string("this run: ") + std::to_string(cfg.bodies) + " bodies, " +
                std::to_string(cfg.steps) + " steps, " + std::to_string(bench_nodes()) +
                " nodes (simulated)")
                   .c_str());

  const auto orig = apps::harness::run_barnes_hut(options_for(Mode::Original), cfg);
  const auto opt = apps::harness::run_barnes_hut(options_for(Mode::Optimized), cfg);

  util::Table t({"", "Original", "Optimized", "paper Orig", "paper Opt"});
  t.add_row({"Total messages", fmt_count(orig.total_msgs), fmt_count(opt.total_msgs),
             "5,106,237", "3,254,275"});
  t.add_row({"      data (KB)", fmt_count(orig.total_kb), fmt_count(opt.total_kb), "795,165",
             "275,351"});
  t.add_rule();
  t.add_row({"Seq  messages", fmt_count(orig.seq_msgs), fmt_count(opt.seq_msgs), "96,848",
             "205,892"});
  t.add_row({"     data (KB)", fmt_count(orig.seq_kb), fmt_count(opt.seq_kb), "10,446",
             "22,443"});
  t.add_row({"     diff requests", fmt_count(orig.seq_requests), fmt_count(opt.seq_requests),
             "3,072", "6,146"});
  t.add_row({"     avg response (ms)", fmt2(orig.seq_response_ms), fmt2(opt.seq_response_ms),
             "0.67", "2.12"});
  t.add_row({"     null acks", fmt_count(orig.seq_null_acks), fmt_count(opt.seq_null_acks),
             "0", "143,738"});
  t.add_rule();
  t.add_row({"Par  messages", fmt_count(orig.par_msgs), fmt_count(opt.par_msgs), "5,006,252",
             "3,045,226"});
  t.add_row({"     data (KB)", fmt_count(orig.par_kb), fmt_count(opt.par_kb), "739,139",
             "221,292"});
  t.add_row({"     avg diff requests", fmt1(orig.par_requests_avg), fmt1(opt.par_requests_avg),
             "8,479", "3,116"});
  t.add_row({"     avg response (ms)", fmt2(orig.par_response_ms), fmt2(opt.par_response_ms),
             "3.34", "0.98"});
  std::printf("%s", t.render().c_str());

  std::printf("\nShape checks:\n");
  std::printf("  parallel data shrinks:   %s (%.0fx reduction; paper 3.3x)\n",
              opt.par_kb < orig.par_kb ? "yes" : "NO",
              static_cast<double>(orig.par_kb) / static_cast<double>(opt.par_kb == 0 ? 1 : opt.par_kb));
  std::printf("  parallel response drops: %s (%.2fms -> %.2fms; paper 3.34 -> 0.98)\n",
              opt.par_response_ms < orig.par_response_ms ? "yes" : "NO", orig.par_response_ms,
              opt.par_response_ms);
  std::printf("  sequential messages rise: %s (%llu -> %llu; paper 96,848 -> 205,892)\n",
              opt.seq_msgs > orig.seq_msgs ? "yes" : "NO",
              static_cast<unsigned long long>(orig.seq_msgs),
              static_cast<unsigned long long>(opt.seq_msgs));
  std::printf("  sequential response rises: %s (%.2fms -> %.2fms; paper 0.67 -> 2.12)\n",
              opt.seq_response_ms > orig.seq_response_ms ? "yes" : "NO", orig.seq_response_ms,
              opt.seq_response_ms);
  std::printf("  slowest thread's parallel diff wait: %.2fs -> %.2fs (paper 34.6 -> 5)\n",
              orig.par_fault_wait_max_s, opt.par_fault_wait_max_s);
  return 0;
}
