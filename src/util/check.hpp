// Runtime invariant checking for the simulator and protocol layers.
//
// The DSM protocol has many internal invariants (interval ordering, diff
// coverage, flow-control sequencing) whose violation indicates a bug, not a
// recoverable condition.  `REPSEQ_CHECK` stays on in all build types: the
// simulator is the instrument of the reproduction, and a silently-corrupt
// protocol would invalidate every measured number downstream.
#pragma once

#include <source_location>
#include <string>

namespace repseq::util {

/// Prints a diagnostic with source location and aborts.  Used by the CHECK
/// macro below; may be called directly for unreachable branches.
[[noreturn]] void check_failed(const char* expr, const std::string& msg,
                               std::source_location loc = std::source_location::current());

}  // namespace repseq::util

/// Always-on invariant check.  `msg` is any expression streamable into a
/// std::string via concatenation (kept simple: a std::string).
#define REPSEQ_CHECK(expr, msg)                                    \
  do {                                                             \
    if (!(expr)) [[unlikely]] {                                    \
      ::repseq::util::check_failed(#expr, (msg));                  \
    }                                                              \
  } while (false)
