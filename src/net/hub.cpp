#include "net/hub.hpp"

namespace repseq::net {

sim::SimTime Hub::transmit(std::size_t wire_bytes, sim::SimTime ready) {
  const sim::SimTime start = std::max({eng_.now(), ready, medium_free_});
  const auto tx_ns = static_cast<std::int64_t>(
      static_cast<double>(wire_bytes) / cfg_.hub_bytes_per_sec * 1e9);
  const sim::SimDuration tx{tx_ns};
  medium_free_ = start + tx;
  busy_total_ += tx;
  return medium_free_ + cfg_.hub_latency;
}

}  // namespace repseq::net
