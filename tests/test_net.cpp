#include <gtest/gtest.h>

#include <array>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "apps/harness/run_modes.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace repseq::net {
namespace {

// ---------------------------------------------------------------------------
// Transport-conformance suite
//
// Every backend variant is run through the same contract tests (delivery
// set, per-receiver monotone times, unicast independence, loss pruning), so
// a future backend inherits them by adding one line here.
// ---------------------------------------------------------------------------

struct Backend {
  TransportKind kind;
  std::size_t shards;  // hub_shards; meaningful for ShardedHub only
};

constexpr Backend kBackends[] = {
    {TransportKind::HubSwitch, 1},   {TransportKind::TreeMulticast, 1},
    {TransportKind::DirectAll, 1},   {TransportKind::ShardedHub, 1},
    {TransportKind::ShardedHub, 2},  {TransportKind::ShardedHub, 4},
};

NetConfig config_for(const Backend& b) {
  NetConfig cfg;
  cfg.transport = b.kind;
  cfg.hub_shards = b.shards;
  return cfg;
}

std::string backend_name(const Backend& b) {
  switch (b.kind) {
    case TransportKind::HubSwitch:
      return "HubSwitch";
    case TransportKind::TreeMulticast:
      return "TreeMulticast";
    case TransportKind::DirectAll:
      return "DirectAll";
    case TransportKind::ShardedHub:
      return "ShardedHub" + std::to_string(b.shards);
  }
  return "Unknown";
}

/// True multicast media put one frame on the wire per group send.
bool single_frame_medium(TransportKind k) {
  return k == TransportKind::HubSwitch || k == TransportKind::ShardedHub;
}

Message make_msg(NodeId src, NodeId dst, std::size_t bytes, std::uint32_t kind = 0,
                 std::uint64_t group = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.kind = kind;
  m.payload_bytes = bytes;
  m.mcast_group = group;
  return m;
}

class TransportConformance : public ::testing::TestWithParam<Backend> {};

INSTANTIATE_TEST_SUITE_P(AllBackends, TransportConformance, ::testing::ValuesIn(kBackends),
                         [](const ::testing::TestParamInfo<Backend>& info) {
                           return backend_name(info.param);
                         });

TEST_P(TransportConformance, MulticastDeliverySetComplete) {
  constexpr std::size_t kNodes = 8;
  constexpr NodeId kSrc = 2;
  sim::Engine eng;
  Network nw(eng, config_for(GetParam()), kNodes);
  std::set<NodeId> got;
  for (NodeId n = 0; n < kNodes; ++n) {
    if (n == kSrc) continue;
    eng.spawn("rx" + std::to_string(n), [&nw, &got, n] {
      (void)nw.nic(n).inbox().pop();
      got.insert(n);
    });
  }
  eng.spawn("tx", [&] { nw.multicast(make_msg(kSrc, kMulticastDst, 4000, 0, /*group=*/7)); });
  eng.run();
  std::set<NodeId> expect;
  for (NodeId n = 0; n < kNodes; ++n) {
    if (n != kSrc) expect.insert(n);
  }
  EXPECT_EQ(got, expect);
  // Wire accounting: one frame on a multicast medium, one frame per edge on
  // the unicast-composed backends.
  const std::uint64_t frames = single_frame_medium(GetParam().kind) ? 1 : kNodes - 1;
  EXPECT_EQ(nw.messages_sent(), frames);
  EXPECT_EQ(nw.deliveries(), kNodes - 1);
}

TEST_P(TransportConformance, MulticastDeliveryTimesMonotonePerReceiver) {
  // Successive group sends must arrive at every receiver in send order, at
  // strictly increasing times, never before the send instant -- on every
  // backend.  All frames ride ONE group: FIFO ordering is a per-group
  // contract (frames for disjoint groups may legally travel concurrently
  // on the sharded hub -- see ShardedHub.DistinctGroupsRideIndependentMedia).
  constexpr std::size_t kNodes = 6;
  constexpr int kFrames = 3;
  sim::Engine eng;
  Network nw(eng, config_for(GetParam()), kNodes);
  std::map<NodeId, std::vector<sim::SimTime>> arrivals;
  sim::SimTime last_send{};
  for (NodeId n = 1; n < kNodes; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &arrivals, &eng, n] {
      for (int i = 0; i < kFrames; ++i) {
        (void)nw.nic(n).inbox().pop();
        arrivals[n].push_back(eng.now());
      }
    });
  }
  eng.spawn("tx", [&] {
    for (int i = 0; i < kFrames; ++i) {
      // Same group for all frames: ordering holds per shard; a FIFO group
      // stream must stay FIFO no matter which shard carries it.
      nw.multicast(make_msg(0, kMulticastDst, 3000, 0, /*group=*/11));
      last_send = eng.now();
    }
  });
  eng.run();
  for (NodeId n = 1; n < kNodes; ++n) {
    ASSERT_EQ(arrivals[n].size(), static_cast<std::size_t>(kFrames));
    EXPECT_GE(arrivals[n].front(), last_send);
    for (int i = 1; i < kFrames; ++i) {
      EXPECT_LT(arrivals[n][i - 1], arrivals[n][i]) << "receiver " << n << " frame " << i;
    }
  }
}

TEST_P(TransportConformance, UnicastPathIndependentOfBackend) {
  // Point-to-point always rides the switch; the backend choice must not
  // perturb unicast delivery times.  Compare against a HubSwitch baseline.
  const auto run_unicasts = [](const NetConfig& cfg) {
    sim::Engine eng;
    Network nw(eng, cfg, 4);
    eng.spawn("rx", [&] {
      for (int i = 0; i < 3; ++i) (void)nw.nic(1).inbox().pop();
    });
    eng.spawn("tx", [&] {
      for (int i = 0; i < 3; ++i) nw.unicast(make_msg(0, 1, 5000));
    });
    eng.run();
    return eng.now().ns;
  };
  EXPECT_EQ(run_unicasts(config_for(GetParam())), run_unicasts(NetConfig{}));
}

TEST_P(TransportConformance, FullLossPrunesEveryDelivery) {
  // With loss probability 1 nothing may reach an inbox, every attempted
  // delivery consumes exactly one loss-RNG draw, and store-and-forward
  // backends may cut subtrees off without charging frames for them.
  constexpr std::size_t kNodes = 8;
  sim::Engine eng;
  NetConfig cfg = config_for(GetParam());
  cfg.loss_probability = 1.0;
  Network nw(eng, cfg, kNodes);
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 1000)); });
  eng.run();
  EXPECT_EQ(nw.deliveries(), 0u);
  EXPECT_EQ(nw.total_drops(), 0u);
  EXPECT_GE(nw.losses_injected(), 1u);
  EXPECT_LE(nw.losses_injected(), kNodes - 1);
  EXPECT_LE(nw.messages_sent(), kNodes - 1);
}

TEST_P(TransportConformance, LossPruningChargesOnlyTransmittedFrames) {
  // Deferred accounting under loss: frames, bytes and medium occupancy may
  // be charged only for hops that were actually transmitted.  With loss
  // probability 1 a store-and-forward backend transmits just the root's
  // own edges -- the cut-off subtree must not appear in any counter, even
  // though its hops would have been committed from deferred events.
  constexpr std::size_t kNodes = 8;
  sim::Engine eng;
  NetConfig cfg = config_for(GetParam());
  cfg.loss_probability = 1.0;
  Network nw(eng, cfg, kNodes);
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 2000)); });
  eng.run();

  std::uint64_t frames = 0;      // transmitted even when lost at a receiver
  std::uint64_t attempts = 0;    // deliveries offered to loss injection
  switch (GetParam().kind) {
    case TransportKind::HubSwitch:
    case TransportKind::ShardedHub:
      frames = 1;
      attempts = kNodes - 1;
      break;
    case TransportKind::DirectAll:
      frames = kNodes - 1;
      attempts = kNodes - 1;
      break;
    case TransportKind::TreeMulticast:
      frames = cfg.mcast_tree_fanout;  // the root's children, nothing below
      attempts = cfg.mcast_tree_fanout;
      break;
  }
  const std::size_t wire = cfg.wire_bytes(2000);
  EXPECT_EQ(nw.messages_sent(), frames);
  EXPECT_EQ(nw.bytes_sent(), frames * wire);
  EXPECT_EQ(nw.losses_injected(), attempts);
  EXPECT_EQ(nw.deliveries(), 0u);
  if (GetParam().kind == TransportKind::TreeMulticast) {
    // Occupancy follows the same rule: only the transmitted edges' uplink
    // time, not the pruned subtree's.
    EXPECT_EQ(nw.hub_busy(0), cfg.link_tx_time(wire) * static_cast<std::int64_t>(frames));
  }
}

TEST_P(TransportConformance, AccountingConservationUnderLossAndBatching) {
  // The carrier/rider split of frame coalescing must conserve wire truth
  // even when loss injection prunes deliveries and (for store-and-forward
  // backends) whole subtrees: summing every send's deferred charges yields
  // exactly the facade's frame/byte totals -- no constituent is charged
  // twice, none is silently never charged.
  constexpr std::size_t kNodes = 6;
  sim::Engine eng;
  NetConfig cfg = config_for(GetParam());
  cfg.batch_window = sim::microseconds(500);
  cfg.loss_probability = 0.3;
  Network nw(eng, cfg, kNodes);

  std::uint64_t frames_sum = 0;
  std::uint64_t bytes_sum = 0;
  std::vector<int> fired;  // per-send account invocations
  const auto account_for = [&](std::size_t i) {
    return [&, i](std::size_t frames, std::size_t bytes) {
      frames_sum += frames;
      bytes_sum += bytes;
      ++fired[i];
    };
  };
  std::size_t unicasts = 0;
  std::size_t sends = 0;
  eng.spawn("tx", [&] {
    // Bursts to shared destinations/groups so coalescing actually engages,
    // from more than one sender so the tree's injection path is exercised.
    for (int burst = 0; burst < 2; ++burst) {
      for (int i = 0; i < 3; ++i) {
        fired.push_back(0);
        nw.unicast(make_msg(0, 3, 500 + 100 * i), account_for(sends++));
        ++unicasts;
      }
      for (NodeId src : {NodeId{0}, NodeId{1}, NodeId{2}}) {
        fired.push_back(0);
        nw.multicast(make_msg(src, kMulticastDst, 800, 0, /*group=*/5), account_for(sends++));
      }
      eng.sleep_for(sim::microseconds(1200));  // straddle several windows
    }
  });
  eng.run();

  EXPECT_EQ(frames_sum, nw.messages_sent());
  EXPECT_EQ(bytes_sum, nw.bytes_sent());
  EXPECT_GT(nw.losses_injected(), 0u) << "loss axis did not engage";
  for (std::size_t i = 0; i < sends; ++i) {
    if (i % 6 < 3) {
      // Unicast: exactly one charge (solo frame or its share of a batch).
      EXPECT_EQ(fired[i], 1) << "send " << i;
    } else {
      // Multicast: at least one charge (per-hop backends charge each
      // transmitted hop; loss may prune later hops but never the first).
      EXPECT_GE(fired[i], 1) << "send " << i;
    }
  }
}

TEST_P(TransportConformance, DeterministicAcrossRuns) {
  const auto run_once = [this] {
    sim::Engine eng;
    Network nw(eng, config_for(GetParam()), 6);
    for (NodeId n = 1; n < 6; ++n) {
      eng.spawn("rx" + std::to_string(n), [&nw, n] {
        for (int i = 0; i < 6; ++i) (void)nw.nic(n).inbox().pop();
      });
    }
    eng.spawn("tx", [&] {
      for (int i = 0; i < 5; ++i) {
        for (NodeId n = 1; n < 6; ++n) nw.unicast(make_msg(0, n, 1000 + 100 * n));
      }
      nw.multicast(make_msg(0, kMulticastDst, 2000, 0, /*group=*/3));
    });
    eng.run();
    return std::pair{eng.now().ns, nw.bytes_sent()};
  };
  EXPECT_EQ(run_once(), run_once());
}

// ---------------------------------------------------------------------------
// Config plumbing
// ---------------------------------------------------------------------------

TEST(NetConfig, WireBytesAddsPerFragmentHeaders) {
  NetConfig cfg;
  cfg.mtu_bytes = 1500;
  cfg.header_bytes = 42;
  EXPECT_EQ(cfg.wire_bytes(0), 42u);          // control message: one header
  EXPECT_EQ(cfg.wire_bytes(100), 142u);       // one fragment
  EXPECT_EQ(cfg.wire_bytes(1458), 1500u);     // exactly one full fragment
  EXPECT_EQ(cfg.wire_bytes(1459), 1459u + 84u);  // two fragments
}

TEST(Transport, ParseAndNameRoundTrip) {
  for (TransportKind k : {TransportKind::HubSwitch, TransportKind::TreeMulticast,
                          TransportKind::DirectAll, TransportKind::ShardedHub}) {
    const auto parsed = parse_transport(transport_name(k));
    ASSERT_TRUE(parsed.has_value()) << transport_name(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(parse_transport("hub"), TransportKind::HubSwitch);
  EXPECT_EQ(parse_transport("tree"), TransportKind::TreeMulticast);
  EXPECT_EQ(parse_transport("direct"), TransportKind::DirectAll);
  EXPECT_EQ(parse_transport("sharded"), TransportKind::ShardedHub);
  EXPECT_FALSE(parse_transport("carrier-pigeon").has_value());
}

TEST(Transport, ShardHashDeterministicAndInRange) {
  for (std::size_t shards : {1u, 2u, 4u, 7u}) {
    for (std::uint64_t g = 0; g < 256; ++g) {
      const std::size_t s = shard_of(g, shards);
      EXPECT_LT(s, shards);
      EXPECT_EQ(s, shard_of(g, shards));  // stable
    }
  }
  // The mix must actually disperse: 256 consecutive groups over 4 shards
  // hit every shard.
  std::set<std::size_t> hit;
  for (std::uint64_t g = 0; g < 256; ++g) hit.insert(shard_of(g, 4));
  EXPECT_EQ(hit.size(), 4u);
}

// ---------------------------------------------------------------------------
// Facade behaviors (backend-independent, run on the default backend)
// ---------------------------------------------------------------------------

TEST(Network, UnicastDeliversWithLatency) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 4);
  sim::SimTime got{};
  eng.spawn("rx", [&] {
    (void)nw.nic(1).inbox().pop();
    got = eng.now();
  });
  eng.spawn("tx", [&] { nw.unicast(make_msg(0, 1, 1000)); });
  eng.run();
  // Two serialization legs (uplink + downlink) plus two hop latencies:
  // 1042B / 12.5MB/s = 83.36us per leg, 5us per hop.
  EXPECT_GT(got.ns, 0);
  EXPECT_NEAR(static_cast<double>(got.ns), 2 * 83'360 + 2 * 5'000, 200.0);
}

TEST(Network, BackToBackUnicastsSerializeOnUplink) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 4);
  std::vector<sim::SimTime> arrivals;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 2; ++i) {
      (void)nw.nic(1).inbox().pop();
      arrivals.push_back(eng.now());
    }
  });
  eng.spawn("tx", [&] {
    nw.unicast(make_msg(0, 1, 10000));
    nw.unicast(make_msg(0, 1, 10000));
  });
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second frame's last byte leaves one full serialization later.
  const double leg = (10000 + 7 * 42) / 12.5e6 * 1e9;
  EXPECT_NEAR(static_cast<double>((arrivals[1] - arrivals[0]).ns), leg, 1000.0);
}

TEST(Network, ResponsesFromDistinctSendersContendOnDestinationPort) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 8);
  std::vector<sim::SimTime> arrivals;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 4; ++i) {
      (void)nw.nic(0).inbox().pop();
      arrivals.push_back(eng.now());
    }
  });
  for (NodeId s = 1; s <= 4; ++s) {
    eng.spawn("tx" + std::to_string(s), [&nw, s] { nw.unicast(make_msg(s, 0, 20000)); });
  }
  eng.run();
  ASSERT_EQ(arrivals.size(), 4u);
  // All four senders transmit in parallel on their own uplinks, but the
  // switch's port to node 0 serializes them: arrivals are spaced by one
  // serialization time each.
  const double leg = (20000.0 + 14 * 42) / 12.5e6 * 1e9;
  for (int i = 1; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>((arrivals[i] - arrivals[i - 1]).ns), leg, 2000.0) << i;
  }
}

TEST(Network, MulticastReachesAllButSender) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 5);
  int received = 0;
  for (NodeId n = 1; n < 5; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &received, n] {
      (void)nw.nic(n).inbox().pop();
      ++received;
    });
  }
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 500)); });
  eng.run();
  EXPECT_EQ(received, 4);
  EXPECT_EQ(nw.messages_sent(), 1u);  // one message on the wire
}

TEST(Network, MulticastsSerializeOnHub) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 4);
  std::vector<sim::SimTime> arrivals;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 2; ++i) {
      (void)nw.nic(3).inbox().pop();
      arrivals.push_back(eng.now());
    }
  });
  eng.spawn("tx0", [&] { nw.multicast(make_msg(0, kMulticastDst, 10000)); });
  eng.spawn("tx1", [&] { nw.multicast(make_msg(1, kMulticastDst, 10000)); });
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const double leg = (10000 + 7 * 42) / 12.5e6 * 1e9;
  EXPECT_NEAR(static_cast<double>((arrivals[1] - arrivals[0]).ns), leg, 1000.0);
}

TEST(Network, ReceiveBufferOverflowDrops) {
  sim::Engine eng;
  NetConfig cfg;
  cfg.recv_buffer_msgs = 4;
  Network nw(eng, cfg, 3);
  // Nobody drains node 2's inbox; flood it.
  eng.spawn("tx", [&] {
    for (int i = 0; i < 10; ++i) nw.unicast(make_msg(0, 2, 100));
  });
  eng.run();
  EXPECT_EQ(nw.nic(2).drops(), 6u);
  EXPECT_EQ(nw.nic(2).backlog(), 4u);
  EXPECT_EQ(nw.total_drops(), 6u);
}

TEST(Network, OverflowDropFilterSparesReliableTraffic) {
  // Mirrors the loss filter: messages the filter rejects are admitted even
  // past ring capacity (kernel-retried sync traffic), droppable ones are
  // not.  The DSM layer relies on this to keep fork/join alive while
  // concurrent sharded rounds flood the rings with diff traffic.
  sim::Engine eng;
  NetConfig cfg;
  cfg.recv_buffer_msgs = 4;
  Network nw(eng, cfg, 3);
  constexpr std::uint32_t kReliable = 7;
  nw.set_drop_filter([](const Message& m) { return m.kind != kReliable; });
  eng.spawn("tx", [&] {
    for (int i = 0; i < 10; ++i) nw.unicast(make_msg(0, 2, 100));       // droppable
    for (int i = 0; i < 3; ++i) nw.unicast(make_msg(0, 2, 100, kReliable));
  });
  eng.run();
  EXPECT_EQ(nw.nic(2).drops(), 6u);     // droppable overflow still counts
  EXPECT_EQ(nw.nic(2).backlog(), 7u);   // 4 ring slots + 3 reliable frames
}

TEST(Network, LossInjectionDropsSomeDeliveries) {
  sim::Engine eng;
  NetConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.loss_seed = 42;
  Network nw(eng, cfg, 2);
  eng.spawn("tx", [&] {
    for (int i = 0; i < 200; ++i) nw.unicast(make_msg(0, 1, 10));
  });
  eng.spawn("rx", [&] {
    // Drain whatever arrives; rely on run() terminating when idle.
    while (true) {
      auto m = nw.nic(1).inbox().pop_with_timeout(sim::milliseconds(100));
      if (!m) break;
    }
  });
  eng.run();
  EXPECT_GT(nw.losses_injected(), 50u);
  EXPECT_LT(nw.losses_injected(), 150u);
  EXPECT_EQ(nw.deliveries() + nw.losses_injected(), 200u);
}

TEST(Network, SendTapObservesTraffic) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 3);
  std::uint64_t tapped_bytes = 0;
  int tapped_mcast = 0;
  nw.set_send_tap([&](const Message&, std::size_t wire, bool mc) {
    tapped_bytes += wire;
    tapped_mcast += mc ? 1 : 0;
  });
  eng.spawn("drain1", [&] { (void)nw.nic(1).inbox().pop(); });
  eng.spawn("drain2", [&] { (void)nw.nic(2).inbox().pop(); });
  eng.spawn("tx", [&] {
    nw.unicast(make_msg(0, 1, 100));
    nw.multicast(make_msg(0, kMulticastDst, 200));
  });
  eng.run();
  EXPECT_EQ(tapped_bytes, nw.bytes_sent());
  EXPECT_EQ(tapped_mcast, 1);
}

// ---------------------------------------------------------------------------
// Backend-specific behaviors
// ---------------------------------------------------------------------------

TEST(Transport, TreeMulticastForwardsThroughInteriorNodes) {
  // Fanout 2, sender 0, 8 nodes: node 1 and 2 are root children; nodes 3-6
  // hang off 1 and 2; node 7 is a third-level leaf.  Arrival times must
  // strictly increase with tree depth (per-hop latency accumulates).
  sim::Engine eng;
  NetConfig cfg;
  cfg.transport = TransportKind::TreeMulticast;
  cfg.mcast_tree_fanout = 2;
  Network nw(eng, cfg, 8);
  std::map<NodeId, sim::SimTime> at;
  for (NodeId n = 1; n < 8; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &at, &eng, n] {
      (void)nw.nic(n).inbox().pop();
      at[n] = eng.now();
    });
  }
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 4000)); });
  eng.run();
  ASSERT_EQ(at.size(), 7u);
  EXPECT_LT(at[1], at[3]);  // root child before its own child
  EXPECT_LT(at[1], at[4]);
  EXPECT_LT(at[2], at[5]);
  EXPECT_LT(at[2], at[6]);
  EXPECT_LT(at[3], at[7]);  // depth 2 before depth 3
}

TEST(Transport, TreeMulticastInteriorOrderingExactEventDriven) {
  // Pins the event-driven per-hop forwarding model (formerly the
  // "interior-node ordering approximation": all edge reservations were
  // placed at send time, so an interior node's UNRELATED unicast issued
  // during the propagation window queued BEHIND forwards it had not even
  // received yet).  Now each hop reserves its parent's uplink from the
  // parent's *arrival* event, so node 1's own unicast -- issued at t=0,
  // long before the multicast frame reaches it -- leaves its uplink first
  // and lands strictly BEFORE its forwards to nodes 3 and 4.
  //
  // Every arrival instant is asserted exactly against the wire model:
  // fanout 2, sender 0, 8 nodes, all links idle, so a hop whose frame is
  // complete at the parent at time T delivers child j (0-based among the
  // parent's children) at T + (j+2)*leg + 2*hop -- j+1 uplink
  // serializations queued on the parent plus one switch-port leg.
  sim::Engine eng;
  NetConfig cfg;
  cfg.transport = TransportKind::TreeMulticast;
  cfg.mcast_tree_fanout = 2;
  Network nw(eng, cfg, 8);
  constexpr std::uint32_t kUniKind = 42;
  std::map<NodeId, sim::SimTime> mcast_at;
  sim::SimTime uni_at{};
  for (NodeId n = 1; n < 8; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &mcast_at, &uni_at, &eng, n] {
      const int frames = n == 7 ? 2 : 1;  // node 7 also gets the unicast
      for (int i = 0; i < frames; ++i) {
        const Message m = nw.nic(n).inbox().pop();
        if (m.kind == kUniKind) {
          uni_at = eng.now();
        } else {
          mcast_at[n] = eng.now();
        }
      }
    });
  }
  eng.spawn("mc", [&] { nw.multicast(make_msg(0, kMulticastDst, 4000)); });
  eng.spawn("uni", [&] { nw.unicast(make_msg(1, 7, 4000, kUniKind)); });
  eng.run();
  ASSERT_GT(uni_at.ns, 0);
  ASSERT_EQ(mcast_at.size(), 7u);

  const sim::SimDuration leg = cfg.link_tx_time(cfg.wire_bytes(4000));
  const sim::SimDuration hop = cfg.hop_latency;
  const auto child_at = [&](sim::SimTime parent_at, int j) {
    return parent_at + leg * (j + 2) + hop * 2;
  };
  const sim::SimTime t0{};
  // Root (node 0) holds the frame at t=0; breadth-first positions map
  // position p to node p for src=0.
  EXPECT_EQ(mcast_at[1], child_at(t0, 0));
  EXPECT_EQ(mcast_at[2], child_at(t0, 1));
  EXPECT_EQ(mcast_at[3], child_at(mcast_at[1], 0));
  EXPECT_EQ(mcast_at[4], child_at(mcast_at[1], 1));
  EXPECT_EQ(mcast_at[5], child_at(mcast_at[2], 0));
  EXPECT_EQ(mcast_at[6], child_at(mcast_at[2], 1));
  EXPECT_EQ(mcast_at[7], child_at(mcast_at[3], 0));
  // Node 1's unrelated unicast rides its idle uplink immediately: one
  // switched unicast, delivered before either forward it has yet to make.
  EXPECT_EQ(uni_at, child_at(t0, 0));
  EXPECT_LT(uni_at, mcast_at[3]);
  EXPECT_LT(uni_at, mcast_at[4]);
}

TEST(Transport, TreeMulticastUplinkUtilizationConserved) {
  // Deferred accounting must conserve total uplink utilization
  // frame-for-frame against the send-time-reservation model in the
  // no-contention case: N-1 tree edges, each paying exactly one uplink
  // serialization, no matter when each hop was committed.  The tree
  // reports that aggregate as its shard-0 "busy" occupancy.
  constexpr std::size_t kNodes = 8;
  sim::Engine eng;
  NetConfig cfg;
  cfg.transport = TransportKind::TreeMulticast;
  cfg.mcast_tree_fanout = 2;
  Network nw(eng, cfg, kNodes);
  for (NodeId n = 1; n < kNodes; ++n) {
    eng.spawn("rx" + std::to_string(n),
              [&nw, n] { (void)nw.nic(n).inbox().pop(); });
  }
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 4000)); });
  eng.run();
  const std::size_t wire = cfg.wire_bytes(4000);
  EXPECT_EQ(nw.messages_sent(), kNodes - 1);
  EXPECT_EQ(nw.bytes_sent(), (kNodes - 1) * wire);
  ASSERT_EQ(nw.hub_shards(), 1u);
  EXPECT_EQ(nw.hub_busy(0), cfg.link_tx_time(wire) * (kNodes - 1));
}

TEST(Transport, DirectAllSerializesFanOutOnSourceUplink) {
  constexpr std::size_t kNodes = 5;
  sim::Engine eng;
  NetConfig cfg;
  cfg.transport = TransportKind::DirectAll;
  Network nw(eng, cfg, kNodes);
  std::vector<std::pair<sim::SimTime, NodeId>> order;
  for (NodeId n = 1; n < kNodes; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &order, &eng, n] {
      (void)nw.nic(n).inbox().pop();
      order.emplace_back(eng.now(), n);
    });
  }
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 10000)); });
  eng.run();
  ASSERT_EQ(order.size(), kNodes - 1);
  // Frames leave in ascending destination order and serialize on the source
  // uplink: arrivals are spaced by one full serialization each.
  const double leg = (10000 + 7 * 42) / 12.5e6 * 1e9;
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1].first, order[i].first);
    EXPECT_EQ(order[i].second, order[i - 1].second + 1);
    EXPECT_NEAR(static_cast<double>((order[i].first - order[i - 1].first).ns), leg, 2000.0);
  }
}

TEST(Transport, TreeMulticastLossCutsOffSubtrees) {
  // Store-and-forward semantics: an interior node that lost the frame has
  // nothing to forward.  With loss_probability = 1 only the root's own
  // transmissions (its k children) are ever attempted; the rest of the
  // tree is cut off without consuming loss-RNG draws.
  sim::Engine eng;
  NetConfig cfg;
  cfg.transport = TransportKind::TreeMulticast;
  cfg.mcast_tree_fanout = 2;
  cfg.loss_probability = 1.0;
  Network nw(eng, cfg, 8);
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 1000)); });
  eng.run();
  EXPECT_EQ(nw.deliveries(), 0u);
  EXPECT_EQ(nw.losses_injected(), 2u);   // the root's two children only
  EXPECT_EQ(nw.messages_sent(), 2u);     // only those frames hit the wire
}

// ---------------------------------------------------------------------------
// Sharded hub
// ---------------------------------------------------------------------------

/// Runs the same mixed unicast/multicast script on `cfg`; returns every
/// (receiver, arrival) pair in arrival order plus the facade counters.
struct Trace {
  std::vector<std::tuple<NodeId, std::int64_t>> arrivals;
  std::uint64_t msgs;
  std::uint64_t bytes;
  std::uint64_t deliveries;
  std::int64_t finish_ns;

  bool operator==(const Trace&) const = default;
};

Trace run_script(NetConfig cfg) {
  constexpr std::size_t kNodes = 6;
  sim::Engine eng;
  Network nw(eng, cfg, kNodes);
  Trace t{};
  for (NodeId n = 0; n < kNodes; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &t, &eng, n] {
      // 4 multicasts reach everyone but their sender (node 0 sends 3, node
      // 1 sends 1) plus one unicast to node 2.
      int frames = n == 0 ? 1 : (n == 1 ? 3 : 4);
      if (n == 2) ++frames;
      for (int i = 0; i < frames; ++i) {
        (void)nw.nic(n).inbox().pop();
        t.arrivals.emplace_back(n, eng.now().ns);
      }
    });
  }
  eng.spawn("tx", [&] {
    nw.multicast(make_msg(0, kMulticastDst, 8000, 0, /*group=*/1));
    nw.unicast(make_msg(0, 2, 3000));
    nw.multicast(make_msg(0, kMulticastDst, 8000, 0, /*group=*/2));
    nw.multicast(make_msg(0, kMulticastDst, 8000, 0, /*group=*/3));
  });
  eng.spawn("tx1", [&] { nw.multicast(make_msg(1, kMulticastDst, 5000, 0, /*group=*/4)); });
  eng.run();
  t.msgs = nw.messages_sent();
  t.bytes = nw.bytes_sent();
  t.deliveries = nw.deliveries();
  t.finish_ns = eng.now().ns;
  return t;
}

TEST(ShardedHub, SingleShardFrameForFrameIdenticalToHubSwitch) {
  // S = 1 must be indistinguishable from HubSwitch on the wire: same
  // arrival instants at every receiver, same counters, same finish time.
  // Any drift is a bug in the per-shard plumbing.
  NetConfig hub;
  hub.transport = TransportKind::HubSwitch;
  NetConfig sharded1;
  sharded1.transport = TransportKind::ShardedHub;
  sharded1.hub_shards = 1;
  EXPECT_EQ(run_script(sharded1), run_script(hub));
}

TEST(ShardedHub, DistinctGroupsRideIndependentMedia) {
  // Two concurrent multicasts whose groups land on different shards must
  // not serialize: both arrive at the same instant.  On HubSwitch the same
  // pair is spaced by one full hub serialization.
  std::uint64_t g0 = 0;
  std::uint64_t g1 = 1;
  while (shard_of(g1, 4) == shard_of(g0, 4)) ++g1;

  const auto arrivals_at = [&](NetConfig cfg) {
    sim::Engine eng;
    Network nw(eng, cfg, 4);
    std::vector<std::int64_t> at;
    eng.spawn("rx", [&] {
      for (int i = 0; i < 2; ++i) {
        (void)nw.nic(3).inbox().pop();
        at.push_back(eng.now().ns);
      }
    });
    eng.spawn("tx0", [&, g0] { nw.multicast(make_msg(0, kMulticastDst, 10000, 0, g0)); });
    eng.spawn("tx1", [&, g1] { nw.multicast(make_msg(1, kMulticastDst, 10000, 0, g1)); });
    eng.run();
    return at;
  };

  NetConfig sharded;
  sharded.transport = TransportKind::ShardedHub;
  sharded.hub_shards = 4;
  const auto spread = arrivals_at(sharded);
  ASSERT_EQ(spread.size(), 2u);
  EXPECT_EQ(spread[0], spread[1]) << "disjoint shards must not serialize";

  const auto serialized = arrivals_at(NetConfig{});  // single hub
  ASSERT_EQ(serialized.size(), 2u);
  const double leg = (10000 + 7 * 42) / 12.5e6 * 1e9;
  EXPECT_NEAR(static_cast<double>(serialized[1] - serialized[0]), leg, 1000.0);
}

TEST(ShardedHub, ShardBusyConservesSingleHubTotal) {
  // Spreading traffic over shards redistributes busy time but never
  // creates or destroys it: the sum over shards equals the single hub's
  // busy for the same frames, and more than one shard does real work.
  const auto run_groups = [](NetConfig cfg) {
    sim::Engine eng;
    Network nw(eng, cfg, 4);
    for (NodeId n = 1; n < 4; ++n) {
      eng.spawn("rx" + std::to_string(n), [&nw, n] {
        for (int i = 0; i < 16; ++i) (void)nw.nic(n).inbox().pop();
      });
    }
    eng.spawn("tx", [&] {
      for (std::uint64_t g = 0; g < 16; ++g) {
        nw.multicast(make_msg(0, kMulticastDst, 4000, 0, g));
      }
    });
    eng.run();
    sim::SimDuration total{};
    std::size_t active = 0;
    for (std::size_t s = 0; s < nw.hub_shards(); ++s) {
      total += nw.hub_busy(s);
      if (nw.hub_busy(s).ns > 0) ++active;
    }
    return std::pair{total, active};
  };

  NetConfig sharded;
  sharded.transport = TransportKind::ShardedHub;
  sharded.hub_shards = 4;
  const auto [sharded_total, sharded_active] = run_groups(sharded);
  const auto [hub_total, hub_active] = run_groups(NetConfig{});
  EXPECT_EQ(sharded_total, hub_total);
  EXPECT_EQ(hub_active, 1u);
  EXPECT_GT(sharded_active, 1u);
}

// ---------------------------------------------------------------------------
// Frame coalescing (BatchingTransport + tree piggybacking)
// ---------------------------------------------------------------------------

TEST(Batching, UnicastCoalescesWithinWindowPreservingFifo) {
  // Three back-to-back sends to one destination under a window: the first
  // leaves immediately (idle destination), the second and third ride one
  // combined frame at the window flush -- in send order, at one shared
  // instant, with the carrier/rider byte split summing to wire truth.
  sim::Engine eng;
  NetConfig cfg;
  cfg.batch_window = sim::microseconds(500);
  Network nw(eng, cfg, 4);

  std::vector<std::uint32_t> kinds;
  std::vector<std::int64_t> at;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 3; ++i) {
      kinds.push_back(nw.nic(1).inbox().pop().kind);
      at.push_back(eng.now().ns);
    }
  });
  std::array<std::pair<std::size_t, std::size_t>, 3> charges{};
  eng.spawn("tx", [&] {
    for (std::uint32_t i = 0; i < 3; ++i) {
      nw.unicast(make_msg(0, 1, 1000 + 1000 * i, /*kind=*/i),
                 [&charges, i](std::size_t f, std::size_t b) { charges[i] = {f, b}; });
    }
  });
  eng.run();

  EXPECT_EQ(kinds, (std::vector<std::uint32_t>{0, 1, 2}));
  ASSERT_EQ(at.size(), 3u);
  EXPECT_LT(at[0], at[1]);
  EXPECT_EQ(at[1], at[2]) << "coalesced constituents share one delivery instant";
  EXPECT_EQ(nw.messages_sent(), 2u);  // solo frame + one combined frame
  EXPECT_EQ(nw.bytes_sent(), cfg.wire_bytes(1000) + cfg.wire_bytes(2000 + 3000));
  // Per-send charges: solo carrier, batch carrier (frame + headers + own
  // payload), rider (payload only).
  EXPECT_EQ(charges[0], (std::pair<std::size_t, std::size_t>{1, cfg.wire_bytes(1000)}));
  EXPECT_EQ(charges[1],
            (std::pair<std::size_t, std::size_t>{1, cfg.wire_bytes(2000 + 3000) - 3000}));
  EXPECT_EQ(charges[2], (std::pair<std::size_t, std::size_t>{0, 3000}));
}

TEST(Batching, WindowZeroFrameForFrameIdenticalToUnbatched) {
  // batch_window = 0 must never construct the decorator: every backend's
  // wire behaviour -- arrival instants, counters, finish time -- is
  // bit-identical to a default (windowless) config.
  for (TransportKind kind : {TransportKind::HubSwitch, TransportKind::TreeMulticast,
                             TransportKind::DirectAll, TransportKind::ShardedHub}) {
    NetConfig plain;
    plain.transport = kind;
    plain.hub_shards = 4;
    NetConfig zero = plain;
    zero.batch_window = sim::SimDuration{};
    EXPECT_EQ(run_script(zero), run_script(plain)) << transport_name(kind);
  }
}

TEST(Batching, TreePiggybackMergesBackToBackGroupSends) {
  // Interior-node piggybacking: several in-flight sends of one group
  // queued on the same tree edge leave as one combined frame, so a burst
  // costs strictly fewer wire frames than sends x (N-1) -- while every
  // receiver still gets every message, in send order.
  constexpr std::size_t kNodes = 8;
  constexpr std::uint32_t kSends = 6;
  sim::Engine eng;
  NetConfig cfg;
  cfg.transport = TransportKind::TreeMulticast;
  cfg.mcast_tree_fanout = 2;
  cfg.batch_window = sim::microseconds(1000);
  Network nw(eng, cfg, kNodes);

  std::map<NodeId, std::vector<std::uint32_t>> got;
  for (NodeId n = 0; n < kNodes; ++n) {
    if (n == 2) continue;
    eng.spawn("rx" + std::to_string(n), [&nw, &got, n] {
      for (std::uint32_t i = 0; i < kSends; ++i) {
        got[n].push_back(nw.nic(n).inbox().pop().kind);
      }
    });
  }
  eng.spawn("tx", [&] {
    for (std::uint32_t i = 0; i < kSends; ++i) {
      nw.multicast(make_msg(2, kMulticastDst, 2000, /*kind=*/i, /*group=*/9));
    }
  });
  eng.run();

  const std::vector<std::uint32_t> in_order{0, 1, 2, 3, 4, 5};
  for (const auto& [n, kinds] : got) EXPECT_EQ(kinds, in_order) << "receiver " << n;
  EXPECT_EQ(got.size(), kNodes - 1);
  EXPECT_EQ(nw.deliveries(), kSends * (kNodes - 1));
  EXPECT_LT(nw.messages_sent(), kSends * (kNodes - 1))
      << "piggybacking saved no frames on a same-group burst";
}

TEST(NetConfig, ParseBatchWindowAcceptsMicrosecondsRejectsJunk) {
  ASSERT_TRUE(parse_batch_window("0").has_value());
  EXPECT_EQ(parse_batch_window("0")->ns, 0);
  ASSERT_TRUE(parse_batch_window("250").has_value());
  EXPECT_EQ(*parse_batch_window("250"), sim::microseconds(250));
  for (const char* bad : {"", "-1", "abc", "12us", "1.5", "1000000001"}) {
    EXPECT_FALSE(parse_batch_window(bad).has_value()) << '\'' << bad << '\'';
  }
}

// ---------------------------------------------------------------------------
// Protocol-level cross-backend checksum matrix
// ---------------------------------------------------------------------------

TEST(TransportProtocolMatrix, ChecksumsIdenticalAcrossModesFlowsAndTransports) {
  // Every run Mode and every RSE FlowControl variant must compute the same
  // application result on every transport backend: the wire model may only
  // change timing and traffic, never data.
  using apps::harness::Mode;
  apps::bh::BhConfig bh;
  bh.bodies = 256;
  bh.steps = 1;
  const auto checksum_of = [&](Mode m, const Backend& b, rse::FlowControl f) {
    apps::harness::RunOptions o;
    o.mode = m;
    o.nodes = 4;
    o.flow = f;
    o.net = config_for(b);
    const auto report = apps::harness::run_barnes_hut(o, bh);
    EXPECT_EQ(report.transport, transport_name(b.kind));
    return report.checksum;
  };

  constexpr Backend kMatrixBackends[] = {{TransportKind::HubSwitch, 1},
                                         {TransportKind::TreeMulticast, 1},
                                         {TransportKind::DirectAll, 1},
                                         {TransportKind::ShardedHub, 4}};
  const double ref = checksum_of(Mode::Sequential, {TransportKind::HubSwitch, 1},
                                 rse::FlowControl::Chained);
  for (const Backend& b : kMatrixBackends) {
    for (Mode m : {Mode::Original, Mode::Optimized, Mode::BroadcastSeq}) {
      EXPECT_EQ(checksum_of(m, b, rse::FlowControl::Chained), ref)
          << apps::harness::mode_name(m) << " on " << backend_name(b);
    }
    for (rse::FlowControl f : {rse::FlowControl::Windowed, rse::FlowControl::None}) {
      EXPECT_EQ(checksum_of(Mode::Optimized, b, f), ref)
          << "Optimized/" << apps::harness::flow_name(f) << " on " << backend_name(b);
    }
  }
}

}  // namespace
}  // namespace repseq::net
