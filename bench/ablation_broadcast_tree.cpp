// Ablation A1 (paper Section 6.1.2): isolate the two sources of the
// Barnes-Hut improvement by hand-inserting a broadcast of the data the
// master modified in the sequential tree build, *without* replicating the
// section.  The paper measured the parallel force phase at 50.4s (base),
// 36.9s (broadcast tree: contention eliminated, particles still fetched
// point to point) and 21.1s (full replication: particles broadcast too).
//
// Expected shape here: Original > BroadcastSeq > Optimized for the
// parallel-section time, with roughly half the gap closed by the broadcast
// alone.
#include "bench_common.hpp"

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  using apps::harness::Mode;

  apps::bh::BhConfig cfg = bh_config();
  print_header("Ablation: hand-inserted tree broadcast (Barnes-Hut)",
               "PPoPP'01 Section 6.1.2 (force phase: 50.4s / 36.9s / 21.1s)",
               (std::string("this run: ") + std::to_string(cfg.bodies) + " bodies, " +
                std::to_string(cfg.steps) + " steps, " + std::to_string(bench_nodes()) +
                " nodes (simulated)")
                   .c_str());

  const auto orig = apps::harness::run_barnes_hut(options_for(Mode::Original), cfg);
  // The hand-inserted broadcast rides the software multicast tree: select
  // the TreeMulticast transport for the broadcast run (REPSEQ_TRANSPORT
  // still overrides, so the sweep can be repeated on any backend).
  apps::harness::RunOptions bcast_opt = options_for(Mode::BroadcastSeq);
  bcast_opt.net.transport = bench_transport(net::TransportKind::TreeMulticast);
  const auto bcast = apps::harness::run_barnes_hut(bcast_opt, cfg);
  const auto opt = apps::harness::run_barnes_hut(options_for(Mode::Optimized), cfg);
  std::printf("transports: %s / %s / %s\n", orig.transport.c_str(), bcast.transport.c_str(),
              opt.transport.c_str());

  if (orig.checksum != bcast.checksum || orig.checksum != opt.checksum) {
    std::printf("ERROR: checksums diverge across modes\n");
    return 1;
  }

  util::Table t({"", "Original", "BroadcastTree", "Optimized (RSE)", "paper par time"});
  t.add_row({"Parallel time (sec.)", fmt2(orig.par_s), fmt2(bcast.par_s), fmt2(opt.par_s),
             "50.4 / 36.9 / 21.1"});
  t.add_row({"Sequential time (sec.)", fmt2(orig.seq_s), fmt2(bcast.seq_s), fmt2(opt.seq_s),
             ""});
  t.add_row({"Total time (sec.)", fmt2(orig.total_s), fmt2(bcast.total_s), fmt2(opt.total_s),
             ""});
  t.add_row({"Par data (KB)", util::fmt_count(orig.par_kb), util::fmt_count(bcast.par_kb),
             util::fmt_count(opt.par_kb), "739,139 / 538,832 / 221,292"});
  t.add_row({"Par avg response (ms)", fmt2(orig.par_response_ms), fmt2(bcast.par_response_ms),
             fmt2(opt.par_response_ms), ""});
  std::printf("%s", t.render().c_str());

  std::printf("\nShape checks:\n");
  std::printf("  broadcast alone removes contention: %s (par %.2fs vs %.2fs)\n",
              bcast.par_s < orig.par_s ? "yes" : "NO", bcast.par_s, orig.par_s);
  std::printf("  replication beats broadcast-only:   %s (par %.2fs vs %.2fs)\n",
              opt.par_s < bcast.par_s ? "yes" : "NO", opt.par_s, bcast.par_s);
  const double gap = orig.par_s - opt.par_s;
  if (gap > 0) {
    std::printf("  fraction of the gain from contention elimination alone: %.0f%% "
                "(paper: ~half)\n",
                100.0 * (orig.par_s - bcast.par_s) / gap);
  }
  return 0;
}
