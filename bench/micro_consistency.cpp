// Micro-benchmarks (google-benchmark): vector timestamps, interval logs and
// the simulation engine's event dispatch -- the bookkeeping layer under
// every synchronization operation.
#include <benchmark/benchmark.h>

#include "sim/engine.hpp"
#include "tmk/interval.hpp"
#include "tmk/vector_clock.hpp"

namespace {

using repseq::sim::Engine;
using repseq::sim::microseconds;
using repseq::tmk::IntervalLog;
using repseq::tmk::IntervalRecord;
using repseq::tmk::VectorClock;

void BM_VectorClockMax(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  VectorClock a(n);
  VectorClock b(n);
  for (std::size_t i = 0; i < n; ++i) b.set(static_cast<std::uint32_t>(i), i * 3 % 17);
  for (auto _ : state) {
    a.max_with(b);
    benchmark::DoNotOptimize(a);
  }
}
BENCHMARK(BM_VectorClockMax)->Arg(8)->Arg(32)->Arg(128);

void BM_VectorClockCovers(benchmark::State& state) {
  VectorClock a(32);
  a.set(7, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.covers(7, 99));
  }
}
BENCHMARK(BM_VectorClockCovers);

void BM_IntervalLogInsertAndQuery(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    IntervalLog log(32);
    VectorClock vc(32);
    state.ResumeTiming();
    for (std::uint32_t i = 1; i <= 64; ++i) {
      auto rec = repseq::util::make_pooled<IntervalRecord>();
      rec->owner = i % 32;
      rec->index = log.known(i % 32) + 1;
      rec->vc = VectorClock(32);
      rec->pages = {i, i + 1};
      log.insert(std::move(rec));
    }
    benchmark::DoNotOptimize(log.records_after(vc).size());
  }
}
BENCHMARK(BM_IntervalLogInsertAndQuery);

void BM_EngineEventDispatch(benchmark::State& state) {
  for (auto _ : state) {
    Engine eng;
    int fired = 0;
    for (int i = 0; i < 1000; ++i) {
      eng.schedule_in(microseconds(i), [&fired] { ++fired; });
    }
    eng.run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EngineEventDispatch);

void BM_FiberSwitch(benchmark::State& state) {
  Engine eng;
  std::int64_t switches = 0;
  eng.spawn("spinner", [&] {
    for (auto _ : state) {
      eng.sleep_for(microseconds(1));
      ++switches;
    }
  });
  eng.run();
  benchmark::DoNotOptimize(switches);
}
BENCHMARK(BM_FiberSwitch);

}  // namespace

BENCHMARK_MAIN();
