// Cross-configuration property sweeps: the consistency protocol must
// deliver identical application results for every page size, node count and
// schedule combination; structured (ShObj) accesses and elements spanning
// page boundaries must behave like plain ones.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "ompnow/team.hpp"
#include "rse/controller.hpp"
#include "rse/policy/policy_engine.hpp"
#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

namespace repseq::tmk {
namespace {

using ompnow::Ctx;
using ompnow::Schedule;
using ompnow::SeqMode;

// ---------------------------------------------------------------------------
// Page size x node count sweep
// ---------------------------------------------------------------------------

class PageNodeSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t /*page*/, std::size_t /*nodes*/>> {
};

TEST_P(PageNodeSweep, StencilWorkloadConvergesIdentically) {
  const auto [page_bytes, nodes] = GetParam();
  TmkConfig cfg;
  cfg.page_bytes = page_bytes;
  cfg.heap_bytes = 1u << 20;
  Cluster cl(cfg, net::NetConfig{}, nodes);
  rse::RseController rse(cl, rse::FlowControl::Chained);
  ompnow::Team team(cl, SeqMode::MasterOnly, &rse);

  constexpr std::size_t kElems = 1024;
  auto a = ShArray<long>::alloc(cl, kElems, /*page_aligned=*/true);
  auto b = ShArray<long>::alloc(cl, kElems, /*page_aligned=*/true);

  long checksum = -1;
  cl.run([&](NodeRuntime&) {
    team.parallel_for(0, kElems, Schedule::StaticBlock, [&](const Ctx&, long i) {
      a.store(static_cast<std::size_t>(i), i);
    });
    // Two Jacobi-style sweeps with neighbor reads across block boundaries.
    for (int round = 0; round < 2; ++round) {
      team.parallel_for(1, kElems - 1, Schedule::StaticBlock, [&](const Ctx&, long i) {
        const auto u = static_cast<std::size_t>(i);
        b.store(u, a.load(u - 1) + a.load(u) + a.load(u + 1));
      });
      team.parallel_for(1, kElems - 1, Schedule::StaticBlock, [&](const Ctx&, long i) {
        a.store(static_cast<std::size_t>(i), b.load(static_cast<std::size_t>(i)) % 1000003);
      });
    }
    team.sequential([&](const Ctx&) {
      long s = 0;
      for (std::size_t i = 0; i < kElems; ++i) s += a.load(i);
      checksum = s;
    });
  });

  // Golden value computed once on the host.
  static long golden = -1;
  std::vector<long> ha(kElems);
  std::vector<long> hb(kElems);
  for (std::size_t i = 0; i < kElems; ++i) ha[i] = static_cast<long>(i);
  for (int round = 0; round < 2; ++round) {
    for (std::size_t i = 1; i + 1 < kElems; ++i) hb[i] = ha[i - 1] + ha[i] + ha[i + 1];
    for (std::size_t i = 1; i + 1 < kElems; ++i) ha[i] = hb[i] % 1000003;
  }
  long expect = 0;
  for (std::size_t i = 0; i < kElems; ++i) expect += ha[i];
  golden = expect;
  EXPECT_EQ(checksum, golden) << "page=" << page_bytes << " nodes=" << nodes;
}

INSTANTIATE_TEST_SUITE_P(Matrix, PageNodeSweep,
                         ::testing::Combine(::testing::Values(1024u, 4096u),
                                            ::testing::Values(2u, 5u, 9u)));

// ---------------------------------------------------------------------------
// Structured access
// ---------------------------------------------------------------------------

struct Particle {
  double x = 0;
  double y = 0;
  int charge = 0;
  int pad = 0;
};

TEST(StructuredAccess, FieldGranularUpdatesMergeAcrossWriters) {
  TmkConfig cfg;
  cfg.heap_bytes = 1u << 20;
  Cluster cl(cfg, net::NetConfig{}, 2);
  auto parts = ShArray<Particle>::alloc(cl, 64);

  const auto work = cl.register_work([&](NodeRuntime& rt) {
    // Node 0 writes x/y, node 1 writes charge of the SAME elements: field
    // writes touch disjoint words, so the multiple-writer protocol merges.
    for (std::size_t i = 0; i < parts.size(); ++i) {
      if (rt.id() == 0) {
        parts.set_field(i, &Particle::x, static_cast<double>(i));
        parts.set_field(i, &Particle::y, static_cast<double>(2 * i));
      } else {
        parts.set_field(i, &Particle::charge, static_cast<int>(i % 3));
      }
    }
  });

  cl.run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl.work(work)(rt);
    rt.join_master();
    for (std::size_t i = 0; i < parts.size(); ++i) {
      const Particle p = parts.get(i);
      EXPECT_DOUBLE_EQ(p.x, static_cast<double>(i));
      EXPECT_DOUBLE_EQ(p.y, static_cast<double>(2 * i));
      EXPECT_EQ(p.charge, static_cast<int>(i % 3));
    }
  });
}

TEST(StructuredAccess, ShObjRoundTrip) {
  TmkConfig cfg;
  cfg.heap_bytes = 1u << 20;
  Cluster cl(cfg, net::NetConfig{}, 2);
  auto obj = ShObj<Particle>::alloc(cl);
  double seen = -1;

  const auto work = cl.register_work([&](NodeRuntime& rt) {
    if (rt.id() == 1) {
      obj.set(&Particle::x, 42.5);
    }
    rt.barrier(3);
    if (rt.id() == 0) seen = obj.get(&Particle::x);
  });

  cl.run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl.work(work)(rt);
    rt.join_master();
  });
  EXPECT_DOUBLE_EQ(seen, 42.5);
}

TEST(StructuredAccess, ElementsSpanningPageBoundaries) {
  // A 24-byte element straddling a 1KB page boundary must fetch both pages.
  TmkConfig cfg;
  cfg.page_bytes = 1024;
  cfg.heap_bytes = 1u << 20;
  Cluster cl(cfg, net::NetConfig{}, 2);
  struct Wide {
    double a, b, c;
  };
  // 1024/24 is not integral, so some element crosses each page boundary.
  auto arr = ShArray<Wide>::alloc(cl, 128);
  double total = -1;

  const auto work = cl.register_work([&](NodeRuntime& rt) {
    if (rt.id() == 1) {
      for (std::size_t i = 0; i < arr.size(); ++i) {
        arr.store(i, Wide{1.0 * i, 2.0 * i, 3.0 * i});
      }
    }
  });

  cl.run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl.work(work)(rt);
    rt.join_master();
    double s = 0;
    for (std::size_t i = 0; i < arr.size(); ++i) {
      const Wide w = arr.get(i);
      s += w.a + w.b + w.c;
    }
    total = s;
  });

  double expect = 0;
  for (int i = 0; i < 128; ++i) expect += 6.0 * i;
  EXPECT_DOUBLE_EQ(total, expect);
}

// ---------------------------------------------------------------------------
// Shard-count axis: sharding the multicast medium may change timing, never
// results.  Final heap checksums and interval vectors (per-node vector
// clocks) must be invariant across S and identical to the single-hub run,
// for every flow-control variant.
// ---------------------------------------------------------------------------

struct ShardRunResult {
  long checksum = 0;
  std::vector<VectorClock> interval_vectors;

  bool operator==(const ShardRunResult&) const = default;
};

ShardRunResult run_replicated_stencil(const net::NetConfig& ncfg, rse::FlowControl flow) {
  constexpr std::size_t kNodes = 5;
  constexpr std::size_t kElems = 4096;  // 32 KB over 1 KB pages = 32 groups
  TmkConfig cfg;
  cfg.page_bytes = 1024;
  cfg.heap_bytes = 1u << 20;
  Cluster cl(cfg, ncfg, kNodes);
  rse::RseController rse(cl, flow);
  ompnow::Team team(cl, SeqMode::Replicated, &rse);
  auto a = ShArray<long>::alloc(cl, kElems, /*page_aligned=*/true);

  ShardRunResult out;
  cl.run([&](NodeRuntime&) {
    team.parallel_for(0, kElems, Schedule::StaticBlock, [&](const Ctx&, long i) {
      a.store(static_cast<std::size_t>(i), 3 * i + 1);
    });
    // Replicated sequential section: every node faults on every other
    // node's pages, one RSE round per page spread over the shards.
    team.sequential([&](const Ctx&) {
      for (std::size_t i = 0; i < kElems; ++i) a.store(i, a.load(i) % 1000003 + 7);
    });
    team.parallel_for(0, kElems, Schedule::StaticCyclic, [&](const Ctx&, long i) {
      a.store(static_cast<std::size_t>(i), a.load(static_cast<std::size_t>(i)) * 2);
    });
    team.sequential([&](const Ctx&) {
      long s = 0;
      for (std::size_t i = 0; i < kElems; ++i) s += a.load(i);
      out.checksum = s;
    });
  });
  for (net::NodeId n = 0; n < kNodes; ++n) {
    out.interval_vectors.push_back(cl.node(n).vc());
  }

  // Per-shard accounting consistency: the protocol layer's frame/byte
  // counters must agree with the transport's busy time shard by shard --
  // a shard carried frames if and only if its medium transmitted.
  const std::vector<HubOccupancy> occ = cl.hub_occupancy();
  EXPECT_EQ(occ.size(), cl.network().hub_shards());
  std::uint64_t frames_total = 0;
  for (std::size_t s = 0; s < occ.size(); ++s) {
    EXPECT_EQ(occ[s].mcast_msgs > 0, occ[s].busy.ns > 0) << "shard " << s;
    EXPECT_EQ(occ[s].mcast_msgs > 0, occ[s].mcast_bytes > 0) << "shard " << s;
    frames_total += occ[s].mcast_msgs;
  }
  EXPECT_GT(frames_total, 0u) << "replicated section must multicast";
  return out;
}

class ShardCountSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, rse::FlowControl>> {};

TEST_P(ShardCountSweep, ChecksumAndIntervalVectorsInvariantAcrossShards) {
  const auto [shards, flow] = GetParam();

  net::NetConfig hub;  // single-hub reference
  hub.transport = net::TransportKind::HubSwitch;
  const ShardRunResult ref = run_replicated_stencil(hub, flow);

  net::NetConfig sharded;
  sharded.transport = net::TransportKind::ShardedHub;
  sharded.hub_shards = shards;
  const ShardRunResult got = run_replicated_stencil(sharded, flow);

  EXPECT_EQ(got.checksum, ref.checksum) << "S=" << shards;
  EXPECT_EQ(got.interval_vectors, ref.interval_vectors) << "S=" << shards;

  // Host-side golden value: the workload is deterministic arithmetic.
  std::vector<long> h(4096);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = 3 * static_cast<long>(i) + 1;
  for (auto& v : h) v = v % 1000003 + 7;
  long golden = 0;
  for (auto& v : h) golden += 2 * v;
  EXPECT_EQ(got.checksum, golden);
}

INSTANTIATE_TEST_SUITE_P(
    ShardsByFlow, ShardCountSweep,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(rse::FlowControl::Chained, rse::FlowControl::Windowed,
                                         rse::FlowControl::None)),
    [](const ::testing::TestParamInfo<std::tuple<std::size_t, rse::FlowControl>>& info) {
      const rse::FlowControl f = std::get<1>(info.param);
      std::string name = "S";
      name += std::to_string(std::get<0>(info.param));
      name += f == rse::FlowControl::Chained    ? "Chained"
              : f == rse::FlowControl::Windowed ? "Windowed"
                                                : "None";
      return name;
    });

// ---------------------------------------------------------------------------
// Cross-backend ordering invariance: the event-driven tree reorders an
// interior node's own traffic against its forwards (true arrival order), the
// sharded hub interleaves rounds across media -- but the protocol result may
// never notice.  Checksums and interval vectors must be identical across
// HubSwitch / ShardedHub S in {1, 4} / event-driven TreeMulticast for every
// section mode x flow-control x policy combination.
// ---------------------------------------------------------------------------

struct OrderingAxis {
  SeqMode mode;
  rse::FlowControl flow;
  rse::policy::PolicyKind policy;  // consulted in SeqMode::Adaptive only
};

ShardRunResult run_ordering_workload(const net::NetConfig& ncfg, const OrderingAxis& ax,
                                     std::size_t kNodes = 5, std::size_t kElems = 2048) {
  TmkConfig cfg;
  cfg.page_bytes = 1024;
  cfg.heap_bytes = 1u << 20;
  if (kNodes > 128) {
    // A single server fields an O(N) request backlog per hot page; both the
    // retransmit and the RSE recovery timeouts must cover that service time
    // at large N or the timeout traffic snowballs (same scaling as the perf
    // harnesses).
    cfg.request_timeout = sim::milliseconds(static_cast<std::int64_t>(kNodes));
    cfg.rse_wait_timeout = sim::milliseconds(static_cast<std::int64_t>(16 * kNodes));
  }
  Cluster cl(cfg, ncfg, kNodes);
  rse::RseController rse(cl, ax.flow);
  std::unique_ptr<rse::policy::PolicyEngine> policy;
  if (ax.mode == SeqMode::Adaptive) {
    rse::policy::PolicyConfig pcfg;
    pcfg.kind = ax.policy;
    policy = std::make_unique<rse::policy::PolicyEngine>(cl, pcfg);
  }
  ompnow::Team team(cl, ax.mode, &rse, policy.get());
  auto a = ShArray<long>::alloc(cl, kElems, /*page_aligned=*/true);

  ShardRunResult out;
  cl.run([&](NodeRuntime&) {
    team.parallel_for(0, kElems, Schedule::StaticBlock, [&](const Ctx&, long i) {
      a.store(static_cast<std::size_t>(i), 5 * i + 3);
    });
    // Two stamped sites so an adaptive policy has a site mix to decide
    // over (and its section-open multicasts ride every backend's ordering).
    for (int round = 0; round < 2; ++round) {
      team.sequential(1, [&](const Ctx&) {
        for (std::size_t i = 0; i < kElems; ++i) a.store(i, a.load(i) % 1000003 + 11);
      });
      team.parallel_for(0, kElems, Schedule::StaticCyclic, [&](const Ctx&, long i) {
        a.store(static_cast<std::size_t>(i), a.load(static_cast<std::size_t>(i)) * 2 + 1);
      });
      team.sequential(2, [&](const Ctx&) {
        long s = 0;
        for (std::size_t i = 0; i < kElems; ++i) s += a.load(i);
        out.checksum = s;
      });
    }
  });
  for (net::NodeId n = 0; n < kNodes; ++n) {
    out.interval_vectors.push_back(cl.node(n).vc());
  }
  return out;
}

class OrderingInvarianceSweep : public ::testing::TestWithParam<OrderingAxis> {};

TEST_P(OrderingInvarianceSweep, ChecksumAndIntervalVectorsInvariantAcrossBackends) {
  const OrderingAxis& ax = GetParam();

  net::NetConfig hub;  // single-hub reference
  hub.transport = net::TransportKind::HubSwitch;
  const ShardRunResult ref = run_ordering_workload(hub, ax);

  // Host-side golden value: deterministic arithmetic.
  std::vector<long> h(2048);
  for (std::size_t i = 0; i < h.size(); ++i) h[i] = 5 * static_cast<long>(i) + 3;
  long golden = 0;
  for (int round = 0; round < 2; ++round) {
    for (auto& v : h) v = v % 1000003 + 11;
    for (auto& v : h) v = v * 2 + 1;
    golden = 0;
    for (auto& v : h) golden += v;
  }
  ASSERT_EQ(ref.checksum, golden);

  const auto check = [&](net::TransportKind kind, std::size_t shards, const char* what) {
    net::NetConfig ncfg;
    ncfg.transport = kind;
    ncfg.hub_shards = shards;
    const ShardRunResult got = run_ordering_workload(ncfg, ax);
    EXPECT_EQ(got.checksum, ref.checksum) << what;
    EXPECT_EQ(got.interval_vectors, ref.interval_vectors) << what;
  };
  check(net::TransportKind::ShardedHub, 1, "sharded S=1");
  check(net::TransportKind::ShardedHub, 4, "sharded S=4");
  check(net::TransportKind::TreeMulticast, 1, "event-driven tree");
}

INSTANTIATE_TEST_SUITE_P(
    ModeByFlowByPolicy, OrderingInvarianceSweep,
    ::testing::Values(
        OrderingAxis{SeqMode::Replicated, rse::FlowControl::Chained,
                     rse::policy::PolicyKind::Greedy},
        OrderingAxis{SeqMode::Replicated, rse::FlowControl::Windowed,
                     rse::policy::PolicyKind::Greedy},
        OrderingAxis{SeqMode::Replicated, rse::FlowControl::None,
                     rse::policy::PolicyKind::Greedy},
        OrderingAxis{SeqMode::BroadcastAfter, rse::FlowControl::Chained,
                     rse::policy::PolicyKind::Greedy},
        OrderingAxis{SeqMode::Adaptive, rse::FlowControl::Chained,
                     rse::policy::PolicyKind::Greedy},
        OrderingAxis{SeqMode::Adaptive, rse::FlowControl::Windowed,
                     rse::policy::PolicyKind::Hysteresis},
        OrderingAxis{SeqMode::Adaptive, rse::FlowControl::None,
                     rse::policy::PolicyKind::Static}),
    [](const ::testing::TestParamInfo<OrderingAxis>& info) {
      const OrderingAxis& ax = info.param;
      std::string name = ax.mode == SeqMode::Replicated        ? "Replicated"
                         : ax.mode == SeqMode::BroadcastAfter  ? "BroadcastAfter"
                                                               : "Adaptive";
      name += ax.flow == rse::FlowControl::Chained    ? "Chained"
              : ax.flow == rse::FlowControl::Windowed ? "Windowed"
                                                      : "NoFlow";
      if (ax.mode == SeqMode::Adaptive) {
        name += ax.policy == rse::policy::PolicyKind::Static   ? "Static"
                : ax.policy == rse::policy::PolicyKind::Greedy ? "Greedy"
                                                               : "Hysteresis";
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Batch-window invariance: frame coalescing (net::BatchingTransport around
// the synchronous backends, the piggyback queues inside the forwarding tree)
// reshapes wire framing and timing -- fewer, fatter frames, windowed flush
// events -- but the protocol result may never notice.  Checksums and
// interval vectors must match the unbatched single-hub reference for every
// window size on all four backends.
// ---------------------------------------------------------------------------

class BatchWindowSweep : public ::testing::TestWithParam<std::int64_t /*window, us*/> {};

TEST_P(BatchWindowSweep, ChecksumAndIntervalVectorsInvariantAcrossWindows) {
  const std::int64_t window_us = GetParam();
  const OrderingAxis ax{SeqMode::Replicated, rse::FlowControl::Chained,
                        rse::policy::PolicyKind::Greedy};

  net::NetConfig hub;  // unbatched single-hub reference
  hub.transport = net::TransportKind::HubSwitch;
  const ShardRunResult ref = run_ordering_workload(hub, ax);

  const auto check = [&](net::TransportKind kind, std::size_t shards, const char* what) {
    net::NetConfig ncfg;
    ncfg.transport = kind;
    ncfg.hub_shards = shards;
    ncfg.batch_window = sim::microseconds(window_us);
    const ShardRunResult got = run_ordering_workload(ncfg, ax);
    EXPECT_EQ(got.checksum, ref.checksum) << what << " w=" << window_us << "us";
    EXPECT_EQ(got.interval_vectors, ref.interval_vectors) << what << " w=" << window_us << "us";
  };
  check(net::TransportKind::HubSwitch, 1, "hub");
  check(net::TransportKind::ShardedHub, 4, "sharded S=4");
  check(net::TransportKind::DirectAll, 1, "direct fan-out");
  check(net::TransportKind::TreeMulticast, 1, "piggybacking tree");
}

INSTANTIATE_TEST_SUITE_P(Windows, BatchWindowSweep, ::testing::Values(50, 500, 5000),
                         [](const ::testing::TestParamInfo<std::int64_t>& info) {
                           std::string name = "W";
                           name += std::to_string(info.param);
                           name += "us";
                           return name;
                         });

// ---------------------------------------------------------------------------
// Trace invariance: the observability layer keys everything to virtual time
// and never schedules events of its own, so recording a full trace
// (REPSEQ_TRACE set, all categories) may not perturb a single protocol
// decision.  Checksums and interval vectors must be bit-identical with the
// tracer on vs off, on all four wire backends, batched and unbatched -- the
// adaptive workload also drags the policy-decision and registry hooks
// through the comparison.
// ---------------------------------------------------------------------------

struct TraceAxis {
  net::TransportKind kind;
  std::size_t shards;
  std::int64_t window_us;
};

class TraceInvarianceSweep : public ::testing::TestWithParam<TraceAxis> {};

TEST_P(TraceInvarianceSweep, TracingDoesNotPerturbChecksumOrIntervalVectors) {
  const TraceAxis& ax = GetParam();
  const OrderingAxis work{SeqMode::Adaptive, rse::FlowControl::Chained,
                          rse::policy::PolicyKind::Greedy};
  net::NetConfig ncfg;
  ncfg.transport = ax.kind;
  ncfg.hub_shards = ax.shards;
  ncfg.batch_window = sim::microseconds(ax.window_us);

  // The Cluster constructor reads REPSEQ_TRACE, like REPSEQ_EVENTQ above.
  ::unsetenv("REPSEQ_TRACE");
  const ShardRunResult off = run_ordering_workload(ncfg, work);

  const std::string path = std::string("/tmp/repseq_trace_invariance_") +
                           std::to_string(static_cast<int>(ax.kind)) + "_" +
                           std::to_string(ax.window_us) + ".json";
  ::setenv("REPSEQ_TRACE", path.c_str(), 1);
  const ShardRunResult on = run_ordering_workload(ncfg, work);
  ::unsetenv("REPSEQ_TRACE");

  EXPECT_EQ(on.checksum, off.checksum);
  EXPECT_EQ(on.interval_vectors, off.interval_vectors);

  // The traced run must actually have written a trace (cluster destruction
  // flushes the ring to the file).
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "trace file missing: " << path;
  std::string head;
  std::getline(in, head);
  EXPECT_NE(head.find("traceEvents"), std::string::npos);
  in.close();
  std::remove(path.c_str());
}

INSTANTIATE_TEST_SUITE_P(
    TransportsByWindow, TraceInvarianceSweep,
    ::testing::Values(TraceAxis{net::TransportKind::HubSwitch, 1, 0},
                      TraceAxis{net::TransportKind::HubSwitch, 1, 500},
                      TraceAxis{net::TransportKind::ShardedHub, 4, 500},
                      TraceAxis{net::TransportKind::DirectAll, 1, 500},
                      TraceAxis{net::TransportKind::TreeMulticast, 1, 0},
                      TraceAxis{net::TransportKind::TreeMulticast, 1, 500}),
    [](const ::testing::TestParamInfo<TraceAxis>& info) {
      const TraceAxis& ax = info.param;
      std::string name = ax.kind == net::TransportKind::HubSwitch    ? "Hub"
                         : ax.kind == net::TransportKind::ShardedHub ? "Sharded4"
                         : ax.kind == net::TransportKind::DirectAll  ? "Direct"
                                                                     : "Tree";
      name += ax.window_us == 0 ? "Unbatched" : "W" + std::to_string(ax.window_us) + "us";
      return name;
    });

// ---------------------------------------------------------------------------
// Transport invariance at scale: the same protocol guarantee, but at the
// cluster sizes the perf work targets.  All four wire backends must agree on
// checksums and interval vectors at N in {16, 32, 256} -- the large-N case
// is exactly where the pooled hot paths (payload handles, contiguous diffs,
// pooled event slots) carry the traffic, so this doubles as an end-to-end
// correctness gate on the allocation rework.
// ---------------------------------------------------------------------------

class TransportScaleSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TransportScaleSweep, AllFourTransportsAgreeOnChecksumAndIntervalVectors) {
  const std::size_t nodes = GetParam();
  const OrderingAxis ax{SeqMode::Replicated, rse::FlowControl::Chained,
                        rse::policy::PolicyKind::Greedy};

  // A leaner workload than the 5-node ordering axis: at N=256 every extra
  // element multiplies 4 transports x 256 faulting nodes, and the property
  // being pinned (cross-backend agreement) does not need more pages.
  constexpr std::size_t kElems = 1024;

  net::NetConfig hub;
  hub.transport = net::TransportKind::HubSwitch;
  const ShardRunResult ref = run_ordering_workload(hub, ax, nodes, kElems);

  const auto check = [&](net::TransportKind kind, std::size_t shards, const char* what) {
    net::NetConfig ncfg;
    ncfg.transport = kind;
    ncfg.hub_shards = shards;
    const ShardRunResult got = run_ordering_workload(ncfg, ax, nodes, kElems);
    EXPECT_EQ(got.checksum, ref.checksum) << what << " N=" << nodes;
    EXPECT_EQ(got.interval_vectors, ref.interval_vectors) << what << " N=" << nodes;
  };
  check(net::TransportKind::ShardedHub, 4, "sharded S=4");
  check(net::TransportKind::DirectAll, 1, "direct fan-out");
  check(net::TransportKind::TreeMulticast, 1, "event-driven tree");
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, TransportScaleSweep, ::testing::Values(16u, 32u, 256u));

// ---------------------------------------------------------------------------
// Determinism across configurations
// ---------------------------------------------------------------------------

class DeterminismSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DeterminismSweep, TwoRunsProduceIdenticalEventCounts) {
  const std::size_t nodes = GetParam();
  auto run_once = [nodes] {
    TmkConfig cfg;
    cfg.heap_bytes = 1u << 20;
    Cluster cl(cfg, net::NetConfig{}, nodes);
    rse::RseController rse(cl, rse::FlowControl::Chained);
    ompnow::Team team(cl, SeqMode::Replicated, &rse);
    auto data = ShArray<int>::alloc(cl, 2000);
    cl.run([&](NodeRuntime&) {
      team.parallel_for(0, 2000, Schedule::StaticCyclic, [&](const Ctx&, long i) {
        data.store(static_cast<std::size_t>(i), static_cast<int>(i));
      });
      team.sequential([&](const Ctx&) {
        for (std::size_t i = 0; i < data.size(); ++i) data.store(i, data.load(i) + 1);
      });
    });
    return std::tuple{cl.engine().now().ns, cl.engine().events_executed(),
                      cl.network().messages_sent(), cl.network().bytes_sent()};
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, DeterminismSweep, ::testing::Values(2u, 4u, 7u));

// ---------------------------------------------------------------------------
// Event-queue structure invariance: REPSEQ_EVENTQ selects the scheduler
// heap's arity (binary vs quad).  The queue's (time, seq) order is total, so
// the pop sequence -- and therefore every protocol decision downstream --
// must be bit-identical whichever structure serves it.  This is the
// regression gate for swapping event-queue implementations.
// ---------------------------------------------------------------------------

struct ArityRunResult {
  long checksum = 0;
  std::int64_t final_ns = 0;
  std::uint64_t events = 0;
  std::uint64_t msgs = 0;
  std::vector<VectorClock> interval_vectors;
  std::vector<rse::policy::Decision> decisions;
};

ArityRunResult run_with_eventq(const char* arity) {
  ::setenv("REPSEQ_EVENTQ", arity, 1);
  constexpr std::size_t kNodes = 9;
  TmkConfig cfg;
  cfg.heap_bytes = 1u << 20;
  Cluster cl(cfg, net::NetConfig{}, kNodes);
  ::unsetenv("REPSEQ_EVENTQ");
  rse::RseController rse(cl, rse::FlowControl::Chained);
  rse::policy::PolicyConfig pcfg;
  pcfg.kind = rse::policy::PolicyKind::Greedy;
  rse::policy::PolicyEngine policy(cl, pcfg);
  ompnow::Team team(cl, SeqMode::Adaptive, &rse, &policy);
  auto a = ShArray<long>::alloc(cl, 2048, /*page_aligned=*/true);

  ArityRunResult out;
  cl.run([&](NodeRuntime&) {
    team.parallel_for(0, 2048, Schedule::StaticBlock, [&](const Ctx&, long i) {
      a.store(static_cast<std::size_t>(i), 7 * i + 5);
    });
    for (int round = 0; round < 3; ++round) {
      team.sequential(1, [&](const Ctx&) {
        for (std::size_t i = 0; i < 2048; ++i) a.store(i, a.load(i) % 1000003 + 13);
      });
      team.parallel_for(0, 2048, Schedule::StaticCyclic, [&](const Ctx&, long i) {
        a.store(static_cast<std::size_t>(i), a.load(static_cast<std::size_t>(i)) * 2 + 1);
      });
    }
    team.sequential(2, [&](const Ctx&) {
      long s = 0;
      for (std::size_t i = 0; i < 2048; ++i) s += a.load(i);
      out.checksum = s;
    });
  });
  out.final_ns = cl.engine().now().ns;
  out.events = cl.engine().events_executed();
  out.msgs = cl.network().messages_sent();
  for (net::NodeId n = 0; n < kNodes; ++n) {
    out.interval_vectors.push_back(cl.node(n).vc());
  }
  out.decisions = policy.decisions();
  return out;
}

TEST(EventQueueArity, BinaryAndQuadEnginesProduceIdenticalDecisionLogs) {
  const ArityRunResult bin = run_with_eventq("binary");
  const ArityRunResult quad = run_with_eventq("quad");

  EXPECT_EQ(bin.checksum, quad.checksum);
  EXPECT_EQ(bin.final_ns, quad.final_ns);
  EXPECT_EQ(bin.events, quad.events);
  EXPECT_EQ(bin.msgs, quad.msgs);
  EXPECT_EQ(bin.interval_vectors, quad.interval_vectors);

  ASSERT_EQ(bin.decisions.size(), quad.decisions.size());
  ASSERT_GT(bin.decisions.size(), 0u) << "workload must exercise the policy engine";
  for (std::size_t i = 0; i < bin.decisions.size(); ++i) {
    const rse::policy::Decision& b = bin.decisions[i];
    const rse::policy::Decision& q = quad.decisions[i];
    EXPECT_TRUE(b.same_choice(q)) << "decision " << i;
    EXPECT_EQ(b.section_s, q.section_s) << "decision " << i;
    EXPECT_EQ(b.mcast_kb, q.mcast_kb) << "decision " << i;
  }
}

}  // namespace
}  // namespace repseq::tmk
