// Per-node page state for the multiple-writer lazy-invalidate protocol.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "tmk/diff.hpp"
#include "tmk/interval.hpp"
#include "tmk/vector_clock.hpp"

namespace repseq::tmk {

enum class PageProt : std::uint8_t {
  Invalid,   // pending write notices; access faults
  ReadOnly,  // up to date; first write creates a twin
  Writable,  // dirty in the current interval (twin exists)
};

struct PageState {
  PageProt prot = PageProt::ReadOnly;

  /// Copy taken at the first write after the page was last clean; present
  /// while there are local modifications not yet captured in a diff.
  std::unique_ptr<std::byte[]> twin;

  /// Own interval indices whose modifications live in the current twin
  /// (diff not yet created -- lazy diff creation, paper Section 5.1).
  std::vector<std::uint32_t> open_intervals;

  /// True when written during the current (not yet closed) interval.
  bool dirty_in_current = false;

  /// Write notices received but whose diffs have not been applied here,
  /// in arrival order.  Sorted causally at fault time.
  std::vector<IntervalRecordPtr> pending;

  /// Local knowledge timestamp: covers (owner, index) iff this copy
  /// reflects owner's interval `index` modifications to this page.
  /// This is what the paper's "valid notices" communicate (Section 5.4.1).
  VectorClock valid_vc;

  /// Set during a replicated sequential section when the page was dirty on
  /// entry and has been write-protected (paper Section 5.3).
  bool rse_write_protected = false;

  [[nodiscard]] bool has_twin() const { return twin != nullptr; }
};

}  // namespace repseq::tmk
