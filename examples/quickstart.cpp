// Quickstart: the smallest complete OpenMP/NOW program on the simulated
// cluster -- a vector scale + reduce with a sequential rescaling step
// between two parallel phases, run both on the base system and with
// replicated sequential execution.
//
// Build & run:   ./build/examples/quickstart
//
// What to look at: the two systems print identical results, but the
// replicated run reports zero parallel-section page faults after the
// sequential section -- the contention is gone (the paper's core effect).
#include <cstdio>

#include "ompnow/team.hpp"
#include "rse/controller.hpp"
#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

using namespace repseq;

namespace {

void run_once(ompnow::SeqMode mode, const char* label) {
  constexpr std::size_t kNodes = 8;
  constexpr std::size_t kElems = 16384;

  // A cluster is an engine + network + one DSM runtime per node.
  tmk::TmkConfig cfg;
  cfg.heap_bytes = 4u << 20;
  tmk::Cluster cluster(cfg, net::NetConfig{}, kNodes);
  rse::RseController rse(cluster, rse::FlowControl::Chained);
  ompnow::Team team(cluster, mode, &rse);

  // Shared data lives on the shared heap and is addressed via ShArray.
  auto data = tmk::ShArray<double>::alloc(cluster, kElems, /*page_aligned=*/true);

  double result = 0.0;
  cluster.run([&](tmk::NodeRuntime&) {
    // Parallel: every thread initializes its block.
    team.parallel_for(0, static_cast<long>(kElems), ompnow::Schedule::StaticBlock,
                      [&](const ompnow::Ctx&, long i) {
                        data.store(static_cast<std::size_t>(i), static_cast<double>(i % 100));
                      });

    // Sequential: rescale everything (the contended section -- on the base
    // system every thread will fetch all of this from the master next).
    team.sequential([&](const ompnow::Ctx&) {
      for (std::size_t i = 0; i < kElems; ++i) data.store(i, data.load(i) * 2.0 + 1.0);
    });

    // Parallel: block-wise reduction into per-thread slots, master folds.
    auto partial = tmk::ShArray<double>::alloc(cluster, kNodes, /*page_aligned=*/true);
    team.parallel([&](const ompnow::Ctx& ctx) {
      const auto r = ompnow::block_range(0, static_cast<long>(kElems), ctx.tid, ctx.nthreads);
      double s = 0.0;
      for (long i = r.lo; i < r.hi; ++i) s += data.load(static_cast<std::size_t>(i));
      partial.store(static_cast<std::size_t>(ctx.tid), s);
    });
    team.sequential([&](const ompnow::Ctx&) {
      double s = 0.0;
      for (std::size_t t = 0; t < kNodes; ++t) s += partial.load(t);
      result = s;
    });
  });

  const tmk::PhaseCounters par = cluster.total(tmk::Phase::Parallel);
  const tmk::PhaseCounters seq = cluster.total(tmk::Phase::Sequential);
  std::printf("%-10s result=%.1f  virtual time=%.3fs  par faults=%llu  "
              "par avg response=%.2fms  seq msgs=%llu\n",
              label, result, cluster.engine().now().seconds(),
              static_cast<unsigned long long>(par.page_faults), par.response_ms.mean(),
              static_cast<unsigned long long>(seq.msgs_sent));
}

}  // namespace

int main() {
  std::printf("OpenMP/NOW quickstart on an 8-node simulated cluster\n\n");
  run_once(ompnow::SeqMode::MasterOnly, "base");
  run_once(ompnow::SeqMode::Replicated, "replicated");
  std::printf("\nSame answer; the replicated run removes the post-sequential fault storm.\n");
  return 0;
}
