#include "net/hub_switch_transport.hpp"

namespace repseq::net {

std::size_t HubSwitchTransport::multicast(const Message& msg, std::size_t wire_bytes,
                                          const DeliverFn& deliver) {
  // One frame occupies the shared medium; all receivers see it at the same
  // instant once it has fully propagated.
  const sim::SimTime done = hub_.transmit(wire_bytes, eng_.now());
  for (NodeId n = 0; n < nics_.size(); ++n) {
    if (n == msg.src) continue;  // the sender consumes its own data locally
    deliver(n, done);
  }
  return 1;
}

}  // namespace repseq::net
