#include <gtest/gtest.h>

#include "util/stats_accum.hpp"
#include "util/table.hpp"

namespace repseq::util {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, BasicMoments) {
  Accumulator a;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.sum(), 40.0);
}

TEST(Accumulator, MergeMatchesSequential) {
  Accumulator whole;
  Accumulator left;
  Accumulator right;
  for (int i = 0; i < 100; ++i) {
    const double x = i * 0.37 - 3.0;
    whole.add(x);
    (i % 2 == 0 ? left : right).add(x);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_NEAR(left.min(), whole.min(), 0.0);
  EXPECT_NEAR(left.max(), whole.max(), 0.0);
}

TEST(Accumulator, MergeWithEmpty) {
  Accumulator a;
  a.add(1.0);
  Accumulator empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 1u);
  empty.merge(a);
  EXPECT_EQ(empty.count(), 1u);
  EXPECT_DOUBLE_EQ(empty.mean(), 1.0);
}

TEST(Table, RendersAlignedCells) {
  Table t({"row", "paper", "measured"});
  t.add_row({"Total time (sec.)", "53.6", "48.1"});
  t.add_rule();
  t.add_row({"Speedup", "6.7", "7.0"});
  const std::string s = t.render();
  EXPECT_NE(s.find("Total time (sec.)"), std::string::npos);
  EXPECT_NE(s.find("| row"), std::string::npos);
  // Every data line has the same width.
  std::size_t width = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    std::size_t next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, width) << "ragged table line";
    pos = next + 1;
  }
}

TEST(TableFormat, FixedDigits) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(10.0, 1), "10.0");
}

TEST(TableFormat, ThousandsSeparators) {
  EXPECT_EQ(fmt_count(0), "0");
  EXPECT_EQ(fmt_count(999), "999");
  EXPECT_EQ(fmt_count(1000), "1,000");
  EXPECT_EQ(fmt_count(5006252), "5,006,252");
  EXPECT_EQ(fmt_count(100), "100");
  EXPECT_EQ(fmt_count(1234567890ULL), "1,234,567,890");
}

TEST(TableFormat, PercentChange) {
  EXPECT_EQ(fmt_pct_change(6.7, 10.1), "+51%");
  EXPECT_EQ(fmt_pct_change(0.0, 1.0), "n/a");
  EXPECT_EQ(fmt_pct_change(10.0, 5.0), "-50%");
}

}  // namespace
}  // namespace repseq::util
