// A zero-initialized byte buffer whose physical pages are faulted in on
// first touch.  The simulator gives every node a multi-megabyte "shared
// heap" backing store, but typical workloads touch a small fraction of it;
// a std::vector<std::byte> would memset the whole reservation up front
// (gigabytes of page faults at 256+ nodes).  On POSIX systems this uses an
// anonymous private mmap, whose pages the kernel materializes lazily from
// the shared zero page; elsewhere it falls back to calloc (which large
// allocators also serve lazily).
#pragma once

#include <cstddef>
#include <cstdlib>

#include "util/check.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define REPSEQ_LAZY_BYTES_MMAP 1
#else
#define REPSEQ_LAZY_BYTES_MMAP 0
#endif

namespace repseq::util {

class LazyBytes {
 public:
  LazyBytes() = default;

  explicit LazyBytes(std::size_t bytes) : size_(bytes) {
    if (bytes == 0) return;
#if REPSEQ_LAZY_BYTES_MMAP
    void* p = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_PRIVATE | MAP_ANONYMOUS, -1, 0);
    REPSEQ_CHECK(p != MAP_FAILED, "mmap of node memory failed");
    data_ = static_cast<std::byte*>(p);
#else
    data_ = static_cast<std::byte*>(std::calloc(bytes, 1));
    REPSEQ_CHECK(data_ != nullptr, "allocation of node memory failed");
#endif
  }

  LazyBytes(const LazyBytes&) = delete;
  LazyBytes& operator=(const LazyBytes&) = delete;

  LazyBytes(LazyBytes&& o) noexcept : data_(o.data_), size_(o.size_) {
    o.data_ = nullptr;
    o.size_ = 0;
  }
  LazyBytes& operator=(LazyBytes&& o) noexcept {
    if (this != &o) {
      release();
      data_ = o.data_;
      size_ = o.size_;
      o.data_ = nullptr;
      o.size_ = 0;
    }
    return *this;
  }

  ~LazyBytes() { release(); }

  [[nodiscard]] std::byte* data() { return data_; }
  [[nodiscard]] const std::byte* data() const { return data_; }
  [[nodiscard]] std::size_t size() const { return size_; }

 private:
  void release() {
    if (data_ == nullptr) return;
#if REPSEQ_LAZY_BYTES_MMAP
    ::munmap(data_, size_);
#else
    std::free(data_);
#endif
    data_ = nullptr;
  }

  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

}  // namespace repseq::util
