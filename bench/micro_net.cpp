// Micro-benchmarks: simulated network throughput -- host-side cost of
// pushing messages through the switch/hub models and of spinning up a
// pooled-payload message, which bounds how fast the full-system simulations
// run.  Reports ns per delivered message and allocator traffic per delivery
// (the pooled payload path should amortize to ~0 allocations once the block
// pool is warm); recorded numbers live in docs/ARCHITECTURE.md.
#include <string>
#include <utility>

#include "micro_runner.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"
#include "util/pool_ptr.hpp"

namespace {

using namespace repseq;
using namespace repseq::microbench;

constexpr int kUnicasts = 100;
constexpr int kMulticasts = 20;

void unicast_through_switch() {
  sim::Engine eng;
  net::Network nw(eng, net::NetConfig{}, 4);
  eng.spawn("rx", [&] {
    for (int i = 0; i < kUnicasts; ++i) (void)nw.nic(1).inbox().pop();
  });
  eng.spawn("tx", [&] {
    for (int i = 0; i < kUnicasts; ++i) {
      net::Message m;
      m.src = 0;
      m.dst = 1;
      m.payload_bytes = 1024;
      nw.unicast(std::move(m));
    }
  });
  eng.run();
  do_not_optimize(nw.messages_sent());
}

void multicast_through_hub(std::size_t nodes) {
  sim::Engine eng;
  net::Network nw(eng, net::NetConfig{}, nodes);
  for (net::NodeId n = 1; n < nodes; ++n) {
    eng.spawn("rx", [&nw, n] {
      for (int i = 0; i < kMulticasts; ++i) (void)nw.nic(n).inbox().pop();
    });
  }
  eng.spawn("tx", [&] {
    for (int i = 0; i < kMulticasts; ++i) {
      net::Message m;
      m.src = 0;
      m.payload_bytes = 1024;
      // A real payload handle, so the bench exercises the per-receiver
      // refcount traffic the pool exists to make cheap.
      m.payload = util::make_pooled<int>(i);
      nw.multicast(std::move(m));
    }
  });
  eng.run();
  do_not_optimize(nw.deliveries());
}

}  // namespace

int main() {
  print_header();

  // ns/op here is per *delivered message*, not per engine run: each run
  // performs a fixed message count, so divide out the batch.
  bench("unicast_switch/per_run_100msg", [] { unicast_through_switch(); });

  for (std::size_t nodes : {4, 16, 32, 64}) {
    const std::string name = "multicast_hub/nodes_" + std::to_string(nodes) + "/per_run_" +
                             std::to_string(kMulticasts) + "msg";
    bench(name.c_str(), [nodes] { multicast_through_hub(nodes); });
  }

  {
    // Pooled payload handle churn in isolation: make, copy (plain counter
    // bump -- this is what every multicast receiver pays), drop.
    bench("pooled_payload_cycle", [] {
      util::PoolPtr<const void> p = util::make_pooled<int>(7);
      util::PoolPtr<const void> q = p;
      do_not_optimize(q);
    });
  }
  return 0;
}
