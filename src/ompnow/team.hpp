// The OpenMP/NOW programming layer: what the SUIF-based translator of the
// paper emits, expressed as a library API.
//
//   * parallel / parallel_for -- fork-join regions over the DSM cluster,
//     with static block or cyclic work sharing and an `if` clause for
//     conditional parallelization (paper Section 2.1);
//   * sequential -- a sequential section, executed per the run mode:
//       - MasterOnly: the master runs it while slaves wait (base system);
//       - Replicated: every node runs it under the RSE protocol (the
//         paper's optimization);
//       - BroadcastAfter: the master runs it, then pushes all section
//         modifications to everyone (the Section 4.2 / 6.1.2 alternative);
//       - Adaptive: the rse::policy engine picks one of the three above per
//         section site, from online telemetry.
//
// The Team also measures the per-section time breakdown reported in the
// paper's Tables 1 and 3.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "rse/controller.hpp"
#include "rse/policy/policy_engine.hpp"
#include "tmk/runtime.hpp"

namespace repseq::ompnow {

enum class SeqMode {
  MasterOnly,
  Replicated,
  BroadcastAfter,
  Adaptive,
};

enum class Schedule {
  StaticBlock,
  StaticCyclic,
};

/// Per-thread view inside a region, handed to region bodies.
struct Ctx {
  tmk::NodeRuntime& rt;
  int tid;
  int nthreads;

  [[nodiscard]] bool is_master() const { return tid == 0; }
  /// Guards non-replicable side effects (allocation, I/O) inside
  /// replicated sequential sections (paper Section 5.2).
  void master_only(const std::function<void()>& fn) const {
    if (is_master()) fn();
  }
  void barrier(std::uint32_t id) const { rt.barrier(id); }
  void lock(std::uint32_t id) const { rt.lock_acquire(id); }
  void unlock(std::uint32_t id) const { rt.lock_release(id); }
};

/// Static loop partitioning helpers (the translator supports block and
/// cyclic distribution, paper Section 2.1).
struct Range {
  long lo;
  long hi;
};
[[nodiscard]] Range block_range(long lo, long hi, int tid, int nthreads);

class Team {
 public:
  /// `policy` is consulted only in SeqMode::Adaptive (required then).
  Team(tmk::Cluster& cluster, SeqMode seq_mode, rse::RseController* rse,
       rse::policy::PolicyEngine* policy = nullptr);

  /// A `parallel` region: body runs on every thread.
  void parallel(std::function<void(const Ctx&)> body);

  /// A combined `parallel for`: body(ctx, i) runs once per index.
  /// With `if_parallel == false` the master executes the whole loop inline
  /// (the OpenMP `if` clause, used by Ilink's conditional parallelization).
  void parallel_for(long lo, long hi, Schedule sched,
                    std::function<void(const Ctx&, long)> body, bool if_parallel = true);

  /// A sequential section, dispatched per the run mode (site id 0).
  void sequential(std::function<void(const Ctx&)> body);

  /// A sequential section stamped with its static site id -- what the
  /// paper's translator would emit per source-level section.  The adaptive
  /// policy engine keys its telemetry and per-section decisions by this id;
  /// the other modes ignore it.
  void sequential(std::uint32_t site, std::function<void(const Ctx&)> body);

  [[nodiscard]] sim::SimDuration sequential_time() const { return seq_time_; }
  [[nodiscard]] sim::SimDuration parallel_time() const { return par_time_; }
  [[nodiscard]] std::uint64_t parallel_regions() const { return parallel_regions_; }
  [[nodiscard]] std::uint64_t sequential_sections() const { return seq_sections_; }
  [[nodiscard]] SeqMode seq_mode() const { return seq_mode_; }

 private:
  void run_region(std::uint64_t work_id, tmk::Phase phase);

  // The three sequential-section execution brackets; Adaptive dispatches to
  // one of them per the policy engine's decision.
  void seq_master_only(const std::function<void(const Ctx&)>& body);
  void seq_broadcast_after(const std::function<void(const Ctx&)>& body);
  void seq_replicated(std::uint32_t site, std::function<void(const Ctx&)> body);

  tmk::Cluster& cluster_;
  SeqMode seq_mode_;
  rse::RseController* rse_;
  rse::policy::PolicyEngine* policy_;
  sim::SimDuration seq_time_{};
  sim::SimDuration par_time_{};
  std::uint64_t parallel_regions_ = 0;
  std::uint64_t seq_sections_ = 0;
};

}  // namespace repseq::ompnow
