// Per-node network interface: a transmit serializer (one frame at a time at
// link rate) and a finite receive ring.  Receive overflow drops messages and
// counts them -- TreadMarks' stated reason for conservative multicast flow
// control (paper Section 5.4).
#pragma once

#include <cstdint>
#include <functional>

#include "net/message.hpp"
#include "net/net_config.hpp"
#include "sim/channel.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"

namespace repseq::net {

class Nic {
 public:
  Nic(sim::Engine& eng, const NetConfig& cfg, NodeId node)
      : eng_(eng), cfg_(cfg), node_(node), inbox_(eng) {}

  /// Earliest time the uplink can begin transmitting a new frame, given
  /// frames already queued; reserves the link for `wire_bytes`.
  /// Returns the time the last byte leaves the NIC.
  sim::SimTime reserve_uplink(std::size_t wire_bytes) {
    return reserve_uplink(wire_bytes, eng_.now());
  }

  /// Same, but the transmission may not start before `ready` (forwarding
  /// hops of software multicast reserve uplinks at future instants).
  sim::SimTime reserve_uplink(std::size_t wire_bytes, sim::SimTime ready);

  /// Delivery at the receive ring.  Honors capacity; returns false (and
  /// counts a drop) when the ring is full and the message is droppable.
  bool deliver(Message msg);

  /// Restricts ring-overflow drops to messages for which the filter
  /// returns true, mirroring Network::set_loss_filter: the DSM layer
  /// exempts synchronization traffic, whose kernel-level transport retries
  /// are not the behaviour under study, so a full ring admits it anyway
  /// (modeled as retried-until-delivered without simulating the retry).
  /// The diff/multicast paths -- the paper's Section 5.4 overflow hazard --
  /// stay droppable.  No filter (the default) drops everything on overflow.
  using DropFilter = std::function<bool(const Message&)>;
  void set_drop_filter(DropFilter f) { droppable_ = std::move(f); }

  /// Blocking receive used by the node's dispatcher fiber.
  [[nodiscard]] sim::Channel<Message>& inbox() { return inbox_; }

  [[nodiscard]] NodeId node() const { return node_; }
  [[nodiscard]] std::uint64_t drops() const { return drops_; }
  [[nodiscard]] std::size_t backlog() const { return inbox_.size(); }

 private:
  sim::Engine& eng_;
  const NetConfig& cfg_;
  NodeId node_;
  sim::Channel<Message> inbox_;
  sim::SimTime uplink_free_{};
  std::uint64_t drops_ = 0;
  DropFilter droppable_{};
};

}  // namespace repseq::net
