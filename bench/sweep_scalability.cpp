// Figure-style experiment F2: base vs optimized speedup as the cluster
// grows.  The paper reports only the 32-node endpoints (Tables 1 and 3);
// this sweep shows where contention starts to dominate the base system and
// where the replication overhead amortizes.
#include "bench_common.hpp"

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  using apps::harness::Mode;

  apps::bh::BhConfig bh = bh_config();
  bh.bodies = static_cast<int>(env_long("SWEEP_BH_BODIES", 2048));
  apps::ilink::IlinkConfig il = ilink_config();
  il.iterations = static_cast<int>(env_long("SWEEP_ILINK_ITERS", 2));
  il.families = static_cast<int>(env_long("SWEEP_ILINK_FAMILIES", 2));

  print_header("Sweep: speedup vs cluster size (base vs replicated)",
               "PPoPP'01 Tables 1/3 give the 32-node endpoints",
               "speedup = 1-node sequential time / total time");

  const double bh_base = apps::harness::run_barnes_hut(options_for(Mode::Sequential, 1), bh).total_s;
  const double il_base = apps::harness::run_ilink(options_for(Mode::Sequential, 1), il).total_s;

  util::Table t({"nodes", "BH orig", "BH opt", "Ilink orig", "Ilink opt",
                 "BH opt hub max (ms)"});
  double hub_max_32 = 0;
  std::size_t shards = 1;
  for (std::size_t nodes : {2, 4, 8, 16, 32}) {
    const auto bo = apps::harness::run_barnes_hut(options_for(Mode::Original, nodes), bh);
    const auto br = apps::harness::run_barnes_hut(options_for(Mode::Optimized, nodes), bh);
    const auto io = apps::harness::run_ilink(options_for(Mode::Original, nodes), il);
    const auto ir = apps::harness::run_ilink(options_for(Mode::Optimized, nodes), il);
    if (nodes == 32) hub_max_32 = br.hub_busy_max_s * 1e3;
    shards = br.hub_shards;
    t.add_row({std::to_string(nodes), fmt1(bh_base / bo.total_s), fmt1(bh_base / br.total_s),
               fmt1(il_base / io.total_s), fmt1(il_base / ir.total_s),
               fmt2(br.hub_busy_max_s * 1e3)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nExpected shape: the optimized curves pull ahead as node count grows,\n"
              "with the larger relative win on Ilink (paper: +51%% BH, +189%% Ilink at 32).\n");
  std::printf("Multicast medium: %zu shard(s); busiest shard at 32 nodes transmitted for"
              " %.2f ms.\n",
              shards, hub_max_32);
  return 0;
}
