#include "net/direct_all_transport.hpp"

namespace repseq::net {

void DirectAllTransport::multicast(const Message& msg, std::size_t wire_bytes,
                                   const DeliverFn& deliver, const AccountFn& account) {
  // Frames leave in ascending destination order; each reserves the source
  // uplink anew, so the last receiver waits ~(N-1) serializations.  Every
  // frame is transmitted even if lost at its receiver.
  for (NodeId dst = 0; dst < nics_.size(); ++dst) {
    if (dst == msg.src) continue;
    account(1, wire_bytes);
    deliver(dst, forward_hop(msg.src, dst, wire_bytes, eng_.now()));
  }
}

}  // namespace repseq::net
