// Regenerates paper Table 4: Ilink execution statistics on 32 nodes.
//
// Shape to check (paper values in the right columns):
//   * parallel diff messages fall ~87%, diff data ~97%;
//   * parallel response time falls ~4.7x;
//   * sequential message count *drops slightly* (one multicast replaces
//     several unicasts), unlike Barnes-Hut;
//   * sequential response time roughly doubles.
#include "bench_common.hpp"

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  using apps::harness::Mode;
  using util::fmt_count;

  const auto cfg = ilink_config();
  print_header("Table 4: Ilink execution statistics",
               "PPoPP'01 Table 4 (CLP input, 180 iterations, 32 nodes)",
               (std::string("this run: ") + std::to_string(cfg.families) + " families, " +
                std::to_string(cfg.genotypes) + " genotypes, " +
                std::to_string(cfg.iterations) + " iterations, " +
                std::to_string(bench_nodes()) + " nodes (simulated)")
                   .c_str());

  const auto orig = apps::harness::run_ilink(options_for(Mode::Original), cfg);
  const auto opt = apps::harness::run_ilink(options_for(Mode::Optimized), cfg);

  util::Table t({"", "Original", "Optimized", "paper Orig", "paper Opt"});
  t.add_row({"Total messages", fmt_count(orig.total_msgs), fmt_count(opt.total_msgs),
             "1,002,787", "230,392"});
  t.add_row({"      data (KB)", fmt_count(orig.total_kb), fmt_count(opt.total_kb), "565,711",
             "49,535"});
  t.add_rule();
  t.add_row({"Seq  messages", fmt_count(orig.seq_msgs), fmt_count(opt.seq_msgs), "104,530",
             "94,589"});
  t.add_row({"     data (KB)", fmt_count(orig.seq_kb), fmt_count(opt.seq_kb), "2,803", "2,885"});
  t.add_row({"     diff requests", fmt_count(orig.seq_requests), fmt_count(opt.seq_requests),
             "2,836", "2,837"});
  t.add_row({"     avg response (ms)", fmt2(orig.seq_response_ms), fmt2(opt.seq_response_ms),
             "0.94", "1.71"});
  t.add_row({"     null acks", fmt_count(orig.seq_null_acks), fmt_count(opt.seq_null_acks), "0",
             "33,016"});
  t.add_rule();
  t.add_row({"Par  messages", fmt_count(orig.par_msgs), fmt_count(opt.par_msgs), "873,052",
             "111,600"});
  t.add_row({"     data (KB)", fmt_count(orig.par_kb), fmt_count(opt.par_kb), "518,266",
             "13,895"});
  t.add_row({"     avg diff requests", fmt1(orig.par_requests_avg), fmt1(opt.par_requests_avg),
             "12,318", "540"});
  t.add_row({"     avg response (ms)", fmt2(orig.par_response_ms), fmt2(opt.par_response_ms),
             "3.01", "0.64"});
  std::printf("%s", t.render().c_str());

  std::printf("\nShape checks:\n");
  const double kb_cut = orig.par_kb > 0 && opt.par_kb > 0
                            ? 100.0 * (1.0 - static_cast<double>(opt.par_kb) /
                                                 static_cast<double>(orig.par_kb))
                            : 0.0;
  std::printf("  parallel diff data cut:   %s (%.0f%%; paper 97%%)\n",
              opt.par_kb < orig.par_kb ? "yes" : "NO", kb_cut);
  std::printf("  parallel response drops:  %s (%.2fms -> %.2fms; paper 3.01 -> 0.64)\n",
              opt.par_response_ms < orig.par_response_ms ? "yes" : "NO", orig.par_response_ms,
              opt.par_response_ms);
  std::printf("  sequential response rises: %s (%.2fms -> %.2fms; paper 0.94 -> 1.71)\n",
              opt.seq_response_ms > orig.seq_response_ms ? "yes" : "NO", orig.seq_response_ms,
              opt.seq_response_ms);
  std::printf("  slowest thread's parallel diff wait: %.2fs -> %.2fs (paper 39.8 -> 0.4)\n",
              orig.par_fault_wait_max_s, opt.par_fault_wait_max_s);
  return 0;
}
