// Software multicast over the switch: the sender is the root of a k-ary
// forwarding tree; every interior node re-transmits the frame to each of its
// children as an ordinary switched unicast (uplink serialization + per-hop
// latency).  This is the hand-inserted tree broadcast of paper Section 6.1.2
// expressed as a transport, so any protocol can run over it.
//
// Tree layout: positions are assigned breadth-first (heap order), position 0
// is the sender, and position p maps to node (src + p) mod N -- every sender
// gets the same tree shape over a rotated node ordering, so no fixed node is
// always a leaf.
#pragma once

#include <algorithm>

#include "net/transport.hpp"

namespace repseq::net {

class TreeMulticastTransport final : public SwitchedTransport {
 public:
  TreeMulticastTransport(sim::Engine& eng, const NetConfig& cfg,
                         std::vector<std::unique_ptr<Nic>>& nics)
      : SwitchedTransport(eng, cfg, nics) {}

  std::size_t multicast(const Message& msg, std::size_t wire_bytes,
                        const DeliverFn& deliver) override;

  /// The root transmits only to its own children.
  [[nodiscard]] std::size_t sender_frames(std::size_t receivers) const override {
    return std::min(receivers, cfg_.mcast_tree_fanout > 0 ? cfg_.mcast_tree_fanout : 1);
  }
};

}  // namespace repseq::net
