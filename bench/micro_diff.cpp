// Micro-benchmarks: twin/diff machinery -- creation, application and wire
// sizing across modification densities, plus the twin page copy.  These
// operations sit on the critical path of every fault, so their per-op cost
// and (post-pooling) allocation counts are tracked here; see
// docs/ARCHITECTURE.md "Simulator performance" for recorded before/after
// numbers.
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "micro_runner.hpp"
#include "sim/rng.hpp"
#include "tmk/diff.hpp"
#include "util/pool_ptr.hpp"

namespace {

using repseq::sim::Rng;
using repseq::tmk::Diff;
using namespace repseq::microbench;

constexpr std::size_t kPage = 4096;

std::pair<std::vector<std::byte>, std::vector<std::byte>> make_pair_with_density(int pct,
                                                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> twin(kPage);
  for (auto& b : twin) b = static_cast<std::byte>(rng.next_below(256));
  auto cur = twin;
  for (std::size_t w = 0; w < kPage / 4; ++w) {
    if (rng.next_below(100) < static_cast<std::uint64_t>(pct)) {
      cur[w * 4] = static_cast<std::byte>(rng.next_below(256));
    }
  }
  return {std::move(twin), std::move(cur)};
}

void bench_create(int pct) {
  const auto [twin, cur] = make_pair_with_density(pct, 42);
  const std::string name = "diff_create/density_" + std::to_string(pct);
  bench(name.c_str(), [&twin = twin, &cur = cur] {
    Diff d = Diff::create(twin, cur);
    do_not_optimize(d);
  });
}

void bench_apply(int pct) {
  const auto [twin, cur] = make_pair_with_density(pct, 43);
  const Diff d = Diff::create(twin, cur);
  std::vector<std::byte> target = twin;
  const std::string name = "diff_apply/density_" + std::to_string(pct);
  bench(name.c_str(), [&] {
    d.apply(target);
    do_not_optimize(target.data());
  });
}

}  // namespace

int main() {
  print_header();
  for (int pct : {0, 1, 10, 50, 100}) bench_create(pct);
  for (int pct : {1, 10, 50, 100}) bench_apply(pct);

  {
    const auto [twin, cur] = make_pair_with_density(10, 44);
    const Diff d = Diff::create(twin, cur);
    bench("diff_wire_bytes", [&d] { do_not_optimize(d.wire_bytes()); });
  }

  {
    std::vector<std::byte> page(kPage, std::byte{7});
    std::vector<std::byte> twin(kPage);
    bench("twin_copy_4k", [&] {
      std::memcpy(twin.data(), page.data(), kPage);
      do_not_optimize(twin.data());
    });
  }

  {
    // The pooled diff handle cycle: allocate a Diff in a pooled block, copy
    // the handle (non-atomic count) and drop everything (block recycled).
    const auto [twin, cur] = make_pair_with_density(10, 45);
    bench("diff_pooled_handle_cycle", [&twin = twin, &cur = cur] {
      repseq::tmk::DiffPtr p = repseq::util::make_pooled<Diff>(Diff::create(twin, cur));
      repseq::tmk::DiffPtr q = p;
      do_not_optimize(q);
    });
  }
  return 0;
}
