// Shared-medium half-duplex hub model carrying all multicast traffic
// (the paper routes multicast through a 100 Mbps hub because their switch
// forwarded multicast slowly).  Exactly one frame occupies the medium at a
// time; every member of the group receives it.
#pragma once

#include "net/message.hpp"
#include "net/net_config.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"

namespace repseq::net {

class Hub {
 public:
  Hub(sim::Engine& eng, const NetConfig& cfg) : eng_(eng), cfg_(cfg) {}

  /// Reserves the shared medium for one frame starting no earlier than
  /// `ready`; returns the time the frame has fully propagated to all
  /// receivers.
  sim::SimTime transmit(std::size_t wire_bytes, sim::SimTime ready);

  [[nodiscard]] sim::SimDuration busy_total() const { return busy_total_; }

 private:
  sim::Engine& eng_;
  const NetConfig& cfg_;
  sim::SimTime medium_free_{};
  sim::SimDuration busy_total_{};
};

}  // namespace repseq::net
