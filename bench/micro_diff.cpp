// Micro-benchmarks (google-benchmark): twin/diff machinery -- creation,
// run-length encoding size and application cost across modification
// densities.  These operations sit on the critical path of every fault.
#include <benchmark/benchmark.h>

#include <cstring>
#include <vector>

#include "sim/rng.hpp"
#include "tmk/diff.hpp"

namespace {

using repseq::sim::Rng;
using repseq::tmk::Diff;

constexpr std::size_t kPage = 4096;

std::pair<std::vector<std::byte>, std::vector<std::byte>> make_pair_with_density(int pct,
                                                                                 std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::byte> twin(kPage);
  for (auto& b : twin) b = static_cast<std::byte>(rng.next_below(256));
  auto cur = twin;
  for (std::size_t w = 0; w < kPage / 4; ++w) {
    if (rng.next_below(100) < static_cast<std::uint64_t>(pct)) {
      cur[w * 4] = static_cast<std::byte>(rng.next_below(256));
    }
  }
  return {std::move(twin), std::move(cur)};
}

void BM_DiffCreate(benchmark::State& state) {
  const auto [twin, cur] = make_pair_with_density(static_cast<int>(state.range(0)), 42);
  for (auto _ : state) {
    Diff d = Diff::create(twin, cur);
    benchmark::DoNotOptimize(d);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPage);
}
BENCHMARK(BM_DiffCreate)->Arg(0)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_DiffApply(benchmark::State& state) {
  const auto [twin, cur] = make_pair_with_density(static_cast<int>(state.range(0)), 43);
  const Diff d = Diff::create(twin, cur);
  std::vector<std::byte> target = twin;
  for (auto _ : state) {
    d.apply(target);
    benchmark::DoNotOptimize(target.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(4 * d.word_count() + 1));
}
BENCHMARK(BM_DiffApply)->Arg(1)->Arg(10)->Arg(50)->Arg(100);

void BM_DiffWireBytes(benchmark::State& state) {
  const auto [twin, cur] = make_pair_with_density(static_cast<int>(state.range(0)), 44);
  const Diff d = Diff::create(twin, cur);
  for (auto _ : state) {
    benchmark::DoNotOptimize(d.wire_bytes());
  }
}
BENCHMARK(BM_DiffWireBytes)->Arg(10);

void BM_TwinCopy(benchmark::State& state) {
  std::vector<std::byte> page(kPage, std::byte{7});
  std::vector<std::byte> twin(kPage);
  for (auto _ : state) {
    std::memcpy(twin.data(), page.data(), kPage);
    benchmark::DoNotOptimize(twin.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) * kPage);
}
BENCHMARK(BM_TwinCopy);

}  // namespace

BENCHMARK_MAIN();
