// Barnes-Hut N-body simulation (SPLASH-2 style), the paper's first
// evaluation application (Section 6.1).
//
// Structure per timestep:
//   * sequential section: rebuild the shared oct-tree from all bodies and
//     compute cell centers of mass and per-subtree work totals.  This is
//     the contended section: it reads every body (written by all threads in
//     the previous step) and rewrites the whole tree.
//   * parallel section: every thread walks the tree in Morton order to
//     locate its work-weighted segment of bodies, evaluates forces with the
//     Barnes-Hut opening criterion, and advances only its own bodies,
//     recording per-body work for the next step's partition.
//
// All state lives on the DSM shared heap; the oct-tree is pointer-based
// (child indices into a shared cell pool), which is what defeats the
// compile-time-analysis alternatives discussed in Section 4.2.
#pragma once

#include <cstdint>
#include <vector>

#include "ompnow/team.hpp"
#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

namespace repseq::apps::bh {

/// Static section-site id of the tree-build sequential section (stamped on
/// every Team::sequential call so the adaptive policy engine can key its
/// per-section telemetry; what the paper's translator would emit per
/// source-level section).
inline constexpr std::uint32_t kSectionTreeBuild = 1;

struct Vec3 {
  double x = 0.0, y = 0.0, z = 0.0;

  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(double k) const { return {x * k, y * k, z * k}; }
  Vec3& operator+=(const Vec3& o) {
    x += o.x;
    y += o.y;
    z += o.z;
    return *this;
  }
  [[nodiscard]] double norm2() const { return x * x + y * y + z * z; }
};

struct Body {
  Vec3 pos;
  Vec3 vel;
  Vec3 acc;
  double mass = 0.0;
  /// Interactions performed for this body in the previous step; the
  /// Morton-order partition weights segments by it (paper Section 6.1.1).
  double work = 1.0;
};

/// Child slot encoding for the shared oct-tree.
inline constexpr std::uint32_t kNullChild = 0xffffffffu;
inline constexpr std::uint32_t kBodyTag = 0x80000000u;
[[nodiscard]] constexpr bool is_body_child(std::uint32_t c) {
  return c != kNullChild && (c & kBodyTag) != 0;
}
[[nodiscard]] constexpr std::uint32_t body_index(std::uint32_t c) { return c & ~kBodyTag; }

struct Cell {
  std::uint32_t child[8] = {kNullChild, kNullChild, kNullChild, kNullChild,
                            kNullChild, kNullChild, kNullChild, kNullChild};
  Vec3 center;      // geometric center of this cube
  double half = 0;  // half side length
  Vec3 com;         // center of mass
  double mass = 0;
  double work = 0;  // total work of bodies under this cell
  std::uint32_t nbodies = 0;
};

struct BhConfig {
  int bodies = 4096;
  int steps = 2;
  double theta = 1.0;   // opening criterion (SPLASH-2 default)
  double dt = 0.025;
  double eps = 0.05;    // softening
  std::uint64_t seed = 0x5eedb0d1;

  // ---- CPU cost model (800 MHz Athlon class) ----
  // The interaction cost is calibrated so that the scaled problem keeps the
  // paper's compute-to-communication regime (base parallel speedup ~7 on 32
  // nodes while ~2/3 of the slowest thread's time goes to diff waits).
  sim::SimDuration cost_interaction = sim::microseconds(9);   // force kernel
  sim::SimDuration cost_tree_insert = sim::nanoseconds(600);  // per level
  sim::SimDuration cost_com_cell = sim::nanoseconds(400);
  sim::SimDuration cost_partition_step = sim::nanoseconds(150);
};

/// Everything the benchmark harness needs from one run.
struct BhResult {
  double checksum = 0.0;       // sum of |pos| over all bodies (exact compare)
  std::uint64_t interactions = 0;
  sim::SimDuration total_time{};
  sim::SimDuration seq_time{};   // tree building sections
  sim::SimDuration par_time{};   // force evaluation sections
};

/// The shared-memory state of the application (addresses only; the data
/// lives on the cluster's shared heap).  Bodies are stored as separate
/// arrays, as in SPLASH-2: the tree build reads only positions, masses and
/// work weights, so under replicated execution only those pages are
/// multicast -- velocities and accelerations stay distributed and are
/// fetched point-to-point by the next owner of each body (the residual
/// parallel-section traffic visible in the paper's Table 2).
struct BhWorld {
  tmk::ShArray<Vec3> pos;
  tmk::ShArray<Vec3> vel;
  tmk::ShArray<Vec3> acc;
  tmk::ShArray<double> mass;
  tmk::ShArray<double> work;
  tmk::ShArray<Cell> cells;
  tmk::ShVar<std::uint32_t> cell_count;
  tmk::ShVar<std::uint32_t> root;
  std::size_t max_cells = 0;
};

/// Allocates the shared-heap state (host side, before Cluster::run).
BhWorld setup_world(tmk::Cluster& cluster, const BhConfig& cfg);

/// Writes the Plummer-model initial bodies into shared memory.  Must run on
/// the master's application fiber (inside Cluster::run), like program
/// initialization in the real system.
void init_bodies(const BhWorld& w, const BhConfig& cfg);

/// Runs `cfg.steps` timesteps under the given team and returns timings
/// measured over the tree-build (sequential) and force (parallel) phases.
/// Must run on the master's application fiber.
BhResult run_steps(tmk::Cluster& cluster, ompnow::Team& team, const BhWorld& w,
                   const BhConfig& cfg);

/// Reference O(N^2) accelerations for validation (host-side, no DSM).
std::vector<Vec3> direct_forces(const std::vector<Body>& bodies, double eps);

/// Host-side Plummer-model generator (same sequence the setup uses).
std::vector<Body> plummer_bodies(int n, std::uint64_t seed);

}  // namespace repseq::apps::bh
