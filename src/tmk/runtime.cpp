#include "tmk/runtime.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <set>

#include "chk/checker.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace repseq::tmk {

namespace {
sim::SimDuration per_byte(double ns_per_byte, std::size_t bytes) {
  return sim::SimDuration{static_cast<std::int64_t>(ns_per_byte * static_cast<double>(bytes))};
}

// Debug tracing for one page, enabled via REPSEQ_TRACE_PAGE=<id>.
int traced_page() {
  static const int p = [] {
    const char* v = std::getenv("REPSEQ_TRACE_PAGE");
    return v != nullptr ? std::atoi(v) : -1;
  }();
  return p;
}

#define REPSEQ_PAGE_TRACE(page, fmt, ...)                                       \
  do {                                                                          \
    if (static_cast<int>(page) == traced_page()) [[unlikely]] {                 \
      std::fprintf(stderr, "[page %u] node %u: " fmt "\n", (page), id_, ##__VA_ARGS__); \
    }                                                                           \
  } while (false)
}  // namespace

// ---------------------------------------------------------------------------
// NodeRuntime: construction and trivial accessors
// ---------------------------------------------------------------------------

NodeRuntime::NodeRuntime(Cluster& cluster, NodeId id)
    : cluster_(cluster),
      id_(id),
      cpu_(cluster.engine(), cluster.config().compute_quantum),
      mem_(cluster.config().heap_bytes),
      pages_(cluster.config().heap_bytes / cluster.config().page_bytes),
      vc_(cluster.node_count()),
      log_(cluster.node_count()),
      fork_ch_(cluster.engine()),
      depart_ch_(cluster.engine()),
      join_ch_(cluster.engine()),
      grant_ch_(cluster.engine()),
      last_master_vc_(cluster.node_count()) {
  for (PageState& ps : pages_) ps.valid_vc = VectorClock(cluster.node_count());
  if (id_ == 0) {
    slave_known_vc_.assign(cluster.node_count(), VectorClock(cluster.node_count()));
  }
  chk_ = cluster.checker();
}

const TmkConfig& NodeRuntime::config() const { return cluster_.config(); }
std::size_t NodeRuntime::node_count() const { return cluster_.node_count(); }
RseHooks* NodeRuntime::rse_hooks() const { return cluster_.rse_hooks(); }

std::span<std::byte> NodeRuntime::page_span(PageId p) {
  const std::size_t pb = config().page_bytes;
  return {mem_.data() + static_cast<std::size_t>(p) * pb, pb};
}

std::span<const std::byte> NodeRuntime::page_span(PageId p) const {
  const std::size_t pb = config().page_bytes;
  return {mem_.data() + static_cast<std::size_t>(p) * pb, pb};
}

std::unique_ptr<std::byte[]> NodeRuntime::acquire_twin() {
  if (!twin_pool_.empty()) {
    auto t = std::move(twin_pool_.back());
    twin_pool_.pop_back();
    return t;
  }
  // Uninitialized: the caller memcpys the full page over it immediately.
  return std::unique_ptr<std::byte[]>(new std::byte[config().page_bytes]);
}

void NodeRuntime::release_twin(std::unique_ptr<std::byte[]> twin) {
  if (twin != nullptr) twin_pool_.push_back(std::move(twin));
}

// ---------------------------------------------------------------------------
// Access barriers
// ---------------------------------------------------------------------------

void NodeRuntime::read_barrier(GAddr addr, std::size_t bytes) {
  REPSEQ_CHECK(!addr.is_null(), "read through null shared address");
  if (chk_ != nullptr) [[unlikely]] chk_->on_access(*this, addr, bytes, /*write=*/false);
  const std::size_t pb = config().page_bytes;
  const PageId first = page_of(addr, pb);
  const PageId last = page_of(addr + (bytes == 0 ? 0 : bytes - 1), pb);
  for (PageId p = first; p <= last; ++p) {
    if (pages_[p].prot == PageProt::Invalid) {
      if (in_replicated_section_ && rse_hooks() != nullptr) {
        rse_hooks()->on_fault(*this, p);
      } else {
        fault_in_page(p);
      }
    }
  }
}

void NodeRuntime::write_barrier(GAddr addr, std::size_t bytes) {
  REPSEQ_CHECK(!addr.is_null(), "write through null shared address");
  if (chk_ != nullptr) [[unlikely]] chk_->on_access(*this, addr, bytes, /*write=*/true);
  const std::size_t pb = config().page_bytes;
  const PageId first = page_of(addr, pb);
  const PageId last = page_of(addr + (bytes == 0 ? 0 : bytes - 1), pb);
  for (PageId p = first; p <= last; ++p) {
    PageState& ps = pages_[p];

    if (in_replicated_section_) {
      // Writes during replicated execution are performed identically by
      // every node; they are never twinned or diffed.  The only special
      // case is the Section 5.3 hazard: a page dirty from *before* the
      // section must flush its pre-section modifications into a diff at
      // the first replicated write.
      if (ps.prot == PageProt::Invalid) {
        if (rse_hooks() != nullptr) {
          rse_hooks()->on_fault(*this, p);
        } else {
          fault_in_page(p);
        }
      }
      if (ps.rse_write_protected) {
        charge(config().fault_overhead);  // the write-protection trap
        flush_diff(p, /*on_server=*/false);
        ps.rse_write_protected = false;
      }
      continue;
    }

    if (ps.prot == PageProt::Writable) {  // fast path, no yield
      REPSEQ_CHECK(ps.has_twin(), "writable page without twin");
      if (!ps.dirty_in_current) {
        ps.dirty_in_current = true;
        current_dirty_.push_back(p);
      }
      continue;
    }

    // Slow path.  Charging compute may yield, and a concurrently-arriving
    // write notice (dispatcher fiber) may invalidate the page meanwhile, so
    // all charges happen before a commit step that never yields.
    charge(config().fault_overhead);
    charge(per_byte(config().twin_ns_per_byte, pb));
    for (;;) {
      if (ps.prot == PageProt::Invalid) {
        fault_in_page(p);
        continue;  // re-examine: state can change across the fault
      }
      if (ps.prot == PageProt::Writable) {
        if (!ps.dirty_in_current) {
          ps.dirty_in_current = true;
          current_dirty_.push_back(p);
        }
        break;
      }
      // ReadOnly: create the twin and commit, yield-free.
      REPSEQ_PAGE_TRACE(p, "write fault: twin created (vc_self=%u)", vc_.at(id_));
      ps.twin = acquire_twin();
      std::memcpy(ps.twin.get(), page_span(p).data(), pb);
      ps.prot = PageProt::Writable;
      if (!ps.dirty_in_current) {
        ps.dirty_in_current = true;
        current_dirty_.push_back(p);
      }
      break;
    }
  }
}

// ---------------------------------------------------------------------------
// Intervals, notices, diffs
// ---------------------------------------------------------------------------

void NodeRuntime::end_interval() {
  cpu_.flush();
  // The shadow happens-before clock advances at EVERY interval end (the
  // protocol clock below only bumps for dirty intervals): read-only epochs
  // must participate in the race detector's order.
  if (chk_ != nullptr) [[unlikely]] chk_->on_release(id_);
  if (current_dirty_.empty()) return;
  vc_.bump(id_);
  const std::uint32_t idx = vc_.at(id_);
  if (obs::enabled(obs::Cat::Tmk)) [[unlikely]] {
    obs::tracer().instant(obs::Cat::Tmk, cluster_.engine().now(),
                          static_cast<std::int32_t>(id_) + 1, "tmk", "interval-commit",
                          {{"idx", static_cast<double>(idx)},
                           {"pages", static_cast<double>(current_dirty_.size())}});
  }
  auto rec = util::make_pooled<IntervalRecord>();
  rec->owner = id_;
  rec->index = idx;
  rec->vc = vc_;
  rec->pages = current_dirty_;
  if (chk_ != nullptr) [[unlikely]] chk_->on_interval_commit(*this, rec);
  // Oracle-validation mutation: publish a record missing its last write
  // notice.  The checker captured the TRUE write set above; local page
  // state below iterates current_dirty_, so only the published lie differs.
  if (chk::g_test_mutation == chk::Mutation::SuppressWriteNotice && rec->pages.size() > 1)
      [[unlikely]] {
    rec->pages.pop_back();
  }
  log_.insert(rec);
  for (PageId p : rec->pages) page_notice_index_[p].push_back(rec);
  for (PageId p : current_dirty_) {
    PageState& ps = pages_[p];
    ps.dirty_in_current = false;
    ps.valid_vc.set(id_, idx);
    if (ps.has_twin()) {
      ps.open_intervals.push_back(idx);
      REPSEQ_PAGE_TRACE(p, "end_interval idx=%u (twin kept)", idx);
    } else if (own_diffs_.find({p, idx}) == own_diffs_.end()) {
      // The twin was flushed early (mid-interval diff request) and nothing
      // was written afterwards.  The interval's modifications already
      // travelled inside the flushed diff under its closed covers; register
      // an empty diff so requests for this interval are answerable.
      own_diffs_[{p, idx}].push_back(util::make_pooled<RegisteredDiff>(RegisteredDiff{
          next_diff_seq_++, {idx}, util::make_pooled<Diff>()}));
      REPSEQ_PAGE_TRACE(p, "end_interval idx=%u (no twin: empty diff registered)", idx);
    }
  }
  current_dirty_.clear();
}

void NodeRuntime::apply_notice(const IntervalRecordPtr& rec, bool on_server) {
  if (rec->index <= log_.known(rec->owner)) return;  // duplicate
  log_.insert(rec);
  for (PageId p : rec->pages) page_notice_index_[p].push_back(rec);
  if (rec->owner == id_) return;  // own records never invalidate locally
  for (PageId p : rec->pages) {
    PageState& ps = pages_[p];
    if (ps.valid_vc.covers(rec->owner, rec->index)) {
      // This copy already incorporates the interval (a previously applied
      // merged diff covered it ahead of the notice's arrival).
      continue;
    }
    if (ps.has_twin()) {
      // Multiple-writer protocol: capture local modifications in a diff
      // before the page is invalidated by a remote notice.
      flush_diff(p, on_server);
    }
    ps.prot = PageProt::Invalid;
    ps.pending.push_back(rec);
    REPSEQ_PAGE_TRACE(p, "invalidated by notice owner=%u idx=%u", rec->owner, rec->index);
  }
}

void NodeRuntime::flush_diff(PageId p, bool on_server) {
  PageState& ps = pages_[p];
  if (!ps.has_twin()) return;
  const std::size_t pb = config().page_bytes;

  const sim::SimDuration cost =
      config().diff_create_fixed + per_byte(config().diff_create_ns_per_byte, pb);
  if (on_server) {
    cpu_.service(cost);
  } else {
    charge(cost);
  }

  DiffPtr diff = util::make_pooled<Diff>(Diff::create({ps.twin.get(), pb}, page_span(p)));

  if (obs::enabled(obs::Cat::Tmk)) [[unlikely]] {
    obs::tracer().instant(obs::Cat::Tmk, cluster_.engine().now(),
                          static_cast<std::int32_t>(id_) + 1, "tmk", "diff-create",
                          {{"page", static_cast<double>(p)},
                           {"wire_bytes", static_cast<double>(diff->wire_bytes())},
                           {"on_server", on_server ? 1.0 : 0.0}});
  }
  REPSEQ_PAGE_TRACE(p, "flush_diff open=%zu dirty=%d vc_self=%u", ps.open_intervals.size(),
                    ps.dirty_in_current ? 1 : 0, vc_.at(id_));
  // Coverage rule.  The diff carries every modification since the twin was
  // taken, which may span several *closed* intervals plus a prefix of the
  // still-open one.  It is registered under the closed intervals only: any
  // node that "has" one of those closed intervals can only have gotten it
  // by applying this very diff (a flushed twin never re-opens), so the
  // open-interval prefix always travels with the closed covers and never
  // needs a separate registration.  Registering under the open interval's
  // future index would let a node that already applied this diff re-fetch
  // it later and clobber its own (or third parties') newer writes.
  // Exception: a twin created *inside* the open interval carries only that
  // interval's writes and is registered under its future index.
  std::vector<std::uint32_t> covers = ps.open_intervals;
  if (ps.dirty_in_current && covers.empty()) {
    covers.push_back(vc_.at(id_) + 1);
  }
  REPSEQ_CHECK(!covers.empty(), "twin with no covered intervals");
  auto rd = util::make_pooled<RegisteredDiff>(
      RegisteredDiff{next_diff_seq_++, covers, std::move(diff)});
  for (std::uint32_t i : covers) {
    own_diffs_[{p, i}].push_back(rd);
  }
  ps.open_intervals.clear();
  release_twin(std::move(ps.twin));
  if (ps.prot == PageProt::Writable) {
    ps.prot = PageProt::ReadOnly;  // next write re-twins
  }
}

std::vector<DiffPacket> NodeRuntime::collect_diffs(PageId page,
                                                   const std::vector<std::uint32_t>& intervals,
                                                   bool on_server) {
  PageState& ps = pages_[page];
  // A requested interval whose modifications are (partly) still under the
  // twin must be flushed first, or the frozen batch would miss its suffix.
  if (ps.has_twin()) {
    const bool twin_covers_request =
        std::any_of(intervals.begin(), intervals.end(), [&](std::uint32_t i) {
          return std::find(ps.open_intervals.begin(), ps.open_intervals.end(), i) !=
                 ps.open_intervals.end();
        });
    if (twin_covers_request) flush_diff(page, on_server);
  }
  // Answer each registered batch once, carrying its FULL covers so the
  // receiver can recognize batches it has already applied.
  std::map<const RegisteredDiff*, RegisteredDiffPtr> unique;
  for (std::uint32_t i : intervals) {
    auto it = own_diffs_.find({page, i});
    REPSEQ_CHECK(it != own_diffs_.end(),
                 "diff requested for unknown interval " + std::to_string(i) + " of page " +
                     std::to_string(page));
    for (const RegisteredDiffPtr& rd : it->second) {
      unique.emplace(rd.get(), rd);
    }
  }
  std::vector<DiffPacket> out;
  out.reserve(unique.size());
  for (const auto& [_, rd] : unique) {
    DiffPacket pkt;
    pkt.owner = id_;
    pkt.page = page;
    pkt.covers = rd->covers;
    pkt.diff = rd->diff;
    pkt.seq = rd->seq;
    out.push_back(std::move(pkt));
  }
  return out;
}

void NodeRuntime::apply_packet(const DiffPacket& pkt) {
  PageState& ps = pages_[pkt.page];
  const std::uint32_t oldest = *std::min_element(pkt.covers.begin(), pkt.covers.end());
  // Batch guard: if this copy's validity already reaches the batch's oldest
  // interval, this exact frozen batch was applied here before.  Re-applying
  // it would overwrite every write that landed since (local writes and other
  // owners' diffs) with the batch's stale image.  The notices it satisfies
  // are still cleared below.
  const bool already_applied = ps.valid_vc.at(pkt.owner) >= oldest;
  if (chk_ != nullptr && !already_applied) [[unlikely]] chk_->on_diff_apply(*this, pkt);
  REPSEQ_PAGE_TRACE(pkt.page, "apply diff owner=%u covers[0]=%u nwords=%zu seq=%llu%s",
                    pkt.owner, pkt.covers.empty() ? 0u : pkt.covers[0],
                    pkt.diff->word_count(), (unsigned long long)pkt.seq,
                    already_applied ? " (skipped: already applied)" : "");
  if (!already_applied) {
    pkt.diff->apply(page_span(pkt.page));
  }
  std::uint32_t newest = 0;
  for (std::uint32_t i : pkt.covers) {
    newest = std::max(newest, i);
    auto it = std::find_if(ps.pending.begin(), ps.pending.end(),
                           [&](const IntervalRecordPtr& r) {
                             return r->owner == pkt.owner && r->index == i;
                           });
    if (it != ps.pending.end()) ps.pending.erase(it);
  }
  if (newest > ps.valid_vc.at(pkt.owner)) ps.valid_vc.set(pkt.owner, newest);
}

void NodeRuntime::apply_packets_causally(std::vector<DiffPacket> pkts, bool on_server) {
  // Causal order: by the Lamport projection of the newest covered interval.
  // Data-race-free programs order same-word writers totally, so the writer
  // whose interval is causally latest must land last.
  auto lamport = [&](const DiffPacket& pkt) {
    // Covers can extend past this node's log (a batch may be frozen through
    // intervals whose notices have not reached us yet); key on the newest
    // cover we know about.
    std::uint32_t newest = 0;
    for (std::uint32_t i : pkt.covers) {
      if (i <= log_.known(pkt.owner)) newest = std::max(newest, i);
    }
    REPSEQ_CHECK(newest > 0, "diff batch with no locally-known cover");
    return log_.get(pkt.owner, newest).vc.lamport_sum();
  };
  std::stable_sort(pkts.begin(), pkts.end(), [&](const DiffPacket& a, const DiffPacket& b) {
    const auto la = lamport(a);
    const auto lb = lamport(b);
    if (la != lb) return la < lb;
    if (a.owner != b.owner) return a.owner < b.owner;
    return a.seq < b.seq;
  });
  // Oracle-validation mutation: undo the causal sort (the PR 4 bug class);
  // the diff-apply-causality oracle must fire on the first stale apply.
  if (chk::g_test_mutation == chk::Mutation::ReorderDiffApply && pkts.size() > 1) [[unlikely]] {
    std::reverse(pkts.begin(), pkts.end());
  }
  std::set<PageId> touched;
  std::size_t bytes = 0;
  for (const DiffPacket& pkt : pkts) {
    apply_packet(pkt);
    touched.insert(pkt.page);
    bytes += pkt.wire_bytes();
  }
  if (obs::enabled(obs::Cat::Tmk) && !pkts.empty()) [[unlikely]] {
    obs::tracer().instant(obs::Cat::Tmk, cluster_.engine().now(),
                          static_cast<std::int32_t>(id_) + 1, "tmk", "diff-apply",
                          {{"packets", static_cast<double>(pkts.size())},
                           {"bytes", static_cast<double>(bytes)},
                           {"on_server", on_server ? 1.0 : 0.0}});
  }
  const sim::SimDuration cost = config().diff_apply_fixed * static_cast<std::int64_t>(pkts.size()) +
                                per_byte(config().diff_apply_ns_per_byte, bytes);
  if (on_server) {
    cpu_.service(cost);
  } else {
    charge(cost);
    cpu_.flush();
  }
  for (PageId p : touched) {
    PageState& ps = pages_[p];
    if (ps.pending.empty() && ps.prot == PageProt::Invalid) {
      ps.prot = PageProt::ReadOnly;
      if (chk_ != nullptr) [[unlikely]] chk_->on_page_revalidate(*this, p);
      notify_page_valid(p);
    }
  }
}

WantedByOwner NodeRuntime::wanted_for_page(PageId p) const {
  std::map<NodeId, std::vector<std::uint32_t>> grouped;
  for (const IntervalRecordPtr& rec : pages_[p].pending) {
    grouped[rec->owner].push_back(rec->index);
  }
  WantedByOwner out;
  out.reserve(grouped.size());
  for (auto& [owner, ivs] : grouped) {
    std::sort(ivs.begin(), ivs.end());
    out.emplace_back(owner, std::move(ivs));
  }
  return out;
}

void NodeRuntime::record_fault_round(sim::SimTime start, bool counted_as_request) {
  PhaseCounters& c = stats_.for_phase(cluster_.phase());
  const sim::SimDuration dt = cluster_.engine().now() - start;
  c.response_ms.add(dt.millis());
  c.fault_wait += dt;
  if (counted_as_request) ++c.diff_requests;
}

void NodeRuntime::fault_in_page(PageId p) {
  PageState& ps = pages_[p];
  REPSEQ_CHECK(ps.prot == PageProt::Invalid, "fault on valid page");
  REPSEQ_CHECK(!ps.pending.empty(), "invalid page without pending notices");

  PhaseCounters& c = stats_.for_phase(cluster_.phase());
  ++c.page_faults;
  charge(config().fault_overhead);
  cpu_.flush();
  const sim::SimTime t0 = cluster_.engine().now();
  if (obs::enabled(obs::Cat::Tmk)) [[unlikely]] {
    obs::tracer().begin(obs::Cat::Tmk, t0, static_cast<std::int32_t>(id_) + 1, "app",
                        "page-fault",
                        {{"page", static_cast<double>(p)},
                         {"pending", static_cast<double>(ps.pending.size())}});
  }

  // Outer loop: in rare interleavings a new write notice arrives while the
  // fetched diffs are being applied; the page is then still invalid and the
  // missing diffs are fetched in another pass (all within this one fault).
  REPSEQ_PAGE_TRACE(p, "read fault begins (pending=%zu)", ps.pending.size());
  while (ps.prot == PageProt::Invalid) {
    const WantedByOwner wanted = wanted_for_page(p);
    const std::uint64_t req_id = next_req_id();
    auto& slot = expect_replies(req_id);

    std::set<NodeId> outstanding;
    auto send_requests = [&](const std::set<NodeId>& to) {
      for (const auto& [owner, ivs] : wanted) {
        if (!to.contains(owner)) continue;
        REPSEQ_CHECK(owner != id_, "pending notice from self");
        send_unicast(MsgKind::DiffRequest, owner, DiffRequestP{req_id, p, ivs},
                     /*on_server=*/false);
      }
    };
    for (const auto& [owner, _] : wanted) outstanding.insert(owner);
    send_requests(outstanding);

    std::vector<DiffPacket> collected;
    int retries = 0;
    while (!outstanding.empty()) {
      auto msg = slot.pop_with_timeout(config().request_timeout);
      if (!msg) {
        ++retries;
        ++c.recoveries;
        if (obs::enabled(obs::Cat::Tmk)) [[unlikely]] {
          obs::tracer().instant(obs::Cat::Tmk, cluster_.engine().now(),
                                static_cast<std::int32_t>(id_) + 1, "app", "fault-retry",
                                {{"page", static_cast<double>(p)},
                                 {"retry", static_cast<double>(retries)},
                                 {"outstanding", static_cast<double>(outstanding.size())}});
        }
        REPSEQ_CHECK(retries <= config().max_retries,
                     "diff request retries exhausted for page " + std::to_string(p));
        send_requests(outstanding);
        continue;
      }
      const auto& reply = msg->as<DiffReplyP>();
      if (!outstanding.erase(msg->src)) continue;  // duplicate after retransmit
      for (const DiffPacket& pkt : reply.packets) collected.push_back(pkt);
    }
    drop_reply_slot(req_id);
    apply_packets_causally(std::move(collected), /*on_server=*/false);
  }
  if (obs::enabled(obs::Cat::Tmk)) [[unlikely]] {
    obs::tracer().end(obs::Cat::Tmk, cluster_.engine().now(),
                      static_cast<std::int32_t>(id_) + 1, "app");
  }
  record_fault_round(t0, /*counted_as_request=*/true);
}

// ---------------------------------------------------------------------------
// Send helpers
// ---------------------------------------------------------------------------

void NodeRuntime::send_raw_unicast(net::Message msg, bool on_server) {
  const auto& ncfg = cluster_.network().config();
  const std::size_t wire = ncfg.wire_bytes(msg.payload_bytes);
  PhaseCounters& c = stats_.for_phase(cluster_.phase());
  // Diff traffic is counted per *logical* protocol message at its standalone
  // wire size, synchronously: the adaptive policy engine consumes these as
  // transport-invariant aftermath measures, so they must not vary with the
  // coalescing window.  Wire frames/bytes, by contrast, follow the wire:
  // they are charged by the commit callback below, which under a coalescing
  // backend fires at the window flush with this send's share of the
  // combined frame (frames may be 0 for a send that rode another's frame).
  if (is_diff_traffic(kind_of(msg))) {
    ++c.diff_msgs_sent;
    c.diff_bytes_sent += wire;
  }
  if (on_server) {
    cpu_.service(ncfg.send_overhead);
  } else {
    cpu_.flush();
    cpu_.compute(ncfg.send_overhead);
  }
  cluster_.network().unicast(std::move(msg), [&c](std::size_t frames, std::size_t bytes) {
    c.msgs_sent += frames;
    c.bytes_sent += bytes;
  });
}

void NodeRuntime::send_raw_multicast(net::Message msg, bool on_server) {
  net::Network& nw = cluster_.network();
  const auto& ncfg = nw.config();
  const MsgKind kind = kind_of(msg);
  // The sending CPU pays software send overhead per frame it transmits
  // itself (one on the hub; its own children on the tree; every frame in
  // the fan-out strawman).  Receiver-side loss never refunds CPU time.
  const auto sender_frames = static_cast<std::int64_t>(nw.multicast_sender_frames());
  if (on_server) {
    cpu_.service(ncfg.send_overhead * sender_frames);
  } else {
    cpu_.flush();
    cpu_.compute(ncfg.send_overhead * sender_frames);
  }
  if (kind == MsgKind::McastNullAck) ++stats_.for_phase(cluster_.phase()).null_acks_sent;
  // Wire accounting follows the backend, frame by frame as hops commit:
  // the event-driven tree transmits interior hops from deferred forwarding
  // events (and a lost frame prunes its whole subtree uncharged), so the
  // charge lands through a callback instead of a synchronous count.  Each
  // frame is attributed to the phase and shard of the *send*, whose traffic
  // it is, even if it commits after a phase flip.
  PhaseCounters& c = stats_.for_phase(cluster_.phase());
  const std::size_t shard = nw.shard_of_group(msg.mcast_group);
  const bool diff = is_diff_traffic(kind);
  nw.multicast(std::move(msg), [&c, shard, diff](std::size_t frames, std::size_t bytes) {
    c.msgs_sent += frames;
    c.bytes_sent += bytes;
    ShardCounters& sc = c.shard_mut(shard);
    sc.mcast_msgs += frames;
    sc.mcast_bytes += bytes;
    if (diff) {
      c.diff_msgs_sent += frames;
      c.diff_bytes_sent += bytes;
    }
  });
}

// ---------------------------------------------------------------------------
// Reply routing and page-valid waiting
// ---------------------------------------------------------------------------

sim::Channel<net::Message>& NodeRuntime::expect_replies(std::uint64_t req_id) {
  auto [it, inserted] =
      reply_slots_.emplace(req_id, std::make_unique<sim::Channel<net::Message>>(cluster_.engine()));
  REPSEQ_CHECK(inserted, "duplicate reply slot");
  return *it->second;
}

void NodeRuntime::drop_reply_slot(std::uint64_t req_id) { reply_slots_.erase(req_id); }

void NodeRuntime::notify_page_valid(PageId p) {
  auto it = page_waiters_.find(p);
  if (it == page_waiters_.end()) return;
  for (sim::WaitToken* w : it->second) w->signal();
  page_waiters_.erase(it);
}

bool NodeRuntime::wait_page_valid(PageId p, sim::SimDuration timeout) {
  if (pages_[p].prot != PageProt::Invalid) return true;
  sim::WaitToken tok(cluster_.engine());
  page_waiters_[p].push_back(&tok);
  const bool ok = tok.wait(timeout);
  if (!ok) {
    auto it = page_waiters_.find(p);
    if (it != page_waiters_.end()) {
      std::erase(it->second, &tok);
      if (it->second.empty()) page_waiters_.erase(it);
    }
  }
  return pages_[p].prot != PageProt::Invalid;
}

// ---------------------------------------------------------------------------
// Synchronization: barriers
// ---------------------------------------------------------------------------

void NodeRuntime::merge_sync_payload(const VectorClock& vc,
                                     const std::vector<IntervalRecordPtr>& records,
                                     bool on_server) {
  for (const IntervalRecordPtr& rec : records) {
    apply_notice(rec, on_server);
  }
  vc_.max_with(vc);
  if (chk_ != nullptr) [[unlikely]] chk_->on_sync_merge(id_);
}

std::vector<IntervalRecordPtr> NodeRuntime::records_unknown_to(const VectorClock& vc) const {
  return log_.records_after(vc);
}

void NodeRuntime::barrier(std::uint32_t barrier_id) {
  end_interval();
  if (node_count() == 1) return;
  const std::uint64_t seq =
      (static_cast<std::uint64_t>(barrier_id) << 32) | barrier_epochs_[barrier_id]++;
  if (is_master()) {
    BarrierGroup& g = barriers_[seq];
    g.master_arrived = true;
    barrier_complete_if_ready(seq, /*on_server=*/false);
    auto it = barriers_.find(seq);
    if (it != barriers_.end()) {
      sim::WaitToken tok(cluster_.engine());
      it->second.master_waiter = &tok;
      tok.wait();
    }
  } else {
    BarrierArriveP arr{seq, vc_, records_unknown_to(last_master_vc_)};
    if (chk_ != nullptr) [[unlikely]] arr.chk = chk_->shadow(id_);
    send_unicast(MsgKind::BarrierArrive, 0, std::move(arr), /*on_server=*/false);
    net::Message msg = depart_ch_.pop();
    const auto& d = msg.as<BarrierDepartP>();
    REPSEQ_CHECK(d.barrier_seq == seq, "barrier sequence mismatch");
    merge_sync_payload(d.vc, d.records, /*on_server=*/false);
    last_master_vc_ = d.vc;
    if (chk_ != nullptr) [[unlikely]] chk_->on_acquire(id_, d.chk);
  }
}

void NodeRuntime::handle_barrier_arrive(const net::Message& msg) {
  const auto& a = msg.as<BarrierArriveP>();
  BarrierGroup& g = barriers_[a.barrier_seq];
  merge_sync_payload(a.vc, a.records, /*on_server=*/true);
  // Shadow clocks must NOT merge here: the dispatcher handles arrivals in
  // the middle of the master's epoch, and an eager merge would falsely
  // order slave writes before the master's in-progress accesses.  Buffer,
  // merge at completion (below), which is the real acquire edge.
  if (chk_ != nullptr) [[unlikely]] chk_->buffer_barrier_arrival(a.barrier_seq, a.chk);
  g.waiter_vcs.emplace_back(msg.src, a.vc);
  ++g.arrived;
  barrier_complete_if_ready(a.barrier_seq, /*on_server=*/true);
}

void NodeRuntime::barrier_complete_if_ready(std::uint64_t barrier_seq, bool on_server) {
  auto it = barriers_.find(barrier_seq);
  REPSEQ_CHECK(it != barriers_.end(), "unknown barrier");
  BarrierGroup& g = it->second;
  if (!g.master_arrived || g.arrived != node_count() - 1) return;
  if (chk_ != nullptr) [[unlikely]] chk_->on_barrier_complete(barrier_seq);

  // Departures are sent, then the group is destroyed, so a late lookup by a
  // next-epoch arrival cannot confuse this (already keyed) group.
  for (const auto& [slave, arrive_vc] : g.waiter_vcs) {
    BarrierDepartP dep{barrier_seq, vc_, records_unknown_to(arrive_vc)};
    if (chk_ != nullptr) [[unlikely]] dep.chk = chk_->shadow(id_);
    send_unicast(MsgKind::BarrierDepart, slave, std::move(dep), on_server);
    slave_known_vc_[slave] = vc_;
  }
  sim::WaitToken* waiter = g.master_waiter;
  barriers_.erase(it);
  if (waiter != nullptr) waiter->signal();
}

// ---------------------------------------------------------------------------
// Synchronization: locks
// ---------------------------------------------------------------------------

void NodeRuntime::lock_acquire(std::uint32_t lock_id) {
  end_interval();
  const NodeId manager = static_cast<NodeId>(lock_id % node_count());
  const std::uint64_t req_id = next_req_id();
  LockAcquireP payload{req_id, lock_id, vc_};
  if (manager == id_) {
    manager_acquire(id_, std::move(payload), /*on_server=*/false);
  } else {
    send_unicast(MsgKind::LockAcquire, manager, std::move(payload), /*on_server=*/false);
  }
  net::Message msg = grant_ch_.pop();
  const auto& g = msg.as<LockGrantP>();
  REPSEQ_CHECK(g.lock == lock_id, "lock grant mismatch");
  merge_sync_payload(g.vc, g.records, /*on_server=*/false);
  if (chk_ != nullptr) [[unlikely]] chk_->on_acquire(id_, g.chk);
}

void NodeRuntime::lock_release(std::uint32_t lock_id) {
  end_interval();
  const NodeId manager = static_cast<NodeId>(lock_id % node_count());
  if (manager == id_) {
    manager_release(id_, lock_id, /*on_server=*/false);
  } else {
    send_unicast(MsgKind::LockRelease, manager, LockReleaseP{lock_id}, /*on_server=*/false);
  }
}

void NodeRuntime::manager_acquire(NodeId acquirer, LockAcquireP p, bool on_server) {
  LockManagerState& st = managed_locks_[p.lock];
  if (st.held || !st.waiting.empty()) {
    st.waiting.emplace_back(acquirer, std::move(p));
    return;
  }
  st.held = true;
  const NodeId releaser = st.last_releaser.value_or(id_);
  if (releaser == acquirer || !st.last_releaser.has_value()) {
    // No release chain to pull notices from: the manager itself answers
    // with everything the acquirer lacks (conservative but consistent).
    releaser_grant(acquirer, p.req_id, p.lock, p.vc, on_server);
  } else if (releaser == id_) {
    releaser_grant(acquirer, p.req_id, p.lock, p.vc, on_server);
  } else {
    send_unicast(MsgKind::LockForward, releaser, LockForwardP{p.req_id, p.lock, acquirer, p.vc},
                 on_server);
  }
}

void NodeRuntime::manager_release(NodeId releaser, std::uint32_t lock, bool on_server) {
  LockManagerState& st = managed_locks_[lock];
  st.held = false;
  st.last_releaser = releaser;
  if (!st.waiting.empty()) {
    auto [next, payload] = std::move(st.waiting.front());
    st.waiting.pop_front();
    st.held = true;
    if (releaser == id_) {
      releaser_grant(next, payload.req_id, payload.lock, payload.vc, on_server);
    } else {
      send_unicast(MsgKind::LockForward, releaser,
                   LockForwardP{payload.req_id, payload.lock, next, payload.vc}, on_server);
    }
  }
}

void NodeRuntime::releaser_grant(NodeId acquirer, std::uint64_t req_id, std::uint32_t lock,
                                 const VectorClock& acq_vc, bool on_server) {
  LockGrantP grant{req_id, lock, vc_, records_unknown_to(acq_vc)};
  // The releaser's shadow snapshot is taken at grant time (possibly on the
  // dispatcher fiber); sound because a node's shadow only advances at its
  // own sync operations and at buffered barrier completion.
  if (chk_ != nullptr) [[unlikely]] grant.chk = chk_->shadow(id_);
  if (acquirer == id_) {
    grant_ch_.push(make_message(MsgKind::LockGrant, id_, id_, std::move(grant)));
  } else {
    send_unicast(MsgKind::LockGrant, acquirer, std::move(grant), on_server);
  }
}

void NodeRuntime::receive_grant(net::Message msg) { grant_ch_.push(std::move(msg)); }

// ---------------------------------------------------------------------------
// Fork / join
// ---------------------------------------------------------------------------

void NodeRuntime::fork(std::uint64_t work_id, Phase phase) {
  REPSEQ_CHECK(is_master(), "fork from non-master");
  end_interval();
  cluster_.set_phase(phase);
  for (NodeId s = 1; s < node_count(); ++s) {
    ForkP f{work_id, vc_, records_unknown_to(slave_known_vc_[s])};
    if (chk_ != nullptr) [[unlikely]] f.chk = chk_->shadow(id_);
    send_unicast(MsgKind::Fork, s, std::move(f), /*on_server=*/false);
    slave_known_vc_[s] = vc_;
  }
}

void NodeRuntime::join_master() {
  REPSEQ_CHECK(is_master(), "join_master from non-master");
  end_interval();
  for (std::size_t i = 1; i < node_count(); ++i) {
    net::Message msg = join_ch_.pop();
    const auto& j = msg.as<JoinP>();
    merge_sync_payload(j.vc, j.records, /*on_server=*/false);
    slave_known_vc_[msg.src].max_with(j.vc);
    if (chk_ != nullptr) [[unlikely]] chk_->on_acquire(id_, j.chk);
  }
  cluster_.set_phase(Phase::Sequential);
}

void NodeRuntime::slave_loop() {
  for (;;) {
    net::Message msg = fork_ch_.pop();  // parks forever once the program ends
    const auto& f = msg.as<ForkP>();
    merge_sync_payload(f.vc, f.records, /*on_server=*/false);
    last_master_vc_ = f.vc;
    if (chk_ != nullptr) [[unlikely]] chk_->on_acquire(id_, f.chk);
    cluster_.work(f.work_id)(*this);
    end_interval();
    JoinP join{vc_, records_unknown_to(last_master_vc_)};
    if (chk_ != nullptr) [[unlikely]] join.chk = chk_->shadow(id_);
    send_unicast(MsgKind::Join, 0, std::move(join), /*on_server=*/false);
    last_master_vc_.max_with(vc_);
  }
}

// ---------------------------------------------------------------------------
// Dispatcher (request server)
// ---------------------------------------------------------------------------

void NodeRuntime::dispatcher_loop() {
  auto& inbox = cluster_.network().nic(id_).inbox();
  const auto& ncfg = cluster_.network().config();
  for (;;) {
    net::Message msg = inbox.pop();
    cpu_.service(ncfg.recv_overhead);
    handle_message(msg);
  }
}

void NodeRuntime::handle_message(const net::Message& msg) {
  REPSEQ_CHECK(cluster_.protocol().dispatch(*this, msg),
               "unhandled message kind " + std::to_string(msg.kind));
}

void NodeRuntime::register_base_protocol(ProtocolEngine& engine) {
  engine.on(MsgKind::DiffRequest, [](NodeRuntime& rt, const net::Message& msg) {
    rt.handle_diff_request(msg);
  });
  engine.on(MsgKind::DiffReply, [](NodeRuntime& rt, const net::Message& msg) {
    // Stale replies after retransmission are dropped.
    auto it = rt.reply_slots_.find(msg.as<DiffReplyP>().req_id);
    if (it != rt.reply_slots_.end()) it->second->push(msg);
  });
  engine.on(MsgKind::LockAcquire, [](NodeRuntime& rt, const net::Message& msg) {
    rt.manager_acquire(msg.src, msg.as<LockAcquireP>(), /*on_server=*/true);
  });
  engine.on(MsgKind::LockForward, [](NodeRuntime& rt, const net::Message& msg) {
    const auto& f = msg.as<LockForwardP>();
    rt.releaser_grant(f.acquirer, f.req_id, f.lock, f.vc, /*on_server=*/true);
  });
  engine.on(MsgKind::LockRelease, [](NodeRuntime& rt, const net::Message& msg) {
    rt.manager_release(msg.src, msg.as<LockReleaseP>().lock, /*on_server=*/true);
  });
  engine.on(MsgKind::LockGrant, [](NodeRuntime& rt, const net::Message& msg) {
    rt.receive_grant(msg);
  });
  engine.on(MsgKind::BarrierArrive, [](NodeRuntime& rt, const net::Message& msg) {
    rt.handle_barrier_arrive(msg);
  });
  engine.on(MsgKind::BarrierDepart, [](NodeRuntime& rt, const net::Message& msg) {
    rt.depart_ch_.push(msg);
  });
  engine.on(MsgKind::Fork, [](NodeRuntime& rt, const net::Message& msg) {
    rt.fork_ch_.push(msg);
  });
  engine.on(MsgKind::Join, [](NodeRuntime& rt, const net::Message& msg) {
    rt.join_ch_.push(msg);
  });
  engine.on(MsgKind::BcastUpdate, [](NodeRuntime& rt, const net::Message& msg) {
    // Push-style section broadcast (Sections 4.2 / 6.1.2 alternatives):
    // log+invalidate the notices, then apply their diffs immediately --
    // but only for pages this batch makes fully valid.  A receiver may
    // still owe a page an *older* third-party notice it never pulled
    // (say, another slave's pre-section writes): eagerly applying the
    // master's newer diff there clears only the master's notice, and the
    // eventual fault would pull the older diff on top of the newer data,
    // clobbering it.  Such pages skip the eager path entirely -- they stay
    // invalid, and the pull path fetches every pending diff together,
    // causally ordered.
    const auto& u = msg.as<BcastUpdateP>();
    for (const IntervalRecordPtr& rec : u.records) rt.apply_notice(rec, /*on_server=*/true);
    std::map<PageId, std::set<std::pair<NodeId, std::uint32_t>>> covered;
    for (const DiffPacket& pkt : u.packets) {
      auto& c = covered[pkt.page];
      for (std::uint32_t i : pkt.covers) c.emplace(pkt.owner, i);
    }
    std::map<PageId, bool> page_complete;
    for (const auto& [page, c] : covered) {
      const auto& pending = rt.page(page).pending;
      page_complete[page] =
          std::all_of(pending.begin(), pending.end(), [&](const IntervalRecordPtr& r) {
            return c.contains({r->owner, r->index});
          });
    }
    std::vector<DiffPacket> complete;
    for (const DiffPacket& pkt : u.packets) {
      if (page_complete[pkt.page]) complete.push_back(pkt);
    }
    if (!complete.empty()) rt.apply_packets_causally(std::move(complete), /*on_server=*/true);
    rt.send_unicast(MsgKind::BcastAck, msg.src, BcastAckP{u.req_id}, /*on_server=*/true);
  });
  engine.on(MsgKind::BcastAck, [](NodeRuntime& rt, const net::Message& msg) {
    auto it = rt.reply_slots_.find(msg.as<BcastAckP>().req_id);
    if (it != rt.reply_slots_.end()) it->second->push(msg);
  });
}

void NodeRuntime::handle_diff_request(const net::Message& msg) {
  const auto& r = msg.as<DiffRequestP>();
  std::vector<DiffPacket> packets = collect_diffs(r.page, r.intervals, /*on_server=*/true);
  send_unicast(MsgKind::DiffReply, msg.src, DiffReplyP{r.req_id, r.page, std::move(packets)},
               /*on_server=*/true);
}

// ---------------------------------------------------------------------------
// Cluster
// ---------------------------------------------------------------------------

Cluster::Cluster(TmkConfig cfg, net::NetConfig net_cfg, std::size_t nodes)
    : cfg_(cfg), node_count_(nodes), heap_(cfg.heap_bytes) {
  REPSEQ_CHECK(nodes >= 1, "cluster needs at least one node");
  REPSEQ_CHECK(cfg_.heap_bytes % cfg_.page_bytes == 0, "heap must be whole pages");
  NodeRuntime::register_base_protocol(protocol_);
  network_ = std::make_unique<net::Network>(engine_, net_cfg, nodes);
  // Loss injection exercises the diff-request recovery paths; the
  // synchronization messages (fork/join/barrier/lock) are modeled as
  // reliable transport (TreadMarks retries them below the protocol layer).
  // The same split governs receive-ring overflow: diff traffic -- the
  // Section 5.4 hazard the flow control exists for -- drops on a full
  // ring, while sync traffic is admitted as if kernel-retried (a dropped
  // Join/Barrier has no protocol-level recovery and would deadlock the
  // cluster, e.g. when concurrent sharded rounds' ack tails overlap the
  // join burst at a section boundary).
  network_->set_loss_filter([](const net::Message& m) { return is_diff_traffic(kind_of(m)); });
  network_->set_drop_filter([](const net::Message& m) { return is_diff_traffic(kind_of(m)); });
  // Correctness checking is decided once per cluster (env axis or a test's
  // ScopedConfig), before the nodes cache the pointer; a null checker makes
  // every hook a single predicted-false branch.
  const chk::Config chk_cfg = chk::effective_config();
  if (chk_cfg.mask != 0) checker_ = std::make_unique<chk::Checker>(*this, chk_cfg);
  nodes_.reserve(nodes);
  for (NodeId n = 0; n < nodes; ++n) {
    nodes_.push_back(std::make_unique<NodeRuntime>(*this, n));
  }
  // Tracing is (re)configured per cluster so sweeps and tests can flip
  // REPSEQ_TRACE between runs; the trace is written when the cluster dies.
  obs::tracer().configure_from_env();
  if (obs::tracer().active()) {
    obs::tracer().set_process_name(0, "cluster");
    for (NodeId n = 0; n < nodes; ++n) {
      obs::tracer().set_process_name(static_cast<std::int32_t>(n) + 1,
                                     "node-" + std::to_string(n));
    }
  }
}

Cluster::~Cluster() {
  if (obs::tracer().active()) obs::tracer().write();
}

void Cluster::set_rse_hooks(RseHooks* hooks) {
  REPSEQ_CHECK(rse_hooks_ == nullptr, "RSE hooks already attached to this cluster");
  rse_hooks_ = hooks;
  if (hooks != nullptr) hooks->register_handlers(protocol_);
}

std::uint64_t Cluster::register_work(std::function<void(NodeRuntime&)> fn) {
  work_table_.push_back(std::move(fn));
  return work_table_.size() - 1;
}

const std::function<void(NodeRuntime&)>& Cluster::work(std::uint64_t id) const {
  REPSEQ_CHECK(id < work_table_.size(), "unknown work id");
  return work_table_[id];
}

NodeRuntime& Cluster::current() {
  sim::Fiber* f = sim::Fiber::current();
  REPSEQ_CHECK(f != nullptr && f->user_data() != nullptr,
               "Cluster::current() outside a node fiber");
  return *static_cast<NodeRuntime*>(f->user_data());
}

sim::SimDuration Cluster::run(std::function<void(NodeRuntime&)> master_program) {
  REPSEQ_CHECK(!ran_, "Cluster::run may only be called once");
  ran_ = true;
  const sim::SimTime start = engine_.now();
  for (auto& node : nodes_) {
    NodeRuntime* rt = node.get();
    sim::FiberRef f = engine_.spawn("dispatch-" + std::to_string(rt->id()),
                                    [rt] { rt->dispatcher_loop(); });
    f->set_user_data(rt);
    f->set_trace_pid(static_cast<std::int32_t>(rt->id()) + 1);
  }
  for (std::size_t n = 1; n < nodes_.size(); ++n) {
    NodeRuntime* rt = nodes_[n].get();
    sim::FiberRef f =
        engine_.spawn("slave-" + std::to_string(n), [rt] { rt->slave_loop(); });
    f->set_user_data(rt);
    f->set_trace_pid(static_cast<std::int32_t>(n) + 1);
  }
  NodeRuntime* master = nodes_[0].get();
  sim::FiberRef f = engine_.spawn(
      "master", [master, program = std::move(master_program)] { program(*master); });
  f->set_user_data(master);
  f->set_trace_pid(1);
  engine_.run();
  return engine_.now() - start;
}

PhaseCounters Cluster::total(Phase p) const {
  PhaseCounters out;
  for (const auto& node : nodes_) {
    out.merge(node->stats().for_phase(p));
  }
  return out;
}

std::vector<HubOccupancy> Cluster::hub_occupancy() const {
  std::vector<HubOccupancy> out(network_->hub_shards());
  for (const auto& node : nodes_) {
    for (const PhaseCounters* c : {&node->stats_.seq, &node->stats_.par}) {
      for (std::size_t s = 0; s < c->shard_traffic.size() && s < out.size(); ++s) {
        out[s].mcast_msgs += c->shard_traffic[s].mcast_msgs;
        out[s].mcast_bytes += c->shard_traffic[s].mcast_bytes;
      }
    }
  }
  for (std::size_t s = 0; s < out.size(); ++s) out[s].busy = network_->hub_busy(s);
  return out;
}

}  // namespace repseq::tmk
