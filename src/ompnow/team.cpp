#include "ompnow/team.hpp"

#include "rse/alternatives.hpp"
#include "util/check.hpp"

namespace repseq::ompnow {

Range block_range(long lo, long hi, int tid, int nthreads) {
  const long n = hi - lo;
  const long base = n / nthreads;
  const long extra = n % nthreads;
  const long begin = lo + tid * base + std::min<long>(tid, extra);
  const long len = base + (tid < extra ? 1 : 0);
  return {begin, begin + len};
}

Team::Team(tmk::Cluster& cluster, SeqMode seq_mode, rse::RseController* rse)
    : cluster_(cluster), seq_mode_(seq_mode), rse_(rse) {
  if (seq_mode_ == SeqMode::Replicated) {
    REPSEQ_CHECK(rse_ != nullptr, "Replicated mode requires an RseController");
  }
}

void Team::run_region(std::uint64_t work_id, tmk::Phase phase) {
  tmk::NodeRuntime& master = cluster_.node(0);
  master.fork(work_id, phase);
  cluster_.work(work_id)(master);  // the master thread participates
  master.join_master();
}

void Team::parallel(std::function<void(const Ctx&)> body) {
  const sim::SimTime t0 = cluster_.engine().now();
  ++parallel_regions_;
  const int n = static_cast<int>(cluster_.node_count());
  const std::uint64_t id = cluster_.register_work([body = std::move(body), n](tmk::NodeRuntime& rt) {
    Ctx ctx{rt, static_cast<int>(rt.id()), n};
    body(ctx);
  });
  run_region(id, tmk::Phase::Parallel);
  par_time_ += cluster_.engine().now() - t0;
}

void Team::parallel_for(long lo, long hi, Schedule sched,
                        std::function<void(const Ctx&, long)> body, bool if_parallel) {
  if (!if_parallel) {
    // The OpenMP `if` clause: run the whole loop on the (master) thread,
    // inside the surrounding sequential flow -- no fork, no join.
    Ctx ctx{cluster_.node(0), 0, 1};
    for (long i = lo; i < hi; ++i) body(ctx, i);
    return;
  }
  if (cluster_.node_count() == 1) {
    // One-node cluster: still a parallel region semantically (this is the
    // sequential baseline of the paper's speedup tables), so its time is
    // accounted as parallel-section time.
    const sim::SimTime t0 = cluster_.engine().now();
    ++parallel_regions_;
    Ctx ctx{cluster_.node(0), 0, 1};
    for (long i = lo; i < hi; ++i) body(ctx, i);
    cluster_.node(0).cpu().flush();
    par_time_ += cluster_.engine().now() - t0;
    return;
  }
  parallel([lo, hi, sched, body = std::move(body)](const Ctx& ctx) {
    switch (sched) {
      case Schedule::StaticBlock: {
        const Range r = block_range(lo, hi, ctx.tid, ctx.nthreads);
        for (long i = r.lo; i < r.hi; ++i) body(ctx, i);
        break;
      }
      case Schedule::StaticCyclic: {
        for (long i = lo + ctx.tid; i < hi; i += ctx.nthreads) body(ctx, i);
        break;
      }
    }
  });
}

void Team::sequential(std::function<void(const Ctx&)> body) {
  tmk::NodeRuntime& master = cluster_.node(0);
  const sim::SimTime t0 = cluster_.engine().now();
  ++seq_sections_;
  const int n = static_cast<int>(cluster_.node_count());

  switch (seq_mode_) {
    case SeqMode::MasterOnly: {
      Ctx ctx{master, 0, n};
      body(ctx);
      master.cpu().flush();
      break;
    }
    case SeqMode::BroadcastAfter: {
      master.end_interval();
      const tmk::VectorClock before = master.vc();
      Ctx ctx{master, 0, n};
      body(ctx);
      master.cpu().flush();
      rse::broadcast_section_updates(master, before);
      break;
    }
    case SeqMode::Replicated: {
      if (n == 1) {
        Ctx ctx{master, 0, 1};
        body(ctx);
        master.cpu().flush();
        break;
      }
      // The section is shipped to every node like a region whose body is
      // the *whole* sequential section, bracketed by the RSE protocol.
      // Traffic inside belongs to the sequential-section accounting.
      rse::RseController* rse = rse_;
      const std::uint64_t id =
          cluster_.register_work([body = std::move(body), rse, n](tmk::NodeRuntime& rt) {
            rse->enter(rt);
            Ctx ctx{rt, static_cast<int>(rt.id()), n};
            body(ctx);
            rt.cpu().flush();
            rse->exit(rt);
          });
      run_region(id, tmk::Phase::Sequential);
      break;
    }
  }
  seq_time_ += cluster_.engine().now() - t0;
}

}  // namespace repseq::ompnow
