// Wire protocol: message kinds and typed payloads.
//
// Payloads are passed by shared pointer (the cluster shares one address
// space), but every payload computes the byte size a real serialization
// would occupy so that message/byte accounting matches the paper's tables.
#pragma once

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "net/message.hpp"
#include "tmk/diff.hpp"
#include "tmk/interval.hpp"
#include "tmk/vector_clock.hpp"

namespace repseq::tmk {

enum class MsgKind : std::uint32_t {
  // ---- base TreadMarks protocol ----
  DiffRequest = 1,
  DiffReply,
  LockAcquire,   // acquirer -> manager
  LockForward,   // manager -> last releaser
  LockRelease,   // holder  -> manager
  LockGrant,     // releaser -> acquirer (write notices ride here)
  BarrierArrive,
  BarrierDepart,
  Fork,
  Join,
  // ---- replicated sequential execution (paper Sections 5.2-5.4) ----
  ValidNotices,      // node -> master at the join before a sequential section
  ValidTable,        // master -> all (multicast): aggregated valid notices
  McastRequestFwd,   // elected requester -> master (point-to-point)
  McastDiffRequest,  // master -> all (multicast), starts a reply chain
  McastDiffReply,    // diff holder -> all (multicast), doubles as chain ack
  McastNullAck,      // non-holder -> all (multicast), pure chain ack
  RecoverRequest,    // timeout recovery: faulter -> holder directly
  // ---- broadcast-all alternative (paper Sections 4.2 / 6.1.2 ablations) ----
  BcastUpdate,       // master -> all (multicast): notices + diffs of a section
  BcastAck,          // receiver -> master: applied
  // ---- adaptive replication policy (rse::policy) ----
  PolicySectionOpen,  // master -> all (multicast): section id + chosen strategy
  // ---- local control (never on the wire) ----
  RseRoundTick,      // master-local timer: force round progression on loss
};

/// One diff and the write-notice intervals of (owner, page) it satisfies.
/// Lazy diff creation can merge several intervals into one diff, so `covers`
/// may list more than one index (paper Section 5.1).
///
/// `covers` is always the diff's FULL registration (every interval it was
/// frozen for), not just the intervals a particular requester asked about.
/// Receivers use min(covers) against their per-page validity clock to
/// recognize a batch they have already applied: re-applying a frozen batch
/// after newer writes landed would resurrect stale data.
struct DiffPacket {
  NodeId owner = 0;
  PageId page = 0;
  std::vector<std::uint32_t> covers;
  DiffPtr diff;
  /// Creation sequence at the owner; orders multiple diffs registered under
  /// the same interval (early flushes of a still-open interval).
  std::uint64_t seq = 0;

  [[nodiscard]] std::size_t wire_bytes() const {
    return diff->wire_bytes() + 4 * covers.size();
  }
};

// Per-owner list of wanted interval indices for one page.
using WantedByOwner = std::vector<std::pair<NodeId, std::vector<std::uint32_t>>>;

inline std::size_t wanted_wire_bytes(const WantedByOwner& w) {
  std::size_t b = 0;
  for (const auto& [owner, ivs] : w) b += 8 + 4 * ivs.size();
  return b;
}

inline std::size_t packets_wire_bytes(const std::vector<DiffPacket>& ps) {
  std::size_t b = 0;
  for (const DiffPacket& p : ps) b += p.wire_bytes();
  return b;
}

inline std::size_t records_wire_bytes(const std::vector<IntervalRecordPtr>& rs) {
  std::size_t b = 0;
  for (const auto& r : rs) b += r->wire_bytes();
  return b;
}

struct DiffRequestP {
  std::uint64_t req_id = 0;
  PageId page = 0;
  std::vector<std::uint32_t> intervals;  // wanted intervals of the dst node
  [[nodiscard]] std::size_t wire_bytes() const { return 16 + 4 * intervals.size(); }
};

struct DiffReplyP {
  std::uint64_t req_id = 0;
  PageId page = 0;
  std::vector<DiffPacket> packets;
  [[nodiscard]] std::size_t wire_bytes() const { return 16 + packets_wire_bytes(packets); }
};

struct LockAcquireP {
  std::uint64_t req_id = 0;
  std::uint32_t lock = 0;
  VectorClock vc;
  [[nodiscard]] std::size_t wire_bytes() const { return 16 + vc.wire_bytes(); }
};

struct LockForwardP {
  std::uint64_t req_id = 0;
  std::uint32_t lock = 0;
  NodeId acquirer = 0;
  VectorClock vc;
  [[nodiscard]] std::size_t wire_bytes() const { return 20 + vc.wire_bytes(); }
};

struct LockReleaseP {
  std::uint32_t lock = 0;
  [[nodiscard]] static std::size_t wire_bytes() { return 8; }
};

struct LockGrantP {
  std::uint64_t req_id = 0;
  std::uint32_t lock = 0;
  VectorClock vc;
  std::vector<IntervalRecordPtr> records;
  /// Shadow happens-before snapshot for the chk race detector; empty (and
  /// excluded from wire_bytes) unless checking is on -- the analysis rides
  /// the sync messages without perturbing the accounted wire.
  VectorClock chk;
  [[nodiscard]] std::size_t wire_bytes() const {
    return 16 + vc.wire_bytes() + records_wire_bytes(records);
  }
};

struct BarrierArriveP {
  /// (barrier id << 32) | per-node epoch counter; SPMD execution makes the
  /// epoch consistent across nodes and keeps back-to-back barriers with the
  /// same id from colliding.
  std::uint64_t barrier_seq = 0;
  VectorClock vc;
  std::vector<IntervalRecordPtr> records;
  VectorClock chk;  // shadow clock side-channel, excluded from wire_bytes
  [[nodiscard]] std::size_t wire_bytes() const {
    return 8 + vc.wire_bytes() + records_wire_bytes(records);
  }
};

struct BarrierDepartP {
  std::uint64_t barrier_seq = 0;
  VectorClock vc;
  std::vector<IntervalRecordPtr> records;
  VectorClock chk;  // shadow clock side-channel, excluded from wire_bytes
  [[nodiscard]] std::size_t wire_bytes() const {
    return 8 + vc.wire_bytes() + records_wire_bytes(records);
  }
};

struct ForkP {
  std::uint64_t work_id = 0;  // "pointer to the region subroutine"
  VectorClock vc;
  std::vector<IntervalRecordPtr> records;
  VectorClock chk;  // shadow clock side-channel, excluded from wire_bytes
  [[nodiscard]] std::size_t wire_bytes() const {
    // work descriptor: function id + argument block (paper: subroutine
    // pointer, arguments, and additional information)
    return 32 + vc.wire_bytes() + records_wire_bytes(records);
  }
};

struct JoinP {
  VectorClock vc;
  std::vector<IntervalRecordPtr> records;
  VectorClock chk;  // shadow clock side-channel, excluded from wire_bytes
  [[nodiscard]] std::size_t wire_bytes() const {
    return 8 + vc.wire_bytes() + records_wire_bytes(records);
  }
};

// ---- replicated sequential execution payloads ----

/// One node's valid notices: for each page it would fault on, its local
/// validity timestamp (paper Section 5.4.1).
struct ValidNoticesP {
  std::vector<std::pair<PageId, VectorClock>> entries;
  [[nodiscard]] std::size_t wire_bytes() const {
    std::size_t b = 8;
    for (const auto& [page, vc] : entries) b += 4 + vc.wire_bytes();
    return b;
  }
};

/// The aggregated table, multicast by the master: per node, that node's
/// ValidNotices entries.
struct ValidTableP {
  std::shared_ptr<const std::vector<ValidNoticesP>> per_node;
  [[nodiscard]] std::size_t wire_bytes() const {
    std::size_t b = 8;
    for (const auto& vn : *per_node) b += vn.wire_bytes();
    return b;
  }
};

struct McastRequestFwdP {
  PageId page = 0;
  NodeId requester = 0;
  WantedByOwner wanted;  // union over all faulting threads
  [[nodiscard]] std::size_t wire_bytes() const { return 12 + wanted_wire_bytes(wanted); }
};

struct McastDiffRequestP {
  std::uint64_t round = 0;  // master-assigned serialization number
  PageId page = 0;
  NodeId requester = 0;
  WantedByOwner wanted;
  [[nodiscard]] std::size_t wire_bytes() const { return 20 + wanted_wire_bytes(wanted); }
};

struct McastDiffReplyP {
  std::uint64_t round = 0;  // 0 = recovery reply outside any chain
  PageId page = 0;
  NodeId sender = 0;
  std::vector<DiffPacket> packets;
  [[nodiscard]] std::size_t wire_bytes() const { return 20 + packets_wire_bytes(packets); }
};

struct McastNullAckP {
  std::uint64_t round = 0;
  PageId page = 0;
  NodeId sender = 0;
  [[nodiscard]] static std::size_t wire_bytes() { return 20; }
};

struct RecoverRequestP {
  std::uint64_t req_id = 0;
  PageId page = 0;
  std::vector<std::uint32_t> intervals;  // wanted intervals of the dst node
  [[nodiscard]] std::size_t wire_bytes() const { return 16 + 4 * intervals.size(); }
};

/// Push-style update: the "multicast all data modified during the sequential
/// execution" alternative the paper compares against (Section 4.2), also the
/// hand-inserted tree broadcast of Section 6.1.2.
struct BcastUpdateP {
  std::uint64_t req_id = 0;
  std::vector<IntervalRecordPtr> records;
  std::vector<DiffPacket> packets;
  [[nodiscard]] std::size_t wire_bytes() const {
    return 16 + records_wire_bytes(records) + packets_wire_bytes(packets);
  }
};

struct BcastAckP {
  std::uint64_t req_id = 0;
  [[nodiscard]] static std::size_t wire_bytes() { return 16; }
};

/// The per-section strategy decision, multicast by the master at section
/// entry so every node records the same agreed decision sequence (the
/// adaptive-policy analogue of the fork's work descriptor).  Slaves only log
/// it; the execution itself is still driven by the master's fork-or-inline
/// choice, which this message names.
struct PolicySectionOpenP {
  std::uint64_t seq = 0;      // cluster-global section sequence number
  std::uint32_t site = 0;     // application-stamped section site id
  std::uint8_t strategy = 0;  // rse::policy::SectionStrategy
  std::uint8_t switched = 0;  // differs from this site's previous strategy
  [[nodiscard]] static std::size_t wire_bytes() { return 16; }
};

/// Master-local watchdog tick (injected into the master's own inbox, never
/// transmitted): if the multicast round `round` on `shard` is still in
/// flight when the tick is handled, the master abandons it and starts that
/// shard's next one; the faulters of the dead round fall back to direct
/// recovery.  Round numbers are per-shard sequences, so the shard must ride
/// along to name the round unambiguously.
struct RseRoundTickP {
  std::uint64_t round = 0;
  std::uint32_t shard = 0;
  [[nodiscard]] static std::size_t wire_bytes() { return 0; }
};

/// Builds a transport message around a typed payload.
template <typename P>
net::Message make_message(MsgKind kind, NodeId src, NodeId dst, P payload) {
  net::Message m;
  m.src = src;
  m.dst = dst;
  m.kind = static_cast<std::uint32_t>(kind);
  m.payload_bytes = payload.wire_bytes();
  m.payload = util::make_pooled<P>(std::move(payload));
  return m;
}

inline MsgKind kind_of(const net::Message& m) { return static_cast<MsgKind>(m.kind); }

/// True for message kinds that carry diff traffic (the paper's "diff
/// messages" accounting rows).
inline bool is_diff_traffic(MsgKind k) {
  switch (k) {
    case MsgKind::DiffRequest:
    case MsgKind::DiffReply:
    case MsgKind::McastRequestFwd:
    case MsgKind::McastDiffRequest:
    case MsgKind::McastDiffReply:
    case MsgKind::McastNullAck:
    case MsgKind::RecoverRequest:
    case MsgKind::BcastUpdate:
      return true;
    default:
      return false;
  }
}

}  // namespace repseq::tmk
