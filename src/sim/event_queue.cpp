#include "sim/event_queue.hpp"

#include <algorithm>
#include <cstdlib>
#include <string>

#include "util/check.hpp"

namespace repseq::sim {

namespace {
std::size_t arity_from_env() {
  const char* v = std::getenv("REPSEQ_EVENTQ");
  if (v == nullptr) return 4;
  const std::string s(v);
  if (s == "quad") return 4;
  if (s == "binary") return 2;
  REPSEQ_CHECK(false, "unknown REPSEQ_EVENTQ '" + s + "' (accepted: binary|quad)");
  return 4;
}
}  // namespace

EventQueue::EventQueue() : EventQueue(arity_from_env()) {}

EventQueue::EventQueue(std::size_t arity) : arity_(arity) {
  REPSEQ_CHECK(arity_ == 2 || arity_ == 4, "event queue arity must be 2 or 4");
}

std::uint32_t EventQueue::acquire_slot() {
  if (free_head_ != kNil) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].next_free;
    return slot;
  }
  REPSEQ_CHECK(slots_.size() < kNil, "event slot space exhausted");
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void EventQueue::release_slot(std::uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.reset();
  ++s.gen;  // kills every outstanding handle and heap record for this slot
  s.next_free = free_head_;
  free_head_ = slot;
}

void EventQueue::cancel(Handle h) {
  if (h.slot == kNil || h.slot >= slots_.size() || slots_[h.slot].gen != h.gen) {
    return;  // never scheduled, already ran, already cancelled, or recycled
  }
  release_slot(h.slot);
  --live_;
}

void EventQueue::sift_up(std::size_t i) const {
  Item it = heap_[i];
  while (i > 0) {
    const std::size_t parent = (i - 1) / arity_;
    if (!it.before(heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = it;
}

void EventQueue::sift_down(std::size_t i) const {
  const std::size_t n = heap_.size();
  Item it = heap_[i];
  while (true) {
    const std::size_t first = arity_ * i + 1;
    if (first >= n) break;
    std::size_t best = first;
    const std::size_t last = std::min(first + arity_, n);
    for (std::size_t c = first + 1; c < last; ++c) {
      if (heap_[c].before(heap_[best])) best = c;
    }
    if (!heap_[best].before(it)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = it;
}

void EventQueue::heap_pop_top() const {
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) sift_down(0);
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && item_dead(heap_[0])) {
    heap_pop_top();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  REPSEQ_CHECK(!heap_.empty(), "next_time() on empty event queue");
  return heap_[0].time;
}

EventQueue::Popped EventQueue::pop() {
  drop_cancelled();
  REPSEQ_CHECK(!heap_.empty(), "pop() on empty event queue");
  const Item top = heap_[0];
  Popped out{top.time, std::move(slots_[top.slot].fn)};
  release_slot(top.slot);
  heap_pop_top();
  --live_;
  return out;
}

}  // namespace repseq::sim
