#!/usr/bin/env python3
"""Run clang-tidy over the src/ tree against a compile_commands.json.

Thin parallel driver so CI (and developers with clang-tidy installed) get
one command with a real exit code instead of a find/xargs incantation:

    cmake -B build -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
    python3 scripts/run_clang_tidy.py build

Only src/ translation units are tidied (the .clang-tidy header filter
likewise scopes to src/); tests and benches are covered by the compiler
warning set and the sanitizer jobs.  Exits nonzero if clang-tidy is missing,
the build dir has no compile_commands.json, or any file produces findings
(.clang-tidy sets WarningsAsErrors: '*').
"""

import argparse
import concurrent.futures
import json
import os
import shutil
import subprocess
import sys


def tidy_one(binary: str, build_dir: str, source: str) -> "tuple[str, int, str]":
    proc = subprocess.run(
        [binary, "-p", build_dir, "--quiet", source],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return source, proc.returncode, proc.stdout


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("build_dir", help="build dir containing compile_commands.json")
    ap.add_argument("--clang-tidy", default=os.environ.get("CLANG_TIDY", "clang-tidy"),
                    help="clang-tidy binary (default: $CLANG_TIDY or clang-tidy)")
    ap.add_argument("-j", "--jobs", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args()

    binary = shutil.which(args.clang_tidy)
    if binary is None:
        print(f"error: '{args.clang_tidy}' not found on PATH", file=sys.stderr)
        return 2

    db_path = os.path.join(args.build_dir, "compile_commands.json")
    try:
        with open(db_path, encoding="utf-8") as f:
            db = json.load(f)
    except OSError as e:
        print(f"error: {e}\nconfigure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON",
              file=sys.stderr)
        return 2

    repo = os.path.dirname(os.path.abspath(os.path.dirname(__file__)))
    src_prefix = os.path.join(repo, "src") + os.sep
    sources = sorted({os.path.abspath(os.path.join(e["directory"], e["file"]))
                      for e in db})
    sources = [s for s in sources if s.startswith(src_prefix)]
    if not sources:
        print("error: no src/ entries in compile_commands.json", file=sys.stderr)
        return 2

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        futures = [pool.submit(tidy_one, binary, args.build_dir, s) for s in sources]
        for fut in concurrent.futures.as_completed(futures):
            source, rc, output = fut.result()
            rel = os.path.relpath(source, repo)
            if rc != 0:
                failed += 1
                print(f"== {rel}")
                print(output)
            else:
                print(f"ok {rel}")

    if failed:
        print(f"\nclang-tidy: findings in {failed}/{len(sources)} files",
              file=sys.stderr)
        return 1
    print(f"\nclang-tidy: {len(sources)} files clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
