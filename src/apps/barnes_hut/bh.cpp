#include "apps/barnes_hut/bh.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/rng.hpp"
#include "util/check.hpp"

namespace repseq::apps::bh {

namespace {

using ompnow::Ctx;

/// Barrier id separating force evaluation from position integration.
constexpr std::uint32_t kBhPhaseBarrier = 100;

/// Octant of `p` relative to center `c`: bit0 = x, bit1 = y, bit2 = z.
int octant(const Vec3& p, const Vec3& c) {
  return (p.x >= c.x ? 1 : 0) | (p.y >= c.y ? 2 : 0) | (p.z >= c.z ? 4 : 0);
}

Vec3 child_center(const Vec3& c, double half, int oct) {
  const double q = half / 2.0;
  return {c.x + ((oct & 1) ? q : -q), c.y + ((oct & 2) ? q : -q), c.z + ((oct & 4) ? q : -q)};
}

}  // namespace

std::vector<Body> plummer_bodies(int n, std::uint64_t seed) {
  // Plummer-model positions with small deterministic velocities; rejection
  // sampling keeps the model standard while staying fully reproducible.
  sim::Rng rng(seed);
  std::vector<Body> out(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    const double m = 1.0 / n;
    double r;
    do {
      const double u = rng.uniform(1e-4, 0.999);
      r = 1.0 / std::sqrt(std::pow(u, -2.0 / 3.0) - 1.0);
    } while (r > 8.0);
    const double ctheta = rng.uniform(-1.0, 1.0);
    const double phi = rng.uniform(0.0, 2.0 * 3.141592653589793);
    const double stheta = std::sqrt(std::max(0.0, 1.0 - ctheta * ctheta));
    Body b;
    b.pos = {r * stheta * std::cos(phi), r * stheta * std::sin(phi), r * ctheta};
    b.vel = {-b.pos.y * 0.05, b.pos.x * 0.05, 0.0};  // mild rotation
    b.mass = m;
    b.work = 1.0;
    out[static_cast<std::size_t>(i)] = b;
  }
  return out;
}

std::vector<Vec3> direct_forces(const std::vector<Body>& bodies, double eps) {
  std::vector<Vec3> acc(bodies.size());
  for (std::size_t i = 0; i < bodies.size(); ++i) {
    Vec3 a;
    for (std::size_t j = 0; j < bodies.size(); ++j) {
      if (i == j) continue;
      const Vec3 dr = bodies[j].pos - bodies[i].pos;
      const double r2 = dr.norm2() + eps * eps;
      const double inv = 1.0 / (r2 * std::sqrt(r2));
      a += dr * (bodies[j].mass * inv);
    }
    acc[i] = a;
  }
  return acc;
}

BhWorld setup_world(tmk::Cluster& cluster, const BhConfig& cfg) {
  BhWorld w;
  const auto n = static_cast<std::size_t>(cfg.bodies);
  w.max_cells = n * 4 + 64;
  w.pos = tmk::ShArray<Vec3>::alloc(cluster, n, /*page_aligned=*/true);
  w.vel = tmk::ShArray<Vec3>::alloc(cluster, n, /*page_aligned=*/true);
  w.acc = tmk::ShArray<Vec3>::alloc(cluster, n, /*page_aligned=*/true);
  w.mass = tmk::ShArray<double>::alloc(cluster, n, /*page_aligned=*/true);
  w.work = tmk::ShArray<double>::alloc(cluster, n, /*page_aligned=*/true);
  w.cells = tmk::ShArray<Cell>::alloc(cluster, w.max_cells, /*page_aligned=*/true);
  w.cell_count = tmk::ShVar<std::uint32_t>::alloc(cluster);
  w.root = tmk::ShVar<std::uint32_t>::alloc(cluster);
  return w;
}

void init_bodies(const BhWorld& w, const BhConfig& cfg) {
  const std::vector<Body> init = plummer_bodies(cfg.bodies, cfg.seed);
  for (std::size_t i = 0; i < init.size(); ++i) {
    w.pos.store(i, init[i].pos);
    w.vel.store(i, init[i].vel);
    w.acc.store(i, init[i].acc);
    w.mass.store(i, init[i].mass);
    w.work.store(i, init[i].work);
  }
}

namespace {

/// Sequential section body: rebuild the oct-tree.  Reads every body;
/// rewrites the cell pool.  Deterministic, as replication requires.
void build_tree(const Ctx& ctx, const BhWorld& w, const BhConfig& cfg) {
  tmk::NodeRuntime& rt = ctx.rt;
  const std::size_t n = w.pos.size();

  // Bounding cube over all bodies (reads all particle pages -> these are
  // what gets multicast during replicated execution, Section 6.1.2).
  Vec3 lo{1e30, 1e30, 1e30};
  Vec3 hi{-1e30, -1e30, -1e30};
  for (std::size_t i = 0; i < n; ++i) {
    const Vec3 p = w.pos.load(i);
    lo = {std::min(lo.x, p.x), std::min(lo.y, p.y), std::min(lo.z, p.z)};
    hi = {std::max(hi.x, p.x), std::max(hi.y, p.y), std::max(hi.z, p.z)};
    rt.charge(sim::SimDuration{60});
  }
  const Vec3 center = (lo + hi) * 0.5;
  const double half =
      0.5 * std::max({hi.x - lo.x, hi.y - lo.y, hi.z - lo.z, 1e-6}) + 1e-6;

  // Reset the pool and allocate the root.
  auto alloc_cell = [&](const Vec3& c, double h) {
    const std::uint32_t idx = w.cell_count.load();
    REPSEQ_CHECK(idx < w.max_cells, "cell pool exhausted");
    w.cell_count.store(idx + 1);
    Cell fresh;
    fresh.center = c;
    fresh.half = h;
    w.cells.store(idx, fresh);
    return idx;
  };
  w.cell_count.store(0);
  const std::uint32_t root = alloc_cell(center, half);
  w.root.store(root);

  // Insert all bodies.
  for (std::uint32_t i = 0; i < n; ++i) {
    const Vec3 p = w.pos.load(static_cast<std::size_t>(i));
    std::uint32_t cur = root;
    int depth = 0;
    for (;;) {
      REPSEQ_CHECK(++depth < 80, "oct-tree degenerated (coincident bodies?)");
      rt.charge(cfg.cost_tree_insert);
      Cell cell = w.cells.get(cur);
      const int oct = octant(p, cell.center);
      const std::uint32_t c = cell.child[oct];
      if (c == kNullChild) {
        Cell upd = w.cells.get(cur);
        upd.child[oct] = kBodyTag | i;
        w.cells.store(cur, upd);
        break;
      }
      if (is_body_child(c)) {
        // Split: push the resident body one level down, then retry.
        const std::uint32_t other = body_index(c);
        const Vec3 po = w.pos.load(static_cast<std::size_t>(other));
        const std::uint32_t sub = alloc_cell(child_center(cell.center, cell.half, oct),
                                             cell.half / 2.0);
        Cell subc = w.cells.get(sub);
        subc.child[octant(po, subc.center)] = kBodyTag | other;
        w.cells.store(sub, subc);
        Cell upd = w.cells.get(cur);
        upd.child[oct] = sub;
        w.cells.store(cur, upd);
        continue;  // descend into `sub` on the next loop turn via `cur`
      }
      cur = c;
    }
  }

  // Bottom-up pass: centers of mass, total mass, subtree work (iterative
  // post-order; replicated stacks are private per node).
  struct Frame {
    std::uint32_t cell;
    int next_child;
  };
  std::vector<Frame> stack{{root, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    Cell cell = w.cells.get(f.cell);
    if (f.next_child < 8) {
      const std::uint32_t c = cell.child[f.next_child];
      ++f.next_child;
      if (c != kNullChild && !is_body_child(c)) {
        stack.push_back({c, 0});
      }
      continue;
    }
    // All children resolved: fold them.
    rt.charge(cfg.cost_com_cell);
    Vec3 com;
    double mass = 0;
    double work = 0;
    std::uint32_t count = 0;
    for (const std::uint32_t c : cell.child) {
      if (c == kNullChild) continue;
      if (is_body_child(c)) {
        const std::uint32_t b = body_index(c);
        const Vec3 bp = w.pos.load(b);
        const double bm = w.mass.load(b);
        com += bp * bm;
        mass += bm;
        work += w.work.load(b);
        ++count;
      } else {
        const Cell sub = w.cells.get(c);
        com += sub.com * sub.mass;
        mass += sub.mass;
        work += sub.work;
        count += sub.nbodies;
      }
    }
    cell.com = mass > 0 ? com * (1.0 / mass) : cell.center;
    cell.mass = mass;
    cell.work = work;
    cell.nbodies = count;
    w.cells.store(f.cell, cell);
    stack.pop_back();
  }
}

/// Collects this thread's bodies: Morton-order (child-index-order) DFS,
/// taking the bodies whose cumulative work falls in the thread's window.
std::vector<std::uint32_t> find_segment(const Ctx& ctx, const BhWorld& w, const BhConfig& cfg) {
  const std::uint32_t root = w.root.load();
  const Cell rootc = w.cells.get(root);
  const double total = rootc.work;
  const double wlo = total * ctx.tid / ctx.nthreads;
  const double whi = total * (ctx.tid + 1) / ctx.nthreads;

  std::vector<std::uint32_t> mine;
  double cum = 0;
  struct Frame {
    std::uint32_t cell;
    int next_child;
  };
  std::vector<Frame> stack{{root, 0}};
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_child >= 8) {
      stack.pop_back();
      continue;
    }
    ctx.rt.charge(cfg.cost_partition_step);
    const Cell cell = w.cells.get(f.cell);
    const std::uint32_t c = cell.child[f.next_child];
    ++f.next_child;
    if (c == kNullChild) continue;
    if (is_body_child(c)) {
      const std::uint32_t b = body_index(c);
      const double bw = w.work.load(b);
      // Assign the body to the window containing its midpoint.
      const double mid = cum + bw / 2.0;
      if (mid >= wlo && mid < whi) mine.push_back(b);
      cum += bw;
    } else {
      const Cell sub = w.cells.get(c);
      if (cum + sub.work <= wlo || cum >= whi) {
        cum += sub.work;  // disjoint subtree: skip wholesale
      } else {
        stack.push_back({c, 0});
      }
    }
  }
  return mine;
}

/// Barnes-Hut force on one body; returns interactions performed.
std::uint64_t force_on(const Ctx& ctx, const BhWorld& w, const BhConfig& cfg,
                       std::uint32_t bi, const Vec3& pos, Vec3& acc) {
  std::uint64_t interactions = 0;
  std::vector<std::uint32_t> stack{w.root.load()};
  const double inv_theta = 1.0 / cfg.theta;
  while (!stack.empty()) {
    const std::uint32_t ci = stack.back();
    stack.pop_back();
    const Cell cell = w.cells.get(ci);
    const Vec3 dr = cell.com - pos;
    const double d2 = dr.norm2();
    const double open = 2.0 * cell.half * inv_theta;
    if (open * open < d2) {
      // Far enough: one cell-body interaction with the center of mass.
      const double r2 = d2 + cfg.eps * cfg.eps;
      const double inv = 1.0 / (r2 * std::sqrt(r2));
      acc += dr * (cell.mass * inv);
      ++interactions;
      ctx.rt.charge(cfg.cost_interaction);
      continue;
    }
    for (const std::uint32_t c : cell.child) {
      if (c == kNullChild) continue;
      if (is_body_child(c)) {
        const std::uint32_t bj = body_index(c);
        if (bj == bi) continue;
        const Vec3 db = w.pos.load(bj) - pos;
        const double r2 = db.norm2() + cfg.eps * cfg.eps;
        const double inv = 1.0 / (r2 * std::sqrt(r2));
        acc += db * (w.mass.load(bj) * inv);
        ++interactions;
        ctx.rt.charge(cfg.cost_interaction);
      } else {
        stack.push_back(c);
      }
    }
  }
  return interactions;
}

}  // namespace

BhResult run_steps(tmk::Cluster& cluster, ompnow::Team& team, const BhWorld& w,
                   const BhConfig& cfg) {
  BhResult res;
  const sim::SimTime t0 = cluster.engine().now();
  std::vector<std::uint64_t> interactions(cluster.node_count(), 0);

  for (int step = 0; step < cfg.steps; ++step) {
    team.sequential(kSectionTreeBuild, [&](const Ctx& ctx) { build_tree(ctx, w, cfg); });

    team.parallel([&](const Ctx& ctx) {
      const std::vector<std::uint32_t> mine = find_segment(ctx, w, cfg);
      // Phase 1: evaluate forces against the *old* positions.  Only the
      // acceleration (and work) words are written, so concurrent readers of
      // positions on the same pages are unaffected (multiple-writer
      // protocol; release consistency hides these writes until the next
      // synchronization anyway).
      std::vector<Vec3> accs(mine.size());
      std::vector<double> works(mine.size());
      for (std::size_t k = 0; k < mine.size(); ++k) {
        const Vec3 pos = w.pos.load(mine[k]);
        Vec3 acc;
        const std::uint64_t inter = force_on(ctx, w, cfg, mine[k], pos, acc);
        accs[k] = acc;
        works[k] = static_cast<double>(inter);
        interactions[static_cast<std::size_t>(ctx.tid)] += inter;
      }
      // Phase 2 (after a barrier, as in SPLASH-2): integrate positions.
      // Velocities were last written by the body's previous owner, so these
      // loads are the residual point-to-point traffic of the optimized
      // system's parallel sections.
      ctx.barrier(kBhPhaseBarrier);
      for (std::size_t k = 0; k < mine.size(); ++k) {
        const std::uint32_t bi = mine[k];
        Vec3 v = w.vel.load(bi) + accs[k] * cfg.dt;
        w.acc.store(bi, accs[k]);
        w.vel.store(bi, v);
        w.pos.store(bi, w.pos.load(bi) + v * cfg.dt);
        w.work.store(bi, works[k]);
      }
    });
  }

  // Checksum on the master (counts as ordinary sequential execution).
  double checksum = 0;
  for (std::size_t i = 0; i < w.pos.size(); ++i) {
    const Vec3 p = w.pos.load(i);
    checksum += std::abs(p.x) + std::abs(p.y) + std::abs(p.z);
  }
  res.checksum = checksum;
  for (const auto v : interactions) res.interactions += v;
  res.total_time = cluster.engine().now() - t0;
  res.seq_time = team.sequential_time();
  res.par_time = team.parallel_time();
  return res;
}

}  // namespace repseq::apps::bh
