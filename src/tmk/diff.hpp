// Diffs: the multiple-writer protocol's unit of update propagation.
//
// A diff is the run-length encoding of the words that changed between a
// page's twin (copy taken at the first write) and its current contents
// (paper Section 2.2.2).  Applying a diff overwrites exactly those words,
// which is what lets concurrent writers to disjoint parts of a page merge
// without false-sharing ping-pong.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace repseq::tmk {

class Diff {
 public:
  /// One run of modified 32-bit words.
  struct Run {
    std::uint32_t word_index;            // offset within the page, in words
    std::vector<std::uint32_t> values;   // new values
  };

  /// Builds the diff `twin -> current`.  Both spans must be the same size,
  /// a multiple of 4 bytes.
  static Diff create(std::span<const std::byte> twin, std::span<const std::byte> current);

  /// Overwrites the runs into `page`.
  void apply(std::span<std::byte> page) const;

  [[nodiscard]] bool empty() const { return runs_.empty(); }
  [[nodiscard]] const std::vector<Run>& runs() const { return runs_; }

  /// Number of words carried.
  [[nodiscard]] std::size_t word_count() const;

  /// Encoded size on the wire: per-run header (index + length, 8 bytes)
  /// plus 4 bytes per word, plus a fixed page/interval header.
  [[nodiscard]] std::size_t wire_bytes() const;

 private:
  std::vector<Run> runs_;
};

using DiffPtr = std::shared_ptr<const Diff>;

}  // namespace repseq::tmk
