// Pooled reference-counted payload blocks.
//
// The simulator is single-threaded, so std::shared_ptr pays for two things
// the hot paths never need: atomic reference counts (a locked RMW per copy,
// and multicast delivery copies the payload handle once per receiver -- an
// N-1 refcount storm at 1024 nodes) and a heap allocation per control
// block.  PoolPtr replaces both: a plain 32-bit count living in a header
// directly in front of the object, and size-bucketed free lists that recycle
// whole blocks, so steady-state message traffic allocates nothing.
//
// Layout:   [PoolBlockHeader | object storage]
// The header sits at a fixed offset before the object, so a typed
// PoolPtr<const P> can decay to the type-erased PoolPtr<const void> carried
// by net::Message without losing the count or the destructor thunk.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace repseq::util {

namespace pool_detail {

struct BlockHeader {
  std::uint32_t refs;
  std::uint32_t bucket;        // size-class index; kUnpooled => plain delete
  void (*destroy)(void* obj);  // destructor thunk for the typed object
};

inline constexpr std::uint32_t kUnpooled = 0xffffffffu;
inline constexpr std::size_t kHeaderBytes =
    (sizeof(BlockHeader) + alignof(std::max_align_t) - 1) &
    ~(alignof(std::max_align_t) - 1);
// Size classes: 32 << i bytes of object storage, i in [0, kBuckets).
inline constexpr std::size_t kMinBucketBytes = 32;
inline constexpr std::size_t kBuckets = 10;  // up to 16 KB pooled

inline std::uint32_t bucket_for(std::size_t bytes) {
  std::size_t cap = kMinBucketBytes;
  for (std::uint32_t b = 0; b < kBuckets; ++b, cap <<= 1) {
    if (bytes <= cap) return b;
  }
  return kUnpooled;
}

inline std::vector<void*>& free_list(std::uint32_t bucket) {
  thread_local std::vector<void*> lists[kBuckets];
  return lists[bucket];
}

/// Returns a block with room for `bytes` of object storage; the header is
/// uninitialized.  Blocks come from the matching free list when available.
inline void* acquire_block(std::size_t bytes, std::uint32_t& bucket_out) {
  const std::uint32_t b = bucket_for(bytes);
  bucket_out = b;
  if (b != kUnpooled) {
    auto& fl = free_list(b);
    if (!fl.empty()) {
      void* blk = fl.back();
      fl.pop_back();
      return blk;
    }
    return ::operator new(kHeaderBytes + (kMinBucketBytes << b),
                          std::align_val_t{alignof(std::max_align_t)});
  }
  return ::operator new(kHeaderBytes + bytes,
                        std::align_val_t{alignof(std::max_align_t)});
}

inline void release_block(void* blk, std::uint32_t bucket) {
  if (bucket != kUnpooled) {
    free_list(bucket).push_back(blk);
  } else {
    ::operator delete(blk, std::align_val_t{alignof(std::max_align_t)});
  }
}

inline BlockHeader* header_of(const void* obj) {
  return reinterpret_cast<BlockHeader*>(
      reinterpret_cast<char*>(const_cast<void*>(obj)) -
      static_cast<std::ptrdiff_t>(kHeaderBytes));
}

}  // namespace pool_detail

/// Non-atomic, pool-backed shared pointer.  Copying bumps a plain counter;
/// the last owner runs the destructor thunk and recycles the block.  NOT
/// thread-safe -- the simulator is single-threaded by construction.
template <typename T>
class PoolPtr {
 public:
  PoolPtr() = default;
  PoolPtr(std::nullptr_t) {}  // NOLINT: shared_ptr-style ergonomics

  PoolPtr(const PoolPtr& o) : obj_(o.obj_) { retain(); }
  PoolPtr(PoolPtr&& o) noexcept : obj_(o.obj_) { o.obj_ = nullptr; }

  /// Typed -> type-erased (or derived -> base) conversion; the header
  /// offset is fixed, so the count and destructor thunk survive erasure.
  template <typename U, typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  PoolPtr(const PoolPtr<U>& o) : obj_(o.get()) {  // NOLINT: converting ctor
    retain();
  }
  template <typename U, typename = std::enable_if_t<std::is_convertible_v<U*, T*>>>
  PoolPtr(PoolPtr<U>&& o) noexcept : obj_(o.get()) {  // NOLINT: converting ctor
    o.detach();
  }

  PoolPtr& operator=(const PoolPtr& o) {
    if (this != &o) {
      release();
      obj_ = o.obj_;
      retain();
    }
    return *this;
  }
  PoolPtr& operator=(PoolPtr&& o) noexcept {
    if (this != &o) {
      release();
      obj_ = o.obj_;
      o.obj_ = nullptr;
    }
    return *this;
  }
  PoolPtr& operator=(std::nullptr_t) {
    release();
    obj_ = nullptr;
    return *this;
  }

  ~PoolPtr() { release(); }

  [[nodiscard]] T* get() const { return obj_; }
  [[nodiscard]] T* operator->() const { return obj_; }
  template <typename V = T, typename = std::enable_if_t<!std::is_void_v<V>>>
  [[nodiscard]] V& operator*() const {
    return *obj_;
  }
  [[nodiscard]] explicit operator bool() const { return obj_ != nullptr; }
  [[nodiscard]] bool operator==(std::nullptr_t) const { return obj_ == nullptr; }
  [[nodiscard]] bool operator!=(std::nullptr_t) const { return obj_ != nullptr; }
  template <typename U>
  [[nodiscard]] bool operator==(const PoolPtr<U>& o) const {
    return static_cast<const void*>(obj_) == static_cast<const void*>(o.get());
  }
  template <typename U>
  [[nodiscard]] bool operator!=(const PoolPtr<U>& o) const {
    return !(*this == o);
  }

  /// Releases ownership without touching the count (used by converting
  /// moves; public because PoolPtr<U> is a distinct type).
  void detach() { obj_ = nullptr; }

  /// Adopts `obj`, which must be block storage with a live header whose
  /// count already includes this reference (used by make_pooled).
  static PoolPtr adopt(T* obj) {
    PoolPtr p;
    p.obj_ = obj;
    return p;
  }

 private:
  void retain() {
    if (obj_ != nullptr) ++pool_detail::header_of(obj_)->refs;
  }
  void release() {
    if (obj_ == nullptr) return;
    pool_detail::BlockHeader* h = pool_detail::header_of(obj_);
    if (--h->refs == 0) {
      const std::uint32_t bucket = h->bucket;
      h->destroy(const_cast<void*>(static_cast<const void*>(obj_)));
      pool_detail::release_block(h, bucket);
    }
  }

  T* obj_ = nullptr;
};

/// Constructs a T in a pooled block and returns an owning PoolPtr<T>
/// (implicitly convertible to PoolPtr<const T> / PoolPtr<const void>).
template <typename T, typename... Args>
PoolPtr<T> make_pooled(Args&&... args) {
  static_assert(alignof(T) <= alignof(std::max_align_t),
                "over-aligned payloads are not supported by the block pool");
  std::uint32_t bucket = 0;
  void* blk = pool_detail::acquire_block(sizeof(T), bucket);
  auto* h = static_cast<pool_detail::BlockHeader*>(blk);
  void* storage = static_cast<char*>(blk) + pool_detail::kHeaderBytes;
  T* obj;
  try {
    obj = ::new (storage) T(std::forward<Args>(args)...);
  } catch (...) {
    pool_detail::release_block(blk, bucket);
    throw;
  }
  h->refs = 1;
  h->bucket = bucket;
  h->destroy = [](void* p) { static_cast<T*>(p)->~T(); };
  return PoolPtr<T>::adopt(obj);
}

}  // namespace repseq::util
