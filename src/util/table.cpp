#include "util/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace repseq::util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  REPSEQ_CHECK(!headers_.empty(), "table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  REPSEQ_CHECK(cells.size() <= headers_.size(), "row wider than header");
  cells.resize(headers_.size());
  rows_.push_back(Row{std::move(cells), false});
}

void Table::add_rule() { rows_.push_back(Row{{}, true}); }

std::string Table::render() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const Row& r : rows_) {
    if (r.rule) continue;
    for (std::size_t c = 0; c < r.cells.size(); ++c)
      widths[c] = std::max(widths[c], r.cells[c].size());
  }

  std::ostringstream out;
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      out << '+' << std::string(widths[c] + 2, '-');
    }
    out << "+\n";
  };
  auto emit_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& s = c < cells.size() ? cells[c] : std::string{};
      out << "| ";
      if (c == 0) {  // label column: left aligned
        out << s << std::string(widths[c] - s.size(), ' ');
      } else {  // value columns: right aligned
        out << std::string(widths[c] - s.size(), ' ') << s;
      }
      out << ' ';
    }
    out << "|\n";
  };

  emit_rule();
  emit_cells(headers_);
  emit_rule();
  for (const Row& r : rows_) {
    if (r.rule) {
      emit_rule();
    } else {
      emit_cells(r.cells);
    }
  }
  emit_rule();
  return out.str();
}

std::string fmt_fixed(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", digits, v);
  return buf;
}

std::string fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  out.reserve(digits.size() + digits.size() / 3);
  std::size_t lead = digits.size() % 3 == 0 ? 3 : digits.size() % 3;
  for (std::size_t i = 0; i < digits.size(); ++i) {
    if (i != 0 && (i + 3 - lead) % 3 == 0) out.push_back(',');
    out.push_back(digits[i]);
  }
  return out;
}

std::string fmt_pct_change(double base, double improved) {
  if (base == 0.0) return "n/a";
  const double pct = (improved - base) / base * 100.0;
  char buf[64];
  std::snprintf(buf, sizeof buf, "%+.0f%%", pct);
  return buf;
}

}  // namespace repseq::util
