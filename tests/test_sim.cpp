#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "sim/channel.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "sim/rng.hpp"

namespace repseq::sim {
namespace {

TEST(Fiber, RunsToCompletionAcrossYields) {
  std::vector<int> order;
  Fiber f("t", [&] {
    order.push_back(1);
    Fiber::yield();
    order.push_back(3);
  });
  f.resume();
  order.push_back(2);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Fiber, CurrentTracksExecution) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f("t", [&] { seen = Fiber::current(); });
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, ExceptionPropagatesOnReap) {
  Fiber f("t", [] { throw std::runtime_error("boom"); });
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_THROW(f.rethrow_if_failed(), std::runtime_error);
}

TEST(EventQueue, OrdersByTimeThenSequence) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(SimTime{10}, [&] { fired.push_back(1); });
  q.schedule(SimTime{5}, [&] { fired.push_back(2); });
  q.schedule(SimTime{10}, [&] { fired.push_back(3); });
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{2, 1, 3}));
}

TEST(EventQueue, CancelSkipsEntry) {
  EventQueue q;
  std::vector<int> fired;
  auto h = q.schedule(SimTime{1}, [&] { fired.push_back(1); });
  q.schedule(SimTime{2}, [&] { fired.push_back(2); });
  q.cancel(h);
  EXPECT_EQ(q.live_count(), 1u);
  EXPECT_EQ(q.next_time(), SimTime{2});
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, (std::vector<int>{2}));
}

TEST(EventQueue, CancelledHeadNeverObservedThenPopped) {
  // Cancel the event sitting at the heap head: empty()/next_time() must not
  // see it, and the subsequent pop must surface the live successor.
  EventQueue q;
  std::vector<int> fired;
  auto head = q.schedule(SimTime{1}, [&] { fired.push_back(1); });
  q.schedule(SimTime{5}, [&] { fired.push_back(2); });
  q.cancel(head);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.next_time(), SimTime{5});
  auto popped = q.pop();
  EXPECT_EQ(popped.time, SimTime{5});
  popped.fn();
  EXPECT_EQ(fired, (std::vector<int>{2}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, CancelTwiceAtHeapHeadIsIdempotent) {
  EventQueue q;
  int fired = 0;
  auto h = q.schedule(SimTime{1}, [&] { ++fired; });
  q.schedule(SimTime{2}, [&] { ++fired; });
  q.cancel(h);
  q.cancel(h);  // second cancel must not disturb live accounting
  EXPECT_EQ(q.live_count(), 1u);
  while (!q.empty()) q.pop().fn();
  EXPECT_EQ(fired, 1);
  q.cancel(h);  // and a cancel after everything drained is still inert
  EXPECT_EQ(q.live_count(), 0u);
}

TEST(EventQueue, CancelAfterPopIsInertDespiteSlotReuse) {
  // A handle whose event already ran must stay dead even after its pooled
  // slot has been recycled for a newer event (generation counting).
  EventQueue q;
  int fired = 0;
  auto h = q.schedule(SimTime{1}, [&] { ++fired; });
  q.pop().fn();
  auto h2 = q.schedule(SimTime{2}, [&] { fired += 10; });  // reuses the slot
  q.cancel(h);                                             // stale: must be a no-op
  EXPECT_EQ(q.live_count(), 1u);
  EXPECT_EQ(q.next_time(), SimTime{2});
  q.pop().fn();
  EXPECT_EQ(fired, 11);
  (void)h2;
}

TEST(EventQueue, CancelWholeQueueLeavesItEmpty) {
  EventQueue q;
  std::vector<EventQueue::Handle> hs;
  hs.reserve(10);
  for (int i = 0; i < 10; ++i) {
    hs.push_back(q.schedule(SimTime{i}, [] {}));
  }
  for (auto& h : hs) q.cancel(h);
  EXPECT_EQ(q.live_count(), 0u);
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.peak_live(), 10u);
}

TEST(EventQueue, BinaryAndQuadHeapsPopIdentically) {
  // The (time, seq) order is total, so the pop sequence must not depend on
  // the heap arity.  Interleaved schedule/cancel/pop on both structures.
  EventQueue bin(2);
  EventQueue quad(4);
  std::vector<int> fired_bin;
  std::vector<int> fired_quad;
  auto drive = [](EventQueue& q, std::vector<int>& fired) {
    std::vector<EventQueue::Handle> hs;
    for (int i = 0; i < 100; ++i) {
      const auto t = SimTime{(i * 37) % 50};  // heavy timestamp collisions
      hs.push_back(q.schedule(t, [&fired, i] { fired.push_back(i); }));
    }
    for (int i = 0; i < 100; i += 7) q.cancel(hs[static_cast<std::size_t>(i)]);
    while (!q.empty()) q.pop().fn();
  };
  drive(bin, fired_bin);
  drive(quad, fired_quad);
  EXPECT_EQ(fired_bin, fired_quad);
}

TEST(Engine, VirtualTimeAdvancesThroughSleeps) {
  Engine eng;
  std::vector<std::int64_t> wakes;
  eng.spawn("a", [&] {
    eng.sleep_for(microseconds(10));
    wakes.push_back(eng.now().ns);
    eng.sleep_for(microseconds(5));
    wakes.push_back(eng.now().ns);
  });
  eng.run();
  EXPECT_EQ(wakes, (std::vector<std::int64_t>{10'000, 15'000}));
}

TEST(Engine, FibersInterleaveDeterministically) {
  Engine eng;
  std::vector<std::string> log;
  eng.spawn("a", [&] {
    for (int i = 0; i < 3; ++i) {
      eng.sleep_for(microseconds(10));
      log.push_back("a" + std::to_string(i));
    }
  });
  eng.spawn("b", [&] {
    for (int i = 0; i < 3; ++i) {
      eng.sleep_for(microseconds(15));
      log.push_back("b" + std::to_string(i));
    }
  });
  eng.run();
  // Wakes at a:10,20,30 and b:15,30,45.  The t=30 tie goes to b1: its event
  // was scheduled at t=15, before a2's at t=20 (FIFO tie-break by sequence).
  EXPECT_EQ(log, (std::vector<std::string>{"a0", "b0", "a1", "b1", "a2", "b2"}));
}

TEST(Engine, ParkUnparkRoundTrip) {
  Engine eng;
  bool woke = false;
  FiberRef sleeper = eng.spawn("sleeper", [&] {
    eng.park();
    woke = true;
  });
  eng.spawn("waker", [&] {
    eng.sleep_for(microseconds(1));
    eng.unpark(sleeper);
  });
  eng.run();
  EXPECT_TRUE(woke);
}

TEST(Engine, ExceptionInFiberEscapesRun) {
  Engine eng;
  eng.spawn("bad", [] { throw std::logic_error("fiber failure"); });
  EXPECT_THROW(eng.run(), std::logic_error);
}

TEST(WaitToken, TimeoutFiresWhenNotSignalled) {
  Engine eng;
  bool signalled = true;
  eng.spawn("t", [&] {
    WaitToken tok(eng);
    signalled = tok.wait(microseconds(50));
  });
  eng.run();
  EXPECT_FALSE(signalled);
  EXPECT_EQ(eng.now(), SimTime{} + microseconds(50));
}

TEST(Channel, FifoAcrossFibers) {
  Engine eng;
  Channel<int> ch(eng);
  std::vector<int> got;
  eng.spawn("consumer", [&] {
    for (int i = 0; i < 3; ++i) got.push_back(ch.pop());
  });
  eng.spawn("producer", [&] {
    for (int i = 0; i < 3; ++i) {
      eng.sleep_for(microseconds(5));
      ch.push(i);
    }
  });
  eng.run();
  EXPECT_EQ(got, (std::vector<int>{0, 1, 2}));
}

TEST(Channel, PopWithTimeoutExpires) {
  Engine eng;
  Channel<int> ch(eng);
  std::optional<int> got = 42;
  eng.spawn("consumer", [&] { got = ch.pop_with_timeout(microseconds(10)); });
  eng.run();
  EXPECT_FALSE(got.has_value());
}

TEST(Channel, PopWithTimeoutReceivesValueInTime) {
  Engine eng;
  Channel<int> ch(eng);
  std::optional<int> got;
  eng.spawn("consumer", [&] { got = ch.pop_with_timeout(microseconds(100)); });
  eng.spawn("producer", [&] {
    eng.sleep_for(microseconds(10));
    ch.push(7);
  });
  eng.run();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, 7);
}

TEST(Cpu, UncontestedComputeTakesExactTime) {
  Engine eng;
  Cpu cpu(eng, microseconds(50));
  eng.spawn("app", [&] { cpu.compute(microseconds(100)); });
  eng.run();
  EXPECT_EQ(eng.now(), SimTime{} + microseconds(100));
  EXPECT_EQ(cpu.busy_time(), microseconds(100));
}

TEST(Cpu, ServicePreemptsAndExtendsCompute) {
  Engine eng;
  Cpu cpu(eng, microseconds(50));
  SimTime app_done{};
  SimTime svc_done{};
  eng.spawn("app", [&] {
    cpu.compute(microseconds(100));
    app_done = eng.now();
  });
  eng.spawn("server", [&] {
    eng.sleep_for(microseconds(30));
    cpu.service(microseconds(40));
    svc_done = eng.now();
  });
  eng.run();
  // App computed 30us, was preempted for 40us of service, then finished the
  // remaining 70us: total 140us.
  EXPECT_EQ(svc_done, SimTime{} + microseconds(70));
  EXPECT_EQ(app_done, SimTime{} + microseconds(140));
  EXPECT_EQ(cpu.busy_time(), microseconds(100));
  EXPECT_EQ(cpu.service_time(), microseconds(40));
}

TEST(Cpu, BackToBackServicesQueueDelay) {
  Engine eng;
  Cpu cpu(eng, microseconds(50));
  std::vector<std::int64_t> done;
  eng.spawn("server", [&] {
    for (int i = 0; i < 3; ++i) {
      cpu.service(microseconds(10));
      done.push_back(eng.now().ns);
    }
  });
  eng.run();
  EXPECT_EQ(done, (std::vector<std::int64_t>{10'000, 20'000, 30'000}));
}

TEST(Cpu, AccrueFlushesAtQuantum) {
  Engine eng;
  Cpu cpu(eng, microseconds(10));
  eng.spawn("app", [&] {
    for (int i = 0; i < 100; ++i) cpu.accrue(microseconds(1));
    cpu.flush();
  });
  eng.run();
  EXPECT_EQ(eng.now(), SimTime{} + microseconds(100));
  EXPECT_EQ(cpu.busy_time(), microseconds(100));
}

TEST(Rng, DeterministicAcrossInstances) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, ChanceRespectsProbabilityRoughly) {
  Rng r(7);
  int hits = 0;
  constexpr int kTrials = 100000;
  for (int i = 0; i < kTrials; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kTrials, 0.25, 0.01);
}

TEST(Rng, SplitStreamsDiverge) {
  Rng a(99);
  Rng b = a.split();
  bool any_diff = false;
  for (int i = 0; i < 10; ++i) any_diff |= a.next_u64() != b.next_u64();
  EXPECT_TRUE(any_diff);
}

}  // namespace
}  // namespace repseq::sim
