// Cooperative fibers: one per simulated cluster node (plus one per request
// server).  The discrete-event engine is the only scheduler -- a fiber runs
// until it yields, so the simulation is single-threaded and deterministic.
//
// Context switching: on x86-64 Linux a hand-rolled userspace switch saves
// only the SysV callee-saved registers (~30ns); POSIX ucontext is kept as
// the portable fallback and under AddressSanitizer, whose fake-stack
// machinery only understands swapcontext.  swapcontext costs two
// rt_sigprocmask syscalls per switch, which dominated simulator sys time at
// 256+ nodes before the userspace path existed.
//
// Exceptions thrown inside a fiber are captured and rethrown on the
// engine's context when the fiber is reaped.
#pragma once

#if defined(__has_feature)
#define REPSEQ_HAS_FEATURE(x) __has_feature(x)
#else
#define REPSEQ_HAS_FEATURE(x) 0
#endif

#if defined(__x86_64__) && defined(__linux__) && !defined(__SANITIZE_ADDRESS__) && \
    !REPSEQ_HAS_FEATURE(address_sanitizer)
#define REPSEQ_FIBER_FAST_SWITCH 1
#else
#define REPSEQ_FIBER_FAST_SWITCH 0
#include <ucontext.h>
#endif

// ThreadSanitizer tracks a shadow stack per thread; userspace context
// switches (either variant) would corrupt it and report every fiber-to-fiber
// data flow as a race.  The __tsan_*_fiber annotations tell it about each
// switch, so TSan runs see the simulator's fibers as what they are: one
// thread, many stacks.  The fast switch stays enabled under TSan -- unlike
// ASan's fake-stack machinery, TSan only needs the annotations.
#if defined(__SANITIZE_THREAD__) || REPSEQ_HAS_FEATURE(thread_sanitizer)
#define REPSEQ_FIBER_TSAN 1
#include <sanitizer/tsan_interface.h>
#else
#define REPSEQ_FIBER_TSAN 0
#endif

#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace repseq::sim {

class Fiber {
 public:
  using Fn = std::function<void()>;

  static constexpr std::size_t kDefaultStackBytes = 512 * 1024;

  Fiber(std::string name, Fn fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the engine context into this fiber.  Returns when the
  /// fiber yields or finishes.  Must not be called from inside a fiber.
  void resume();

  /// Switches from the current fiber back to the engine.  Must be called
  /// from inside a fiber.
  static void yield();

  /// The fiber currently executing, or nullptr when on the engine context.
  static Fiber* current();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Fiber-local storage slot: the DSM layer hangs the owning node's
  /// runtime here so application code can find "its" node without plumbing
  /// a context parameter through every call.
  void set_user_data(void* p) { user_data_ = p; }
  [[nodiscard]] void* user_data() const { return user_data_; }

  /// Perfetto process this fiber's trace events belong to (node id + 1; 0 =
  /// the cluster-global process).  Set alongside user_data by the DSM layer;
  /// kept separate because the engine cannot interpret user_data.
  void set_trace_pid(std::int32_t pid) { trace_pid_ = pid; }
  [[nodiscard]] std::int32_t trace_pid() const { return trace_pid_; }

  /// Rethrows the exception (if any) that escaped the fiber body.
  void rethrow_if_failed();

 private:
#if REPSEQ_FIBER_FAST_SWITCH
  friend void fiber_trampoline(Fiber*);
  /// Lays out the initial frame so the first switch "returns" into the
  /// trampoline with this fiber as its argument.
  void init_context();

  void* switch_sp_ = nullptr;  // saved stack pointer while suspended
  void* return_sp_ = nullptr;  // engine-side stack pointer while running
#else
  static void trampoline();

  ucontext_t context_{};
  ucontext_t return_context_{};
#endif
#if REPSEQ_FIBER_TSAN
  void* tsan_fiber_ = nullptr;         // TSan's per-fiber shadow state
  void* tsan_return_fiber_ = nullptr;  // the context resume() switched from
#endif

  std::string name_;
  Fn fn_;
  // Uninitialized on purpose: a zero-filled std::vector would touch (and
  // memset) every stack page up front, which at 1024 nodes x 512KB is real
  // startup cost; malloc leaves large blocks as lazily-mapped zero pages.
  std::unique_ptr<char[]> stack_;
  std::size_t stack_bytes_;
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr failure_{};
  void* user_data_ = nullptr;
  std::int32_t trace_pid_ = 0;
};

}  // namespace repseq::sim
