// The fan-out strawman: "multicast" as one switched unicast per destination.
// All N-1 frames serialize back-to-back on the source uplink, which is
// exactly the contention the paper's hub multicast avoids -- this backend
// exists to make that cost measurable (ablation_broadcast_all).
#pragma once

#include "net/transport.hpp"

namespace repseq::net {

class DirectAllTransport final : public SwitchedTransport {
 public:
  DirectAllTransport(sim::Engine& eng, const NetConfig& cfg,
                     std::vector<std::unique_ptr<Nic>>& nics)
      : SwitchedTransport(eng, cfg, nics) {}

  void multicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
                 const AccountFn& account) override;

  /// The source transmits every fan-out frame itself.
  [[nodiscard]] std::size_t sender_frames(std::size_t receivers) const override {
    return receivers;
  }
};

}  // namespace repseq::net
