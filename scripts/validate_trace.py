#!/usr/bin/env python3
"""Validates a Chrome trace-event JSON file emitted by obs::Tracer.

Checks:
  * the file is well-formed JSON with a traceEvents array
  * every event carries the required fields for its phase
  * timestamps are monotone non-decreasing in file order (the writer sorts
    by virtual time, so any inversion is a tracer bug)
  * span (B/E) events nest properly per (pid, tid) track: every E matches
    the innermost open B by name, and no track ends with an open span
  * optionally (--expect-cats) that named categories actually appear, and
    (--expect-name) that specific event names appear -- used by CI to pin
    "spans from all four layers including policy decisions"

Exit codes: 0 clean, 1 validation failure, 2 usage/IO error.
"""

import argparse
import collections
import json
import sys


def fail(msg):
    print(f"validate_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("trace", help="trace JSON file to validate")
    ap.add_argument(
        "--expect-cats",
        default="",
        help="comma-separated categories that must appear (e.g. sim,net,tmk,rse)",
    )
    ap.add_argument(
        "--expect-name",
        action="append",
        default=[],
        help="event name that must appear (repeatable)",
    )
    args = ap.parse_args()

    try:
        with open(args.trace, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except OSError as e:
        print(f"validate_trace: cannot read {args.trace}: {e}", file=sys.stderr)
        sys.exit(2)
    except json.JSONDecodeError as e:
        fail(f"not well-formed JSON: {e}")

    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail("top-level 'traceEvents' array missing")

    stacks = collections.defaultdict(list)  # (pid, tid) -> [names of open B]
    cats_seen = set()
    names_seen = set()
    counts = collections.Counter()
    last_ts = None
    spans = 0

    for i, ev in enumerate(events):
        if not isinstance(ev, dict):
            fail(f"event #{i} is not an object")
        ph = ev.get("ph")
        if ph is None:
            fail(f"event #{i} has no phase")
        counts[ph] += 1
        if ph == "M":
            continue  # metadata carries no timestamp

        for field in ("ts", "pid", "tid", "name"):
            if field not in ev:
                fail(f"event #{i} ({ph!r}) missing '{field}'")
        ts = ev["ts"]
        if not isinstance(ts, (int, float)):
            fail(f"event #{i} has non-numeric ts {ts!r}")
        if last_ts is not None and ts < last_ts:
            fail(f"event #{i} ts {ts} < previous ts {last_ts} (not monotone)")
        last_ts = ts

        cats_seen.update(str(ev.get("cat", "")).split(","))
        names_seen.add(ev["name"])
        track = (ev["pid"], ev["tid"])
        if ph == "B":
            stacks[track].append(ev["name"])
            spans += 1
        elif ph == "E":
            if not stacks[track]:
                fail(f"event #{i}: 'E' ({ev['name']!r}) on track {track} with no open span")
            opened = stacks[track].pop()
            if opened != ev["name"]:
                fail(
                    f"event #{i}: 'E' named {ev['name']!r} closes span opened as"
                    f" {opened!r} on track {track} (improper nesting)"
                )
        elif ph in ("i", "I"):
            pass
        elif ph == "C":
            pass
        else:
            fail(f"event #{i} has unsupported phase {ph!r}")

    for track, stack in stacks.items():
        if stack:
            fail(f"track {track} ends with open span(s): {stack}")

    if args.expect_cats:
        missing = {c for c in args.expect_cats.split(",") if c} - cats_seen
        if missing:
            fail(f"expected categories never appeared: {sorted(missing)}")
    for name in args.expect_name:
        if name not in names_seen:
            fail(f"expected event name never appeared: {name!r}")

    print(
        f"validate_trace: OK: {len(events)} events"
        f" ({spans} spans, {counts['i'] + counts['I']} instants,"
        f" {counts['C']} counter samples, {counts['M']} metadata)"
        f" across {len(stacks)} tracks; categories: {sorted(c for c in cats_seen if c)}"
    )


if __name__ == "__main__":
    main()
