// Cooperative fibers: one per simulated cluster node (plus one per request
// server).  The discrete-event engine is the only scheduler -- a fiber runs
// until it yields, so the simulation is single-threaded and deterministic.
//
// Implementation uses POSIX ucontext.  Exceptions thrown inside a fiber are
// captured and rethrown on the engine's context when the fiber is reaped.
#pragma once

#include <ucontext.h>

#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace repseq::sim {

class Fiber {
 public:
  using Fn = std::function<void()>;

  static constexpr std::size_t kDefaultStackBytes = 512 * 1024;

  Fiber(std::string name, Fn fn, std::size_t stack_bytes = kDefaultStackBytes);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Switches from the engine context into this fiber.  Returns when the
  /// fiber yields or finishes.  Must not be called from inside a fiber.
  void resume();

  /// Switches from the current fiber back to the engine.  Must be called
  /// from inside a fiber.
  static void yield();

  /// The fiber currently executing, or nullptr when on the engine context.
  static Fiber* current();

  [[nodiscard]] bool finished() const { return finished_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Fiber-local storage slot: the DSM layer hangs the owning node's
  /// runtime here so application code can find "its" node without plumbing
  /// a context parameter through every call.
  void set_user_data(void* p) { user_data_ = p; }
  [[nodiscard]] void* user_data() const { return user_data_; }

  /// Rethrows the exception (if any) that escaped the fiber body.
  void rethrow_if_failed();

 private:
  static void trampoline();

  std::string name_;
  Fn fn_;
  std::vector<char> stack_;
  ucontext_t context_{};
  ucontext_t return_context_{};
  bool started_ = false;
  bool finished_ = false;
  std::exception_ptr failure_{};
  void* user_data_ = nullptr;
};

}  // namespace repseq::sim
