#include "obs/registry.hpp"

#include <algorithm>
#include <set>

namespace repseq::obs {

Registry::Key Registry::make_key(const std::string& name, Labels labels) {
  std::sort(labels.begin(), labels.end());
  return {name, std::move(labels)};
}

Counter& Registry::counter(const std::string& name, Labels labels) {
  return counters_[make_key(name, std::move(labels))];
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  return gauges_[make_key(name, std::move(labels))];
}

Histogram& Registry::histogram(const std::string& name, Labels labels) {
  return histograms_[make_key(name, std::move(labels))];
}

std::vector<Registry::Series> Registry::snapshot() const {
  std::vector<Series> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [key, c] : counters_) {
    out.push_back({key.first, key.second, Series::Kind::Counter, c.value(), 0.0, nullptr});
  }
  for (const auto& [key, g] : gauges_) {
    out.push_back({key.first, key.second, Series::Kind::Gauge, 0, g.value(), nullptr});
  }
  for (const auto& [key, h] : histograms_) {
    out.push_back({key.first, key.second, Series::Kind::Histogram, 0, 0.0, &h.accum()});
  }
  std::sort(out.begin(), out.end(), [](const Series& a, const Series& b) {
    return a.name != b.name ? a.name < b.name : a.labels < b.labels;
  });
  return out;
}

std::uint64_t Registry::counter_value(const std::string& name, Labels labels) const {
  const auto it = counters_.find(make_key(name, std::move(labels)));
  return it == counters_.end() ? 0 : it->second.value();
}

double Registry::gauge_value(const std::string& name, Labels labels) const {
  const auto it = gauges_.find(make_key(name, std::move(labels)));
  return it == gauges_.end() ? 0.0 : it->second.value();
}

std::vector<std::string> Registry::label_values(const std::string& name,
                                                const std::string& label) const {
  std::set<std::string> values;
  const auto scan = [&](const auto& series) {
    for (const auto& [key, unused] : series) {
      if (key.first != name) continue;
      for (const auto& [k, v] : key.second) {
        if (k == label) values.insert(v);
      }
    }
  };
  scan(counters_);
  scan(gauges_);
  scan(histograms_);
  return {values.begin(), values.end()};
}

}  // namespace repseq::obs
