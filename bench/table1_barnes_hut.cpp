// Regenerates paper Table 1: Barnes-Hut execution times on 32 nodes.
//
// Three runs: the sequential program on one node, the base ("Original")
// OpenMP/TreadMarks system, and the system with replicated sequential
// execution ("Optimized").  The workload is scaled down from the paper's
// 131072 bodies (see EXPERIMENTS.md); the shape to check is:
//   * optimized total < original total;
//   * optimized sequential-section time > original (replication overhead);
//   * optimized parallel-section time substantially < original.
#include "bench_common.hpp"

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  using apps::harness::Mode;

  const auto cfg = bh_config();
  print_header("Table 1: Barnes-Hut execution times",
               "PPoPP'01 Table 1 (131072 bodies, 2 steps, 32 nodes)",
               (std::string("this run: ") + std::to_string(cfg.bodies) + " bodies, " +
                std::to_string(cfg.steps) + " steps, " + std::to_string(bench_nodes()) +
                " nodes (simulated)")
                   .c_str());

  const auto seq = apps::harness::run_barnes_hut(options_for(Mode::Sequential), cfg);
  const auto orig = apps::harness::run_barnes_hut(options_for(Mode::Original), cfg);
  const auto opt = apps::harness::run_barnes_hut(options_for(Mode::Optimized), cfg);

  if (seq.checksum != orig.checksum || seq.checksum != opt.checksum) {
    std::printf("ERROR: result checksums diverge across modes\n");
    return 1;
  }

  util::Table t({"", "Sequential", "Original", "Optimized", "paper Seq", "paper Orig",
                 "paper Opt"});
  t.add_row({"Total time (sec.)", fmt1(seq.total_s), fmt1(orig.total_s), fmt1(opt.total_s),
             "359.4", "53.6", "35.5"});
  t.add_row({"Total Speedup", "N/A", fmt1(seq.total_s / orig.total_s),
             fmt1(seq.total_s / opt.total_s), "N/A", "6.7", "10.1"});
  t.add_row({"Sequential time (sec.)", fmt1(seq.seq_s), fmt1(orig.seq_s), fmt1(opt.seq_s),
             "1.4", "3.2", "14.4"});
  t.add_row({"Parallel time (sec.)", fmt1(seq.par_s), fmt1(orig.par_s), fmt1(opt.par_s),
             "358.0", "50.4", "21.1"});
  t.add_row({"Parallel speedup", "N/A", fmt1(seq.par_s / orig.par_s),
             fmt1(seq.par_s / opt.par_s), "N/A", "7.1", "17.0"});
  std::printf("%s", t.render().c_str());

  std::printf("\nShape checks:\n");
  std::printf("  optimized beats original overall: %s (%.1fs vs %.1fs; paper +51%%, here %s)\n",
              opt.total_s < orig.total_s ? "yes" : "NO",
              opt.total_s, orig.total_s,
              util::fmt_pct_change(seq.total_s / orig.total_s, seq.total_s / opt.total_s).c_str());
  std::printf("  replication slows the sequential sections: %s (%.2fs vs %.2fs)\n",
              opt.seq_s > orig.seq_s ? "yes" : "NO", opt.seq_s, orig.seq_s);
  std::printf("  parallel sections accelerate: %s (%.2fs vs %.2fs)\n",
              opt.par_s < orig.par_s ? "yes" : "NO", opt.par_s, orig.par_s);
  return 0;
}
