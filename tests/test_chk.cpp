// Tests for the chk correctness layer: REPSEQ_CHECK parsing and its
// fail-loud contract, the LRC happens-before race detector (a planted race
// is reported with both sites; barrier- and lock-ordered variants stay
// clean), the protocol oracles (each deliberate mutation trips exactly its
// matching oracle -- a checker that cannot fail verifies nothing), and the
// on/off invariance sweep pinning that checking never perturbs results.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "chk/checker.hpp"
#include "ompnow/team.hpp"
#include "rse/controller.hpp"
#include "tmk/access.hpp"
#include "tmk/interval.hpp"
#include "tmk/runtime.hpp"
#include "util/pool_ptr.hpp"

namespace repseq::chk {
namespace {

constexpr std::uint8_t kRaces = static_cast<std::uint8_t>(Cat::Races);
constexpr std::uint8_t kProtocol = static_cast<std::uint8_t>(Cat::Protocol);

struct Fixture {
  tmk::TmkConfig cfg;
  net::NetConfig ncfg;

  Fixture() { cfg.heap_bytes = 1u << 20; }

  std::unique_ptr<tmk::Cluster> make(std::size_t nodes) {
    return std::make_unique<tmk::Cluster>(cfg, ncfg, nodes);
  }
};

/// Violations of one checker, in report order.
std::vector<std::string> details_of(const tmk::Cluster& cl, const std::string& checker) {
  std::vector<std::string> out;
  const Checker* c = cl.checker();
  if (c == nullptr) return out;
  for (const Violation& v : c->violations()) {
    if (v.checker == checker) out.push_back(v.detail);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Config axis

TEST(ChkConfig, ParseMaskAcceptsKnownTokens) {
  std::string bad;
  EXPECT_EQ(parse_mask("races", &bad), kRaces);
  EXPECT_EQ(parse_mask("protocol", &bad), kProtocol);
  EXPECT_EQ(parse_mask("races,protocol", &bad), kRaces | kProtocol);
  EXPECT_EQ(parse_mask("protocol,races", &bad), kRaces | kProtocol);
  EXPECT_EQ(parse_mask("all", &bad), kAllCats);
}

TEST(ChkConfig, ParseMaskRejectsUnknownToken) {
  std::string bad;
  EXPECT_EQ(parse_mask("races,bogus", &bad), std::nullopt);
  EXPECT_EQ(bad, "bogus");
}

TEST(ChkConfigDeathTest, UnknownEnvCategoryExitsTwo) {
  // The env axis is fail-loud: a typo'd category must kill the run before
  // any cluster exists, not silently check nothing.
  EXPECT_EXIT(
      {
        ::setenv("REPSEQ_CHECK", "races,bogus", /*overwrite=*/1);
        Fixture fx;
        auto cl = fx.make(2);
        std::exit(0);
      },
      ::testing::ExitedWithCode(2), "unknown REPSEQ_CHECK category 'bogus'");
}

TEST(ChkConfig, ScopedConfigOverridesEnvironment) {
  ScopedConfig sc(0);
  Fixture fx;
  auto cl = fx.make(2);
  // Even under REPSEQ_CHECK=races,protocol (the checked CI job), a forced
  // zero mask builds no checker.
  EXPECT_EQ(cl->checker(), nullptr);
}

// ---------------------------------------------------------------------------
// Happens-before race detection

TEST(ChkRace, UnsynchronizedConflictingWritesReportBothSites) {
  ScopedConfig sc(kRaces, /*abort_on_violation=*/false);
  Fixture fx;
  auto cl = fx.make(2);
  auto data = tmk::ShArray<int>::alloc(*cl, 16);

  // Both nodes write element 0 in the parallel phase with no ordering
  // between them: a textbook W-W race.
  const auto work = cl->register_work([&](tmk::NodeRuntime& rt) {
    data.store(0, static_cast<int>(rt.id()) + 1);
  });
  cl->run([&](tmk::NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  const std::vector<std::string> races = details_of(*cl, "race");
  ASSERT_FALSE(races.empty());
  // The diagnostic names both access sites: node, epoch, and clock each.
  EXPECT_NE(races[0].find("by node 0"), std::string::npos) << races[0];
  EXPECT_NE(races[0].find("by node 1"), std::string::npos) << races[0];
  EXPECT_NE(races[0].find("epoch"), std::string::npos) << races[0];
  EXPECT_NE(races[0].find("clock"), std::string::npos) << races[0];
}

TEST(ChkRace, RacyReadAgainstWriteReported) {
  ScopedConfig sc(kRaces, /*abort_on_violation=*/false);
  Fixture fx;
  auto cl = fx.make(2);
  auto data = tmk::ShArray<int>::alloc(*cl, 16);

  const auto work = cl->register_work([&](tmk::NodeRuntime& rt) {
    if (rt.id() == 0) {
      data.store(0, 7);
    } else {
      (void)data.load(0);
    }
  });
  cl->run([&](tmk::NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  EXPECT_FALSE(details_of(*cl, "race").empty());
}

TEST(ChkRace, BarrierOrderedWritesAreClean) {
  ScopedConfig sc(kRaces, /*abort_on_violation=*/false);
  Fixture fx;
  auto cl = fx.make(2);
  auto data = tmk::ShArray<int>::alloc(*cl, 16);

  // Same conflicting pair as above, but the barrier orders them.
  const auto work = cl->register_work([&](tmk::NodeRuntime& rt) {
    if (rt.id() == 0) data.store(0, 1);
    rt.barrier(1);
    if (rt.id() == 1) data.store(0, 2);
  });
  cl->run([&](tmk::NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  ASSERT_NE(cl->checker(), nullptr);
  EXPECT_TRUE(cl->checker()->violations().empty());
}

TEST(ChkRace, LockOrderedWritesAreClean) {
  ScopedConfig sc(kRaces, /*abort_on_violation=*/false);
  Fixture fx;
  auto cl = fx.make(3);
  auto data = tmk::ShArray<int>::alloc(*cl, 16);

  // The lock grant carries the releaser's shadow clock, ordering every
  // critical section against the next.
  const auto work = cl->register_work([&](tmk::NodeRuntime& rt) {
    rt.lock_acquire(5);
    data.store(0, data.load(0) + 1);
    rt.lock_release(5);
  });
  cl->run([&](tmk::NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  ASSERT_NE(cl->checker(), nullptr);
  EXPECT_TRUE(cl->checker()->violations().empty());
}

TEST(ChkRace, DisjointStripesAreClean) {
  ScopedConfig sc(kRaces, /*abort_on_violation=*/false);
  Fixture fx;
  auto cl = fx.make(4);
  // One page, four writers, cyclic partition: heavy false sharing, which is
  // exactly what the byte-range granularity must NOT report.
  auto data = tmk::ShArray<int>::alloc(*cl, 256);

  const auto work = cl->register_work([&](tmk::NodeRuntime& rt) {
    for (std::size_t i = rt.id(); i < data.size(); i += rt.node_count()) {
      data.store(i, static_cast<int>(i));
    }
  });
  cl->run([&](tmk::NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  ASSERT_NE(cl->checker(), nullptr);
  EXPECT_TRUE(cl->checker()->violations().empty());
}

// ---------------------------------------------------------------------------
// Protocol oracles, each validated by the mutation that breaks it

TEST(ChkOracle, SuppressedWriteNoticeTripsCoverage) {
  ScopedConfig sc(kProtocol, /*abort_on_violation=*/false);
  ScopedMutation mut(Mutation::SuppressWriteNotice);
  Fixture fx;
  auto cl = fx.make(2);
  // Two pages dirty per master interval, so the mutation has a last page to
  // drop while the record still publishes the other.
  auto data = tmk::ShArray<int>::alloc(*cl, 2048, /*page_aligned=*/true);

  const auto work = cl->register_work([&](tmk::NodeRuntime&) {
    (void)data.load(0);
    (void)data.load(1024);
  });
  cl->run([&](tmk::NodeRuntime& rt) {
    // Round 1 validates both pages on the slave; round 2's suppressed
    // notice then leaves one of them stale-but-valid, which the coverage
    // oracle flags at the slave's next access.
    for (int round = 1; round <= 2; ++round) {
      data.store(0, round);
      data.store(1024, round);
      rt.fork(work);
      cl->work(work)(rt);
      rt.join_master();
    }
  });

  const auto hits = details_of(*cl, "write-notice-coverage");
  ASSERT_FALSE(hits.empty());
  EXPECT_NE(hits[0].find("page"), std::string::npos) << hits[0];
}

TEST(ChkOracle, ReorderedDiffApplyTripsCausality) {
  ScopedConfig sc(kProtocol, /*abort_on_violation=*/false);
  ScopedMutation mut(Mutation::ReorderDiffApply);
  Fixture fx;
  auto cl = fx.make(3);
  auto data = tmk::ShArray<int>::alloc(*cl, 16);

  // Node 1 writes, node 2 writes the same page causally after it; node 0
  // then faults and pulls both diffs in one batch.  The mutation reverses
  // the causally-sorted batch, so the newer diff lands while the older one
  // it covers is still pending.
  const auto work = cl->register_work([&](tmk::NodeRuntime& rt) {
    if (rt.id() == 1) data.store(0, 10);
    rt.barrier(1);
    if (rt.id() == 2) {
      (void)data.load(0);
      data.store(1, 20);
    }
    rt.barrier(2);
    if (rt.id() == 0) {
      (void)data.load(0);
      (void)data.load(1);
    }
  });
  cl->run([&](tmk::NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  const auto hits = details_of(*cl, "diff-apply-causality");
  ASSERT_FALSE(hits.empty());
}

TEST(ChkOracle, ReplicaWriteSetDivergenceTrips) {
  ScopedConfig sc(kProtocol, /*abort_on_violation=*/false);
  Fixture fx;
  auto cl = fx.make(4);
  rse::RseController rse(*cl, rse::FlowControl::Chained);
  ompnow::Team team(*cl, ompnow::SeqMode::Replicated, &rse);
  auto data = tmk::ShArray<int>::alloc(*cl, 64);

  cl->run([&](tmk::NodeRuntime&) {
    // A replicated section whose body depends on the executing node is the
    // bug class RSE forbids (paper Section 5.2): every replica must compute
    // the identical write set.
    team.sequential(/*site=*/3, [&](const ompnow::Ctx& ctx) {
      data.store(0, static_cast<int>(ctx.rt.id()));
    });
  });

  const auto hits = details_of(*cl, "replica-write-set");
  ASSERT_FALSE(hits.empty());
  EXPECT_NE(hits[0].find("site 3"), std::string::npos) << hits[0];
}

TEST(ChkOracle, IntervalMonotonicityOnForgedRecord) {
  ScopedConfig sc(kProtocol, /*abort_on_violation=*/false);
  Fixture fx;
  auto cl = fx.make(2);

  cl->run([&](tmk::NodeRuntime& rt) {
    // Forge a commit that skips indices 1..4: the per-node interval counter
    // must advance by exactly one per dirty interval.
    auto rec = util::make_pooled<tmk::IntervalRecord>();
    rec->owner = rt.id();
    rec->index = 5;
    rec->vc = tmk::VectorClock(rt.node_count());
    rec->vc.set(rt.id(), 5);
    cl->checker()->on_interval_commit(rt, tmk::IntervalRecordPtr(rec));
  });

  const auto hits = details_of(*cl, "interval-monotonicity");
  ASSERT_FALSE(hits.empty());
  EXPECT_NE(hits[0].find("5"), std::string::npos) << hits[0];
}

TEST(ChkOracle, RoundSerializationOnOverlappingRounds) {
  ScopedConfig sc(kProtocol, /*abort_on_violation=*/false);
  Fixture fx;
  auto cl = fx.make(2);
  Checker* c = cl->checker();
  ASSERT_NE(c, nullptr);

  c->on_round_start(/*shard=*/0, /*round=*/1);
  c->on_round_start(/*shard=*/0, /*round=*/2);  // round 1 still in flight
  EXPECT_FALSE(details_of(*cl, "round-serialization").empty());
}

// ---------------------------------------------------------------------------
// Invariance: checking observes, never perturbs

TEST(ChkInvariance, CheckerOnOffProducesBitIdenticalRuns) {
  struct Outcome {
    long checksum = 0;
    std::uint64_t events = 0;
    std::vector<std::vector<std::uint32_t>> vcs;
  };
  // A workload exercising diffs, barriers, locks and a replicated section.
  const auto run_once = [](std::uint8_t mask) {
    ScopedConfig sc(mask, /*abort_on_violation=*/true);
    Fixture fx;
    auto cl = fx.make(4);
    rse::RseController rse(*cl, rse::FlowControl::Chained);
    ompnow::Team team(*cl, ompnow::SeqMode::Replicated, &rse);
    auto data = tmk::ShArray<int>::alloc(*cl, 1024, /*page_aligned=*/true);
    Outcome out;

    const auto work = cl->register_work([&](tmk::NodeRuntime& rt) {
      for (std::size_t i = rt.id(); i < data.size(); i += rt.node_count()) {
        data.store(i, static_cast<int>(2 * i));
      }
      rt.barrier(1);
      rt.lock_acquire(9);
      data.store(0, data.load(0) + 1);
      rt.lock_release(9);
    });
    cl->run([&](tmk::NodeRuntime& rt) {
      rt.fork(work);
      cl->work(work)(rt);
      rt.join_master();
      team.sequential(/*site=*/1, [&](const ompnow::Ctx&) {
        for (std::size_t i = 0; i < data.size(); ++i) data.store(i, data.load(i) + 3);
      });
      long sum = 0;
      for (std::size_t i = 0; i < data.size(); ++i) sum += data.load(i);
      out.checksum = sum;
    });

    out.events = cl->engine().events_executed();
    for (tmk::NodeId n = 0; n < 4; ++n) {
      std::vector<std::uint32_t> v;
      for (tmk::NodeId m = 0; m < 4; ++m) v.push_back(cl->node(n).vc().at(m));
      out.vcs.push_back(std::move(v));
    }
    return out;
  };

  const Outcome off = run_once(0);
  // data[0]: 4 lock increments over its cyclic value 0, then +3 in the
  // section; data[i>0]: 2i+3.  Wrong here means the protocol itself (not
  // the checker) dropped or misordered a diff.
  ASSERT_EQ(off.checksum, 7 + 2 * (1023 * 1024 / 2) + 3 * 1023);
  const Outcome on = run_once(kAllCats);
  // Checksums, final interval vectors and even the simulated event count
  // must match exactly: the chk clocks ride excluded from wire accounting,
  // so a checked run IS the unchecked run plus assertions.
  EXPECT_EQ(off.checksum, on.checksum);
  EXPECT_EQ(off.events, on.events);
  EXPECT_EQ(off.vcs, on.vcs);
}

}  // namespace
}  // namespace repseq::chk
