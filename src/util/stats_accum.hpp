// Small online statistics accumulators used by the runtime's measurement
// layer (response times, queue depths) and by the benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

namespace repseq::util {

/// Streaming mean / min / max / variance (Welford) accumulator.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Merges another accumulator into this one (parallel reduction of stats).
  void merge(const Accumulator& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const std::uint64_t n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    const double mean = mean_ + delta * static_cast<double>(o.n_) / static_cast<double>(n);
    m2_ = m2_ + o.m2_ +
          delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) /
              static_cast<double>(n);
    mean_ = mean;
    n_ = n;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace repseq::util
