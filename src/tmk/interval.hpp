// Interval records and the per-node interval log.
//
// An interval is the span of a thread's execution between two consecutive
// synchronization operations that produced shared-memory writes.  Its record
// carries a vector timestamp and the list of pages written (the write
// notices).  Records are immutable once published; every node's log
// eventually holds the records it needs by virtue of the consistency
// protocol's notice exchange.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "tmk/gaddr.hpp"
#include "tmk/vector_clock.hpp"
#include "util/check.hpp"
#include "util/pool_ptr.hpp"

namespace repseq::tmk {

struct IntervalRecord {
  NodeId owner = 0;
  std::uint32_t index = 0;  // owner's interval counter value
  VectorClock vc;           // timestamp of the interval
  std::vector<PageId> pages;  // write notices

  /// Serialized size: owner + index (8) + vc + 4 bytes per page id.
  [[nodiscard]] std::size_t wire_bytes() const {
    return 8 + vc.wire_bytes() + 4 * pages.size();
  }
};

/// Pool-backed, non-atomically counted: records fan out to every node
/// inside synchronization payloads, so handle copies are a hot path.
using IntervalRecordPtr = util::PoolPtr<const IntervalRecord>;

/// All interval records a node knows, indexed by owner.  Records per owner
/// are stored densely in index order (index i at position i-1).
class IntervalLog {
 public:
  explicit IntervalLog(std::size_t nodes) : per_owner_(nodes) {}

  /// Highest interval index known for `owner` (0 = none).
  [[nodiscard]] std::uint32_t known(NodeId owner) const {
    return static_cast<std::uint32_t>(per_owner_[owner].size());
  }

  /// Inserts a record; must arrive in index order per owner (the protocol
  /// guarantees this: notices propagate along synchronization edges).
  /// Duplicate arrivals are ignored.
  void insert(IntervalRecordPtr rec) {
    auto& vec = per_owner_[rec->owner];
    if (rec->index <= vec.size()) return;  // already known
    REPSEQ_CHECK(rec->index == vec.size() + 1,
                 "interval record gap for owner " + std::to_string(rec->owner) + ": have " +
                     std::to_string(vec.size()) + ", got " + std::to_string(rec->index));
    vec.push_back(std::move(rec));
  }

  [[nodiscard]] const IntervalRecord& get(NodeId owner, std::uint32_t index) const {
    REPSEQ_CHECK(index >= 1 && index <= per_owner_[owner].size(), "unknown interval");
    return *per_owner_[owner][index - 1];
  }

  [[nodiscard]] IntervalRecordPtr get_ptr(NodeId owner, std::uint32_t index) const {
    REPSEQ_CHECK(index >= 1 && index <= per_owner_[owner].size(), "unknown interval");
    return per_owner_[owner][index - 1];
  }

  /// All records not covered by `vc`, i.e. those the holder of `vc` has not
  /// yet seen.  Returned in (owner, index) order.
  [[nodiscard]] std::vector<IntervalRecordPtr> records_after(const VectorClock& vc) const {
    std::vector<IntervalRecordPtr> out;
    for (NodeId o = 0; o < per_owner_.size(); ++o) {
      for (std::uint32_t i = vc.at(o) + 1; i <= known(o); ++i) {
        out.push_back(per_owner_[o][i - 1]);
      }
    }
    return out;
  }

 private:
  std::vector<std::vector<IntervalRecordPtr>> per_owner_;
};

}  // namespace repseq::tmk
