#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "net/network.hpp"
#include "sim/engine.hpp"

namespace repseq::net {
namespace {

Message make_msg(NodeId src, NodeId dst, std::size_t bytes, std::uint32_t kind = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.kind = kind;
  m.payload_bytes = bytes;
  return m;
}

TEST(NetConfig, WireBytesAddsPerFragmentHeaders) {
  NetConfig cfg;
  cfg.mtu_bytes = 1500;
  cfg.header_bytes = 42;
  EXPECT_EQ(cfg.wire_bytes(0), 42u);          // control message: one header
  EXPECT_EQ(cfg.wire_bytes(100), 142u);       // one fragment
  EXPECT_EQ(cfg.wire_bytes(1458), 1500u);     // exactly one full fragment
  EXPECT_EQ(cfg.wire_bytes(1459), 1459u + 84u);  // two fragments
}

TEST(Network, UnicastDeliversWithLatency) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 4);
  sim::SimTime got{};
  eng.spawn("rx", [&] {
    (void)nw.nic(1).inbox().pop();
    got = eng.now();
  });
  eng.spawn("tx", [&] { nw.unicast(make_msg(0, 1, 1000)); });
  eng.run();
  // Two serialization legs (uplink + downlink) plus two hop latencies:
  // 1042B / 12.5MB/s = 83.36us per leg, 5us per hop.
  EXPECT_GT(got.ns, 0);
  EXPECT_NEAR(static_cast<double>(got.ns), 2 * 83'360 + 2 * 5'000, 200.0);
}

TEST(Network, BackToBackUnicastsSerializeOnUplink) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 4);
  std::vector<sim::SimTime> arrivals;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 2; ++i) {
      (void)nw.nic(1).inbox().pop();
      arrivals.push_back(eng.now());
    }
  });
  eng.spawn("tx", [&] {
    nw.unicast(make_msg(0, 1, 10000));
    nw.unicast(make_msg(0, 1, 10000));
  });
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second frame's last byte leaves one full serialization later.
  const double leg = (10000 + 7 * 42) / 12.5e6 * 1e9;
  EXPECT_NEAR(static_cast<double>((arrivals[1] - arrivals[0]).ns), leg, 1000.0);
}

TEST(Network, ResponsesFromDistinctSendersContendOnDestinationPort) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 8);
  std::vector<sim::SimTime> arrivals;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 4; ++i) {
      (void)nw.nic(0).inbox().pop();
      arrivals.push_back(eng.now());
    }
  });
  for (NodeId s = 1; s <= 4; ++s) {
    eng.spawn("tx" + std::to_string(s), [&nw, s] { nw.unicast(make_msg(s, 0, 20000)); });
  }
  eng.run();
  ASSERT_EQ(arrivals.size(), 4u);
  // All four senders transmit in parallel on their own uplinks, but the
  // switch's port to node 0 serializes them: arrivals are spaced by one
  // serialization time each.
  const double leg = (20000.0 + 14 * 42) / 12.5e6 * 1e9;
  for (int i = 1; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>((arrivals[i] - arrivals[i - 1]).ns), leg, 2000.0) << i;
  }
}

TEST(Network, MulticastReachesAllButSender) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 5);
  int received = 0;
  for (NodeId n = 1; n < 5; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &received, n] {
      (void)nw.nic(n).inbox().pop();
      ++received;
    });
  }
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 500)); });
  eng.run();
  EXPECT_EQ(received, 4);
  EXPECT_EQ(nw.messages_sent(), 1u);  // one message on the wire
}

TEST(Network, MulticastsSerializeOnHub) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 4);
  std::vector<sim::SimTime> arrivals;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 2; ++i) {
      (void)nw.nic(3).inbox().pop();
      arrivals.push_back(eng.now());
    }
  });
  eng.spawn("tx0", [&] { nw.multicast(make_msg(0, kMulticastDst, 10000)); });
  eng.spawn("tx1", [&] { nw.multicast(make_msg(1, kMulticastDst, 10000)); });
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const double leg = (10000 + 7 * 42) / 12.5e6 * 1e9;
  EXPECT_NEAR(static_cast<double>((arrivals[1] - arrivals[0]).ns), leg, 1000.0);
}

TEST(Network, ReceiveBufferOverflowDrops) {
  sim::Engine eng;
  NetConfig cfg;
  cfg.recv_buffer_msgs = 4;
  Network nw(eng, cfg, 3);
  // Nobody drains node 2's inbox; flood it.
  eng.spawn("tx", [&] {
    for (int i = 0; i < 10; ++i) nw.unicast(make_msg(0, 2, 100));
  });
  eng.run();
  EXPECT_EQ(nw.nic(2).drops(), 6u);
  EXPECT_EQ(nw.nic(2).backlog(), 4u);
  EXPECT_EQ(nw.total_drops(), 6u);
}

TEST(Network, LossInjectionDropsSomeDeliveries) {
  sim::Engine eng;
  NetConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.loss_seed = 42;
  Network nw(eng, cfg, 2);
  eng.spawn("tx", [&] {
    for (int i = 0; i < 200; ++i) nw.unicast(make_msg(0, 1, 10));
  });
  eng.spawn("rx", [&] {
    // Drain whatever arrives; rely on run() terminating when idle.
    while (true) {
      auto m = nw.nic(1).inbox().pop_with_timeout(sim::milliseconds(100));
      if (!m) break;
    }
  });
  eng.run();
  EXPECT_GT(nw.losses_injected(), 50u);
  EXPECT_LT(nw.losses_injected(), 150u);
  EXPECT_EQ(nw.deliveries() + nw.losses_injected(), 200u);
}

TEST(Network, SendTapObservesTraffic) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 3);
  std::uint64_t tapped_bytes = 0;
  int tapped_mcast = 0;
  nw.set_send_tap([&](const Message&, std::size_t wire, bool mc) {
    tapped_bytes += wire;
    tapped_mcast += mc ? 1 : 0;
  });
  eng.spawn("drain1", [&] { (void)nw.nic(1).inbox().pop(); });
  eng.spawn("drain2", [&] { (void)nw.nic(2).inbox().pop(); });
  eng.spawn("tx", [&] {
    nw.unicast(make_msg(0, 1, 100));
    nw.multicast(make_msg(0, kMulticastDst, 200));
  });
  eng.run();
  EXPECT_EQ(tapped_bytes, nw.bytes_sent());
  EXPECT_EQ(tapped_mcast, 1);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine eng;
    Network nw(eng, NetConfig{}, 6);
    for (NodeId n = 1; n < 6; ++n) {
      eng.spawn("rx" + std::to_string(n), [&nw, n] {
        for (int i = 0; i < 5; ++i) (void)nw.nic(n).inbox().pop();
      });
    }
    eng.spawn("tx", [&] {
      for (int i = 0; i < 5; ++i) {
        for (NodeId n = 1; n < 6; ++n) nw.unicast(make_msg(0, n, 1000 + 100 * n));
      }
    });
    eng.run();
    return eng.now().ns;
  };
  EXPECT_EQ(run_once(), run_once());
}

}  // namespace
}  // namespace repseq::net
