#include "apps/ilink/ilink.hpp"

#include <cmath>

#include "sim/rng.hpp"
#include "util/check.hpp"

namespace repseq::apps::ilink {

namespace {

using ompnow::Ctx;
using ompnow::Schedule;

constexpr double kModulus = 251.0;

/// Exact integer-in-double modular fold; all values stay far below 2^53 so
/// results are bit-identical regardless of execution interleaving.
double fold(double pool_value, int other, std::uint32_t i) {
  return std::fmod(pool_value * (other + 2) + static_cast<double>(i % 97), kModulus);
}

double init_value(int family, int person, std::uint32_t i, int iteration) {
  return std::fmod(static_cast<double>(i) * 7.0 + person * 13.0 + family * 3.0 +
                       iteration * 29.0,
                   kModulus);
}

/// Where member `m` reads member `o`'s genarray for output element i
/// (sparse, pointer-chased -- irregular by construction).
std::uint32_t probe_index(std::uint32_t i, int o, int genotypes) {
  return (i * 31 + static_cast<std::uint32_t>(o) * 1543 + 11) %
         static_cast<std::uint32_t>(genotypes);
}

}  // namespace

IlinkWorld setup_world(tmk::Cluster& cluster, const IlinkConfig& cfg) {
  IlinkWorld w;
  const std::size_t page_doubles = cluster.config().page_bytes / sizeof(double);
  auto round_up = [&](std::size_t v) {
    return (v + page_doubles - 1) / page_doubles * page_doubles;
  };
  w.person_stride = round_up(static_cast<std::size_t>(cfg.genotypes));
  w.pool = tmk::ShArray<double>::alloc(
      cluster, w.person_stride * static_cast<std::size_t>(cfg.pool_persons()),
      /*page_aligned=*/true);
  w.contrib = tmk::ShArray<double>::alloc(cluster, round_up(static_cast<std::size_t>(cfg.max_nonzero)),
                                          /*page_aligned=*/true);

  // The static pedigree: per (family, person) a sorted list of non-zero
  // genotype indices (stands in for the input file's recombination data).
  sim::Rng rng(cfg.seed);
  w.nonzeros.resize(static_cast<std::size_t>(cfg.families));
  for (int f = 0; f < cfg.families; ++f) {
    auto& family = w.nonzeros[static_cast<std::size_t>(f)];
    family.resize(static_cast<std::size_t>(cfg.pool_persons()));
    for (int p = 0; p < cfg.pool_persons(); ++p) {
      const auto count = static_cast<std::uint32_t>(
          cfg.min_nonzero + static_cast<int>(rng.next_below(
                                static_cast<std::uint64_t>(cfg.max_nonzero - cfg.min_nonzero))));
      std::vector<std::uint32_t> idx;
      idx.reserve(count);
      std::uint32_t cur = static_cast<std::uint32_t>(rng.next_below(7));
      for (std::uint32_t k = 0; k < count; ++k) {
        if (cur >= static_cast<std::uint32_t>(cfg.genotypes)) break;
        idx.push_back(cur);
        cur += 1 + static_cast<std::uint32_t>(rng.next_below(
                       static_cast<std::uint64_t>(2 * cfg.genotypes / cfg.max_nonzero)));
      }
      family[static_cast<std::size_t>(p)] = std::move(idx);
    }
  }
  return w;
}

IlinkResult run_program(tmk::Cluster& cluster, ompnow::Team& team, const IlinkWorld& w,
                        const IlinkConfig& cfg) {
  IlinkResult res;
  const sim::SimTime t0 = cluster.engine().now();
  const int persons = cfg.pool_persons();
  double likelihood = 0.0;

  auto pool_at = [&](int person, std::uint32_t i) {
    return w.person_stride * static_cast<std::size_t>(person) + i;
  };

  for (int iter = 0; iter < cfg.iterations; ++iter) {
    for (int fam = 0; fam < cfg.families; ++fam) {
      // Moving to a new nuclear family: the master (or, when replicated,
      // every node) reinitializes the entire pool of genarrays -- the
      // paper's "extremely severe" contention point (Section 6.2.1).
      team.sequential(kSectionPoolInit, [&](const Ctx& ctx) {
        for (int p = 0; p < persons; ++p) {
          for (std::uint32_t i = 0; i < static_cast<std::uint32_t>(cfg.genotypes); ++i) {
            w.pool.store(pool_at(p, i), init_value(fam, p, i, iter));
            ctx.rt.charge(cfg.cost_init_element);
          }
        }
      });

      // Visit every member of the nuclear family: update the member's
      // genarray conditioned on all other members.
      for (int m = 0; m < persons; ++m) {
        const std::vector<std::uint32_t>& nz =
            w.nonzeros[static_cast<std::size_t>(fam)][static_cast<std::size_t>(m)];
        const bool parallelize = static_cast<int>(nz.size()) > cfg.threshold;

        if (parallelize) {
          ++res.parallel_updates;
          // Non-zero elements assigned cyclically to the threads; each
          // thread computes into its own contribution buffer.
          team.parallel_for(
              0, static_cast<long>(nz.size()), Schedule::StaticCyclic,
              [&, m](const Ctx& ctx, long posl) {
                const auto pos = static_cast<std::size_t>(posl);
                const std::uint32_t i = nz[pos];
                double val = 0.0;
                for (int o = 0; o < persons; ++o) {
                  if (o == m) continue;
                  const double pv = w.pool.load(pool_at(o, probe_index(i, o, cfg.genotypes)));
                  val += fold(pv, o, i);
                }
                w.contrib.store(pos, val);  // cyclic false sharing by design
                ctx.rt.charge(cfg.cost_element);
              });

          // The master sums up the threads' contributions (sequential
          // section; replicated in the optimized system).  The contribution
          // buffer is a few densely packed pages carrying one diff per
          // writer -- what the multiple-writer protocol merges.
          team.sequential(kSectionSumContrib, [&, m](const Ctx& ctx) {
            double fam_sum = 0.0;
            for (std::size_t pos = 0; pos < nz.size(); ++pos) {
              const std::uint32_t i = nz[pos];
              const double val = w.contrib.load(pos);
              w.pool.store(pool_at(m, i), std::fmod(val, kModulus));
              fam_sum += val;
              ctx.rt.charge(cfg.cost_sum_element);
            }
            if (ctx.is_master()) likelihood += fam_sum;
          });
        } else {
          ++res.serial_updates;
          // Below the threshold the update stays in the sequential flow
          // (the OpenMP `if` clause, Section 6.2.1).
          team.sequential(kSectionSerialUpdate, [&, m](const Ctx& ctx) {
            double fam_sum = 0.0;
            for (const std::uint32_t i : nz) {
              double val = 0.0;
              for (int o = 0; o < persons; ++o) {
                if (o == m) continue;
                const double pv = w.pool.load(pool_at(o, probe_index(i, o, cfg.genotypes)));
                val += fold(pv, o, i);
              }
              w.pool.store(pool_at(m, i), std::fmod(val, kModulus));
              fam_sum += val;
              ctx.rt.charge(cfg.cost_element);
            }
            if (ctx.is_master()) likelihood += fam_sum;
          });
        }
      }
    }
  }

  res.likelihood = likelihood;
  res.total_time = cluster.engine().now() - t0;
  res.seq_time = team.sequential_time();
  res.par_time = team.parallel_time();
  return res;
}

}  // namespace repseq::apps::ilink
