#include "ompnow/team.hpp"

#include "obs/trace.hpp"
#include "rse/alternatives.hpp"
#include "util/check.hpp"

namespace repseq::ompnow {

Range block_range(long lo, long hi, int tid, int nthreads) {
  const long n = hi - lo;
  const long base = n / nthreads;
  const long extra = n % nthreads;
  const long begin = lo + tid * base + std::min<long>(tid, extra);
  const long len = base + (tid < extra ? 1 : 0);
  return {begin, begin + len};
}

Team::Team(tmk::Cluster& cluster, SeqMode seq_mode, rse::RseController* rse,
           rse::policy::PolicyEngine* policy)
    : cluster_(cluster), seq_mode_(seq_mode), rse_(rse), policy_(policy) {
  if (seq_mode_ == SeqMode::Replicated) {
    REPSEQ_CHECK(rse_ != nullptr, "Replicated mode requires an RseController");
  }
  if (seq_mode_ == SeqMode::Adaptive) {
    REPSEQ_CHECK(rse_ != nullptr && policy_ != nullptr,
                 "Adaptive mode requires an RseController and a PolicyEngine");
  }
}

void Team::run_region(std::uint64_t work_id, tmk::Phase phase) {
  tmk::NodeRuntime& master = cluster_.node(0);
  master.fork(work_id, phase);
  cluster_.work(work_id)(master);  // the master thread participates
  master.join_master();
}

void Team::parallel(std::function<void(const Ctx&)> body) {
  const sim::SimTime t0 = cluster_.engine().now();
  ++parallel_regions_;
  const int n = static_cast<int>(cluster_.node_count());
  const std::uint64_t id = cluster_.register_work([body = std::move(body), n](tmk::NodeRuntime& rt) {
    Ctx ctx{rt, static_cast<int>(rt.id()), n};
    body(ctx);
  });
  run_region(id, tmk::Phase::Parallel);
  par_time_ += cluster_.engine().now() - t0;
}

void Team::parallel_for(long lo, long hi, Schedule sched,
                        std::function<void(const Ctx&, long)> body, bool if_parallel) {
  if (!if_parallel) {
    // The OpenMP `if` clause: run the whole loop on the (master) thread,
    // inside the surrounding sequential flow -- no fork, no join.
    Ctx ctx{cluster_.node(0), 0, 1};
    for (long i = lo; i < hi; ++i) body(ctx, i);
    return;
  }
  if (cluster_.node_count() == 1) {
    // One-node cluster: still a parallel region semantically (this is the
    // sequential baseline of the paper's speedup tables), so its time is
    // accounted as parallel-section time.
    const sim::SimTime t0 = cluster_.engine().now();
    ++parallel_regions_;
    Ctx ctx{cluster_.node(0), 0, 1};
    for (long i = lo; i < hi; ++i) body(ctx, i);
    cluster_.node(0).cpu().flush();
    par_time_ += cluster_.engine().now() - t0;
    return;
  }
  parallel([lo, hi, sched, body = std::move(body)](const Ctx& ctx) {
    switch (sched) {
      case Schedule::StaticBlock: {
        const Range r = block_range(lo, hi, ctx.tid, ctx.nthreads);
        for (long i = r.lo; i < r.hi; ++i) body(ctx, i);
        break;
      }
      case Schedule::StaticCyclic: {
        for (long i = lo + ctx.tid; i < hi; i += ctx.nthreads) body(ctx, i);
        break;
      }
    }
  });
}

void Team::seq_master_only(const std::function<void(const Ctx&)>& body) {
  tmk::NodeRuntime& master = cluster_.node(0);
  Ctx ctx{master, 0, static_cast<int>(cluster_.node_count())};
  body(ctx);
  master.cpu().flush();
}

void Team::seq_broadcast_after(const std::function<void(const Ctx&)>& body) {
  tmk::NodeRuntime& master = cluster_.node(0);
  master.end_interval();
  const tmk::VectorClock before = master.vc();
  Ctx ctx{master, 0, static_cast<int>(cluster_.node_count())};
  body(ctx);
  master.cpu().flush();
  rse::broadcast_section_updates(master, before);
}

void Team::seq_replicated(std::uint32_t site, std::function<void(const Ctx&)> body) {
  tmk::NodeRuntime& master = cluster_.node(0);
  const int n = static_cast<int>(cluster_.node_count());
  if (n == 1) {
    Ctx ctx{master, 0, 1};
    body(ctx);
    master.cpu().flush();
    return;
  }
  // The section is shipped to every node like a region whose body is
  // the *whole* sequential section, bracketed by the RSE protocol.
  // Traffic inside belongs to the sequential-section accounting.  The site
  // rides along so every replica's diagnostics (race reports, write-set
  // digests) name the section being executed.
  rse::RseController* rse = rse_;
  const std::uint64_t id =
      cluster_.register_work([body = std::move(body), rse, n, site](tmk::NodeRuntime& rt) {
        rt.set_current_site(site);
        rse->enter(rt);
        Ctx ctx{rt, static_cast<int>(rt.id()), n};
        body(ctx);
        rt.cpu().flush();
        rse->exit(rt);
        rt.set_current_site(tmk::NodeRuntime::kNoSite);
      });
  run_region(id, tmk::Phase::Sequential);
}

void Team::sequential(std::function<void(const Ctx&)> body) {
  sequential(0u, std::move(body));
}

void Team::sequential(std::uint32_t site, std::function<void(const Ctx&)> body) {
  const sim::SimTime t0 = cluster_.engine().now();
  ++seq_sections_;

  SeqMode eff = seq_mode_;
  if (seq_mode_ == SeqMode::Adaptive) {
    switch (policy_->open_section(cluster_.node(0), site)) {
      case rse::policy::SectionStrategy::MasterOnly:
        eff = SeqMode::MasterOnly;
        break;
      case rse::policy::SectionStrategy::Replicated:
        eff = SeqMode::Replicated;
        break;
      case rse::policy::SectionStrategy::BroadcastAfter:
        eff = SeqMode::BroadcastAfter;
        break;
    }
  }

  if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
    obs::tracer().begin(obs::Cat::Rse, cluster_.engine().now(), 1, "master", "seq-section",
                        {{"site", static_cast<double>(site)},
                         {"strategy", static_cast<double>(static_cast<int>(eff))},
                         {"section", static_cast<double>(seq_sections_)}});
  }
  cluster_.node(0).set_current_site(site);
  switch (eff) {
    case SeqMode::MasterOnly:
      seq_master_only(body);
      break;
    case SeqMode::BroadcastAfter:
      seq_broadcast_after(body);
      break;
    case SeqMode::Replicated:
      seq_replicated(site, std::move(body));
      break;
    case SeqMode::Adaptive:
      REPSEQ_CHECK(false, "adaptive mode resolves to a concrete strategy");
      break;
  }
  cluster_.node(0).set_current_site(tmk::NodeRuntime::kNoSite);
  if (seq_mode_ == SeqMode::Adaptive) policy_->close_section(cluster_.node(0));
  if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
    obs::tracer().end(obs::Cat::Rse, cluster_.engine().now(), 1, "master");
  }
  seq_time_ += cluster_.engine().now() - t0;
}

}  // namespace repseq::ompnow
