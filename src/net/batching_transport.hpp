// Frame coalescing as a transport decorator.  Wraps any backend and opens a
// NetConfig::batch_window rolling window per destination: a send to an idle
// destination leaves IMMEDIATELY (and opens the window); every further send
// to the same destination (unicast) -- or the same medium shard (multicast)
// -- while the window is open queues, and leaves at the window close as ONE
// combined wire frame whose payload is the concatenation of its
// constituents (which re-opens the window while traffic keeps coming).
// This is the classic small-frame batching of RDMA/UDP stacks: the chained
// null acks, write notices and window credits that dominate our traces are
// tens of bytes each, so the per-frame header + per-frame software cost
// dwarfs them.  First-frame-immediate matters on our chained rounds: a
// delay-everything window would space each chain step a full window apart
// -- clocked by the batched network itself -- so consecutive acks would
// never share a frame; transmitting the idle-path frame at once keeps the
// chain pipelined and coalesces exactly the pile-ups.
//
// Semantics preserved:
//   * Per-destination FIFO: a queue flushes in enqueue order, and the
//     combined frame's delivery instant is shared by every constituent, so
//     two sends to the same destination never reorder.
//   * Accounting conservation: the inner backend's committed (frames,
//     bytes) for the combined frame are split across constituents at flush
//     time -- each *rider* is charged (0 frames, its payload bytes), the
//     *carrier* (first in the queue) is charged the frames plus everything
//     else (its own payload, the shared headers, and any fan-out
//     replication the inner backend reports).  Summed over constituents the
//     charges equal wire truth exactly.
//   * Loss: the facade draws loss per constituent delivery (at flush time),
//     exactly one draw per (constituent, receiver) -- the same draw count
//     as unbatched, so the loss process stays independent of the batching
//     axis and a coalesced frame can lose a subset of its riders.
//
// A deferring inner backend (the forwarding tree) keeps its multicast path:
// its frames leave hop by hop from interior nodes the decorator cannot see,
// so coalescing them here would be wrong -- TreeMulticastTransport instead
// piggybacks per interior edge itself (same window, same carrier/rider
// split).  Its unicasts still batch here.
//
// window == 0 never constructs this class (see make_transport): zero-window
// behaviour is frame-for-frame the unwrapped backend.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>

#include "net/transport.hpp"

namespace repseq::net {

class BatchingTransport final : public Transport {
 public:
  BatchingTransport(sim::Engine& eng, const NetConfig& cfg,
                    std::vector<std::unique_ptr<Nic>>& nics, std::unique_ptr<Transport> inner);

  void unicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
               const AccountFn& account) override;
  void multicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
                 const AccountFn& account) override;

  /// Every send's callbacks fire at its window flush.
  [[nodiscard]] bool defers_delivery() const override { return true; }

  [[nodiscard]] std::size_t sender_frames(std::size_t receivers) const override {
    return inner_->sender_frames(receivers);
  }
  [[nodiscard]] std::size_t shard_count() const override { return inner_->shard_count(); }
  [[nodiscard]] sim::SimDuration shard_busy(std::size_t s) const override {
    return inner_->shard_busy(s);
  }

 private:
  /// One queued constituent send, held until its queue's flush.
  struct Pending {
    Message msg;
    DeliverFn deliver;
    AccountFn account;
  };
  /// Per-destination coalescing state: sends queued behind the currently
  /// open window, if any.
  struct Queue {
    std::vector<Pending> q;
    bool window_open = false;
  };

  /// Queues are keyed per (src, dst) for unicast and per (src, shard) for
  /// multicast -- the granularity at which frames may legally combine.
  static std::uint64_t unicast_key(NodeId src, NodeId dst) {
    return (std::uint64_t{1} << 63) | (std::uint64_t{src} << 32) | dst;
  }
  static std::uint64_t multicast_key(NodeId src, std::size_t shard) {
    return (std::uint64_t{src} << 32) | shard;
  }

  /// First-frame-immediate: transmits at once if the destination has no
  /// window open (and opens one); queues behind the open window otherwise.
  void enqueue(std::uint64_t key, bool is_multicast, const Message& msg, const DeliverFn& deliver,
               const AccountFn& account);
  /// Window-close event: transmits everything queued as one combined frame
  /// (re-opening the window), or just closes an idle window.
  void flush(std::uint64_t key, bool is_multicast);
  /// Hands one (possibly combined) frame to the inner backend and splits
  /// the committed totals across constituents (carrier/rider).
  void transmit(bool is_multicast, const std::vector<Pending>& batch);

  std::unique_ptr<Transport> inner_;
  std::unordered_map<std::uint64_t, Queue> queues_;
};

}  // namespace repseq::net
