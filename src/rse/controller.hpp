// Replicated sequential execution (the paper's contribution, Sections 4-5).
//
// Every node executes the sequential section on its own copy of shared
// data.  Entry performs the join-as-barrier, the valid-notice exchange
// (Section 5.4.1) and the dirty-page write-protection pass (Section 5.3).
// Faults during the section use the flow-controlled multicast protocol
// (Section 5.4.2): one elected requester per page forwards a request to the
// master, the master serializes rounds and multicasts the request, and
// holders reply by multicast in thread-id order with chained (null-)
// acknowledgments.  Exit is a plain barrier exchanging no coherence
// information (Section 5.2).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "tmk/runtime.hpp"

namespace repseq::rse {

/// Flow-control policy for the multicast diff replies (Section 5.4.3
/// discusses the chained scheme's overhead; Windowed is the paper's
/// envisioned less-conservative scheme; None is the strawman from the start
/// of Section 5.4 that overruns receive buffers).
enum class FlowControl {
  Chained,   // paper protocol: serialized rounds + per-thread ack chain
  Windowed,  // serialized rounds, concurrent replies, no null acks
  None,      // no master serialization, no acks: requester multicasts
};

class RseController final : public tmk::RseHooks {
 public:
  explicit RseController(tmk::Cluster& cluster, FlowControl flow = FlowControl::Chained);

  RseController(const RseController&) = delete;
  RseController& operator=(const RseController&) = delete;

  /// Section bracket, called on EVERY node's application fiber (the omp
  /// layer forks the section body to the slaves).
  void enter(tmk::NodeRuntime& rt);
  void exit(tmk::NodeRuntime& rt);

  [[nodiscard]] FlowControl flow() const { return flow_; }

  // --- RseHooks (dispatcher + fault integration) ---
  void on_fault(tmk::NodeRuntime& rt, tmk::PageId page) override;
  /// Registers the handler set for the configured FlowControl variant.
  /// Chained registers the full round/ack-chain machinery; Windowed drops
  /// the null-ack chain in favor of a master-side reply window; None
  /// registers only the request/reply pair (no rounds, no acks).
  void register_handlers(tmk::ProtocolEngine& engine) override;

  /// Total virtual time nodes spent inside the valid-notice exchange
  /// (reported in Section 6 as part of the overhead decomposition).
  [[nodiscard]] sim::SimDuration valid_notice_time() const { return valid_notice_time_; }

 private:
  /// Chained/windowed state of the round in progress on ONE shard of the
  /// multicast medium.  Rounds on distinct shards are independent: each
  /// shard runs its own reply chain, so a node can be mid-chain on several
  /// shards at once.
  struct RoundState {
    std::uint64_t round = 0;  // 0 = idle (round numbers are per-shard)
    tmk::PageId round_page = 0;
    tmk::WantedByOwner round_wanted;
    net::NodeId next_sender = 0;
    /// Reply/ack frames observed for rounds this node has not started yet
    /// (a non-FIFO transport can deliver a reply before its request);
    /// replayed when the round's request arrives, pruned at round start.
    std::map<std::uint64_t, std::set<net::NodeId>> early_frames;
  };

  /// Master-only round serialization for ONE shard: the single in-flight
  /// gate the paper describes, replicated per shard so concurrent rounds on
  /// disjoint shards proceed in parallel instead of queueing behind one
  /// another.
  struct MasterShard {
    std::deque<tmk::McastDiffRequestP> queue;
    bool round_in_flight = false;
    std::uint64_t active_round = 0;
    std::uint64_t next_round_no = 1;
    sim::EventQueue::Handle round_watchdog;
    /// Windowed mode: owners whose reply for the current round is pending.
    std::vector<net::NodeId> awaiting_replies;
  };

  struct NodeState {
    bool active = false;
    /// The aggregated valid-notice table multicast by the master.
    std::shared_ptr<const std::vector<tmk::ValidNoticesP>> table;
    /// Per-thread page -> validity lookup built from `table` (points into
    /// it; the shared_ptr keeps the storage alive).
    std::vector<std::map<tmk::PageId, const tmk::VectorClock*>> table_index;
    /// Waiting app fiber during the table exchange.
    sim::WaitToken* table_waiter = nullptr;

    /// Per-shard round state (index = shard id, sized to the backend's
    /// shard count; single-medium backends have exactly one entry).
    std::vector<RoundState> rounds;

    /// Multicast diff frames staged for one page until its whole pending set
    /// is covered; only then do they apply, in one causal batch (see
    /// apply_mcast_packets).  `needed` snapshots the page's pending
    /// (owner, index) notices when staging begins and arriving covers erase
    /// entries, so completeness costs O(log) per cover instead of a rescan
    /// of everything staged.  `seen` mirrors frames' (owner, seq) keys for
    /// O(log) duplicate detection; both stay sorted.  A round's wanted set
    /// can hold hundreds of intervals at 1024 nodes, so linear scans here
    /// turn quadratic per round per receiver (measured 1.3x on the ilink
    /// sweep).
    struct StagedPage {
      std::vector<tmk::DiffPacket> frames;
      std::vector<std::pair<net::NodeId, std::uint32_t>> needed;
      std::vector<std::pair<net::NodeId, std::uint64_t>> seen;
    };
    std::map<tmk::PageId, StagedPage> staged;

    // ---- master-only state ----
    std::vector<MasterShard> shards;  // per-shard round tables (node 0 only)
    std::uint32_t notices_collected = 0;
    std::vector<tmk::ValidNoticesP> gathering;
    sim::WaitToken* master_gather_waiter = nullptr;
  };

  /// Computes this node's valid notices: one (page, valid_vc) entry per
  /// page it would fault on.
  [[nodiscard]] tmk::ValidNoticesP local_valid_notices(tmk::NodeRuntime& rt) const;

  /// Requester election for `page`: the lowest-id thread whose table entry
  /// shows it will fault (Section 5.4.1).
  [[nodiscard]] std::optional<net::NodeId> elected_requester(const NodeState& st,
                                                             tmk::PageId page) const;

  /// Union over all faulting threads of their missing diffs for `page`.
  [[nodiscard]] tmk::WantedByOwner union_missing(tmk::NodeRuntime& rt, const NodeState& st,
                                                 tmk::PageId page) const;

  /// The shard of the multicast medium carrying round traffic for `page`
  /// (must agree with the sharded-hub backend's group placement).
  [[nodiscard]] std::size_t shard_for(tmk::PageId page) const {
    return net::shard_of(page, shards_);
  }
  /// This node's per-shard round state, growing the table on first use.
  [[nodiscard]] RoundState& round_state(tmk::NodeRuntime& rt, std::size_t shard);
  [[nodiscard]] MasterShard& master_shard(std::size_t shard);

  /// Master: enqueue a forwarded request on its page's shard, start it if
  /// that shard has no round in flight.
  void master_enqueue(tmk::NodeRuntime& master, tmk::McastRequestFwdP fwd, bool on_server);
  void master_start_next(tmk::NodeRuntime& master, std::size_t shard, bool on_server);
  void master_round_finished(tmk::NodeRuntime& master, std::size_t shard, bool on_server);

  /// Round entry at node `rt` (on multicast-request receipt, or locally at
  /// the sender): Chained walks the ack chain, Windowed/None reply
  /// immediately when holding requested diffs.
  void begin_round(tmk::NodeRuntime& rt, const tmk::McastDiffRequestP& req, bool on_server);
  void chain_begin_chained(tmk::NodeRuntime& rt, const tmk::McastDiffRequestP& req,
                           bool on_server);
  void begin_concurrent(tmk::NodeRuntime& rt, const tmk::McastDiffRequestP& req, bool on_server);
  /// Advances the shard's ack chain after `sender`'s frame was observed.
  void chain_observe(tmk::NodeRuntime& rt, std::size_t shard, net::NodeId sender,
                     bool on_server);
  /// Finishes the master's round when the chain has walked every node AND
  /// the round is still the one in flight (a watchdog-abandoned round's
  /// late-completing chain must not finish its successor).
  void chain_maybe_finish(tmk::NodeRuntime& rt, std::size_t shard, bool on_server);
  /// Sends this node's frame (diffs or null ack) for the shard's round.
  void send_own_frame(tmk::NodeRuntime& rt, std::size_t shard, bool on_server);
  /// send_own_frame at this node's chain turn; advances the turn counter.
  void chain_send_own(tmk::NodeRuntime& rt, std::size_t shard, bool on_server);
  /// Windowed: retire `sender`'s reply for `round` from the shard's master
  /// window (ignores replies of abandoned rounds).
  void window_retire(tmk::NodeRuntime& rt, std::size_t shard, net::NodeId sender,
                     std::uint64_t round, bool on_server);

  /// Applies multicast diff packets if (and only if) this node still misses
  /// them; valid pages are never overwritten (their replicated writes may
  /// already have diverged from the pre-section image).
  void apply_mcast_packets(tmk::NodeRuntime& rt, const std::vector<tmk::DiffPacket>& pkts,
                           bool on_server);

  /// Timeout recovery (Section 5.4.2): request own missing diffs directly.
  void recover(tmk::NodeRuntime& rt, tmk::PageId page);

  tmk::Cluster& cluster_;
  FlowControl flow_;
  /// Multicast serialization domains of the active transport backend; the
  /// round tables are sized to it (1 everywhere except the sharded hub).
  std::size_t shards_;
  std::vector<NodeState> state_;
  sim::SimDuration valid_notice_time_{};
};

}  // namespace repseq::rse
