#include "rse/alternatives.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace repseq::rse {

void broadcast_section_updates(tmk::NodeRuntime& master, const tmk::VectorClock& since) {
  REPSEQ_CHECK(master.is_master(), "section broadcast must run on the master");
  master.end_interval();
  const std::size_t n = master.node_count();
  if (n == 1) return;

  // Receivers must get contiguous notice streams, so the broadcast carries
  // every record the least-informed slave might lack (duplicates are
  // dropped on arrival); diffs are attached only for the master's own
  // section records -- the "data modified during the sequential execution".
  tmk::VectorClock least = master.slave_knowledge(1);
  for (net::NodeId s = 2; s < n; ++s) {
    const tmk::VectorClock& k = master.slave_knowledge(s);
    for (net::NodeId o = 0; o < n; ++o) {
      least.set(o, std::min(least.at(o), k.at(o)));
    }
  }
  std::vector<tmk::IntervalRecordPtr> records = master.log().records_after(least);

  std::vector<tmk::DiffPacket> packets;
  for (std::uint32_t i = since.at(0) + 1; i <= master.vc().at(0); ++i) {
    const tmk::IntervalRecord& rec = master.log().get(0, i);
    for (tmk::PageId p : rec.pages) {
      for (tmk::DiffPacket& pkt : master.collect_diffs(p, {i}, /*on_server=*/false)) {
        const bool dup = std::any_of(packets.begin(), packets.end(), [&](const auto& q) {
          return q.diff == pkt.diff && q.page == pkt.page;
        });
        if (!dup) packets.push_back(std::move(pkt));
      }
    }
  }
  if (records.empty() && packets.empty()) return;

  const std::uint64_t req_id = master.next_req_id();
  auto& slot = master.expect_replies(req_id);
  master.send_multicast(tmk::MsgKind::BcastUpdate,
                        tmk::BcastUpdateP{req_id, std::move(records), std::move(packets)},
                        /*on_server=*/false);
  for (std::size_t i = 1; i < n; ++i) {
    (void)slot.pop();  // one BcastAck per slave
  }
  master.drop_reply_slot(req_id);
  for (net::NodeId s = 1; s < n; ++s) {
    master.note_slave_knowledge(s, master.vc());
  }
}

}  // namespace repseq::rse
