#include "sim/fiber.hpp"

#include "util/check.hpp"

namespace repseq::sim {

namespace {
// The fiber being switched into; set immediately before swapcontext so the
// trampoline can find its Fiber object.  Single-threaded by design.
thread_local Fiber* g_current = nullptr;
thread_local Fiber* g_trampoline_arg = nullptr;
}  // namespace

Fiber::Fiber(std::string name, Fn fn, std::size_t stack_bytes)
    : name_(std::move(name)), fn_(std::move(fn)), stack_(stack_bytes) {
  REPSEQ_CHECK(fn_ != nullptr, "fiber requires a body");
}

Fiber::~Fiber() {
  // A fiber destroyed while suspended simply abandons its stack; the engine
  // only does this after `run()` has drained, so no cleanup runs mid-flight.
}

Fiber* Fiber::current() { return g_current; }

void Fiber::trampoline() {
  Fiber* self = g_trampoline_arg;
  try {
    self->fn_();
  } catch (...) {
    self->failure_ = std::current_exception();
  }
  self->finished_ = true;
  // Fall through: returning from the makecontext entry point resumes
  // uc_link, which we point at the engine's context.
}

void Fiber::resume() {
  REPSEQ_CHECK(g_current == nullptr, "resume() must be called from the engine context");
  REPSEQ_CHECK(!finished_, "cannot resume a finished fiber: " + name_);
  if (!started_) {
    started_ = true;
    REPSEQ_CHECK(getcontext(&context_) == 0, "getcontext failed");
    context_.uc_stack.ss_sp = stack_.data();
    context_.uc_stack.ss_size = stack_.size();
    context_.uc_link = &return_context_;
    g_trampoline_arg = this;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  g_current = this;
  REPSEQ_CHECK(swapcontext(&return_context_, &context_) == 0, "swapcontext failed");
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  REPSEQ_CHECK(self != nullptr, "yield() must be called from inside a fiber");
  g_current = nullptr;
  REPSEQ_CHECK(swapcontext(&self->context_, &self->return_context_) == 0, "swapcontext failed");
  g_current = self;
}

void Fiber::rethrow_if_failed() {
  if (failure_) {
    std::exception_ptr e = failure_;
    failure_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace repseq::sim
