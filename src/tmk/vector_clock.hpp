// Vector timestamps over node (thread) ids.  Entry t of node p's clock is
// the most recent interval of thread t that precedes p's current interval in
// the happens-before partial order (paper Section 5.1).
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace repseq::tmk {

using NodeId = std::uint32_t;

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t nodes) : v_(nodes, 0) {}

  [[nodiscard]] std::size_t size() const { return v_.size(); }

  [[nodiscard]] std::uint32_t at(NodeId n) const { return v_[n]; }
  void set(NodeId n, std::uint32_t val) { v_[n] = val; }
  void bump(NodeId n) { ++v_[n]; }

  /// True when this clock already covers interval `index` of `owner`
  /// (i.e. that interval happens-before or equals our knowledge).
  [[nodiscard]] bool covers(NodeId owner, std::uint32_t index) const {
    return v_[owner] >= index;
  }

  /// Pairwise maximum (performed by the acquirer after a release message).
  void max_with(const VectorClock& o) {
    REPSEQ_CHECK(o.size() == size(), "vector clock size mismatch");
    for (std::size_t i = 0; i < v_.size(); ++i) v_[i] = std::max(v_[i], o.v_[i]);
  }

  /// Pointwise <=.
  [[nodiscard]] bool dominated_by(const VectorClock& o) const {
    REPSEQ_CHECK(o.size() == size(), "vector clock size mismatch");
    for (std::size_t i = 0; i < v_.size(); ++i) {
      if (v_[i] > o.v_[i]) return false;
    }
    return true;
  }

  /// Scalar Lamport projection: strictly increases along happens-before,
  /// usable to totally order interval records consistently with causality.
  [[nodiscard]] std::uint64_t lamport_sum() const {
    return std::accumulate(v_.begin(), v_.end(), std::uint64_t{0});
  }

  [[nodiscard]] bool operator==(const VectorClock& o) const = default;

  /// Serialized size on the wire (4 bytes per entry).
  [[nodiscard]] std::size_t wire_bytes() const { return 4 * v_.size(); }

 private:
  std::vector<std::uint32_t> v_;
};

}  // namespace repseq::tmk
