#include "net/tree_multicast_transport.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/pool_ptr.hpp"

namespace repseq::net {

void TreeMulticastTransport::multicast(const Message& msg, std::size_t wire_bytes,
                                       const DeliverFn& deliver, const AccountFn& account) {
  const std::size_t n = nics_.size();
  if (n <= 1) return;
  const std::size_t k = std::max<std::size_t>(1, cfg_.mcast_tree_fanout);
  // Group-affine root with a coalescing window (all sends of a group share
  // one tree; see the header comment), sender-rooted without one.  The
  // group's root sticks to its first sender: in the round protocols that
  // dominate our traces that is the section owner multicasting its write
  // notices, so the group's dominant sender never pays an injection hop.
  NodeId root = msg.src;
  if (cfg_.batch_window.ns > 0) {
    root = roots_.try_emplace(msg.mcast_group, msg.src).first->second;
  }
  // The callbacks outlive this call: interior hops run as scheduled events
  // at their parents' arrival instants, so the flight state is shared by
  // (and kept alive through) every pending forwarding event.
  auto fl = util::make_pooled<Flight>(Flight{msg.src, root, n, k, wire_bytes,
                                             msg.payload_bytes,
                                             shard_of(msg.mcast_group, shard_count()), deliver,
                                             account});
  if (root == msg.src) {
    forward_children(fl, 0);
    return;
  }
  // Injection: one ordinary switched unicast carries the frame from the
  // sender to the group's tree root.  It rides the same piggyback queues as
  // any tree hop (the sender's several in-flight injections -- and any tree
  // forwards it owes on the same edge -- leave as one frame), and a lost
  // injection prunes the tree descent before a single tree hop is charged.
  enqueue_hop(msg.src, root, fl, 0);
  // The sender holds the payload natively, so its own subtree needs no
  // wave: it forwards its children right now, off the injection's critical
  // path, and the descent never transmits the edge into the sender's
  // position (forward_children skips it).
  forward_children(fl, (std::size_t{msg.src} + n - root) % n);
}

void TreeMulticastTransport::forward_children(const util::PoolPtr<const Flight>& fl,
                                              std::size_t pos) {
  // The node at `pos` holds the complete frame as of now (the root at send
  // time, an interior node at its arrival event), so its child transmissions
  // reserve its uplink starting now -- serialized in true arrival order with
  // any unrelated traffic that node sends.  Store-and-forward semantics: a
  // child whose frame was consumed by loss injection (deliver returned
  // false) has nothing to forward, so its whole subtree is cut off without
  // transmitting -- or charging -- a single downstream hop.
  for (std::size_t c = fl->fanout * pos + 1; c <= fl->fanout * pos + fl->fanout; ++c) {
    if (c >= fl->nodes) break;
    // The sender's position needs neither the frame (it holds the payload
    // natively) nor a forwarding trigger (its subtree went out at send
    // time): the wave flows around it.  Unreachable when the sender is the
    // root -- every descent position is then a true receiver.
    if (fl->node_at(c) == fl->src) continue;
    if (cfg_.batch_window.ns > 0) {
      enqueue_hop(fl->node_at(pos), fl->node_at(c), fl, c);
      continue;
    }
    const sim::SimTime at =
        forward_hop(fl->node_at(pos), fl->node_at(c), fl->wire_bytes, eng_.now());
    if (obs::enabled(obs::Cat::Net)) [[unlikely]] {
      obs::tracer().instant(obs::Cat::Net, eng_.now(),
                            static_cast<std::int32_t>(fl->node_at(pos)) + 1, "net-tree",
                            "tree-hop",
                            {{"child", static_cast<double>(fl->node_at(c))},
                             {"wire_bytes", static_cast<double>(fl->wire_bytes)}});
    }
    busy_[fl->shard] += cfg_.link_tx_time(fl->wire_bytes);
    fl->account(1, fl->wire_bytes);
    if (fl->deliver(fl->node_at(c), at)) {
      eng_.schedule_at(at, [this, fl, c] { forward_children(fl, c); });
    }
  }
}

void TreeMulticastTransport::enqueue_hop(NodeId parent, NodeId child,
                                         const util::PoolPtr<const Flight>& fl,
                                         std::size_t child_pos) {
  const std::uint64_t key = edge_key(parent, child);
  Edge& e = edges_[key];
  if (e.window_open) {
    e.q.push_back(PendingHop{fl, child_pos});
    return;
  }
  // Idle edge: the frame leaves at once and opens the window behind it, so
  // the first frame of a burst -- and every step of a chained round -- pays
  // no coalescing delay; only the pile-up does.
  e.window_open = true;
  eng_.schedule_in(cfg_.batch_window, [this, key] { flush_edge(key); });
  transmit_hops(parent, child, {PendingHop{fl, child_pos}});
}

void TreeMulticastTransport::flush_edge(std::uint64_t key) {
  Edge& e = edges_[key];
  if (e.q.empty()) {
    // Nothing arrived while the window was open: the edge goes idle and the
    // next hop will again leave immediately.
    e.window_open = false;
    return;
  }
  const std::vector<PendingHop> hops = std::move(e.q);
  e.q.clear();
  // Traffic is still flowing on this edge: re-arm the window so a sustained
  // stream keeps leaving as one combined frame per window.
  eng_.schedule_in(cfg_.batch_window, [this, key] { flush_edge(key); });
  transmit_hops(static_cast<NodeId>(key >> 32), static_cast<NodeId>(key & 0xffffffffu), hops);
}

void TreeMulticastTransport::transmit_hops(NodeId parent, NodeId child,
                                           const std::vector<PendingHop>& hops) {
  // One wire frame carries every queued flight's payload across this edge:
  // concatenated payloads under one set of headers.
  std::size_t payload_total = 0;
  for (const PendingHop& h : hops) payload_total += h.fl->payload_bytes;
  const std::size_t wire = cfg_.wire_bytes(payload_total);
  const sim::SimTime at = forward_hop(parent, child, wire, eng_.now());
  if (obs::enabled(obs::Cat::Net)) [[unlikely]] {
    obs::tracer().instant(obs::Cat::Net, eng_.now(), static_cast<std::int32_t>(parent) + 1,
                          "net-tree", "tree-hop",
                          {{"child", static_cast<double>(child)},
                           {"coalesced", static_cast<double>(hops.size())},
                           {"wire_bytes", static_cast<double>(wire)}});
  }
  busy_[hops.front().fl->shard] += cfg_.link_tx_time(wire);

  // Carrier/rider split (see transport.hpp): riders pay their payload
  // bytes, the carrier pays the frame, its own payload, and the headers.
  std::size_t rider_bytes = 0;
  for (std::size_t i = 1; i < hops.size(); ++i) {
    rider_bytes += hops[i].fl->payload_bytes;
    hops[i].fl->account(0, hops[i].fl->payload_bytes);
  }
  REPSEQ_CHECK(wire >= rider_bytes, "combined frame smaller than its riders' payloads");
  hops.front().fl->account(1, wire - rider_bytes);

  // Each constituent draws its own loss decision and, surviving, resumes
  // its own flight's forwarding from the child -- a lost rider prunes only
  // that flight's subtree, never its frame-mates'.  (A flight never hops
  // into its own sender: forward_children routes the wave around it.)
  for (const PendingHop& h : hops) {
    if (h.fl->deliver(child, at)) {
      eng_.schedule_at(at, [this, fl = h.fl, c = h.child_pos] { forward_children(fl, c); });
    }
  }
}

}  // namespace repseq::net
