#include "chk/checker.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "tmk/page.hpp"
#include "tmk/protocol.hpp"
#include "tmk/runtime.hpp"

namespace repseq::chk {

Mutation g_test_mutation = Mutation::None;

namespace {

const Config* g_forced_config = nullptr;
Config g_forced_storage;

/// How many access records a page accumulates before retired epochs are
/// collected, and how many coverage entries before dominated ones are.
constexpr std::size_t kAccessGcThreshold = 256;
constexpr std::size_t kCoverageGcThreshold = 128;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) { return fnv1a(h, &v, sizeof(v)); }

/// Compact nonzero rendering of a clock: "{0:3,1:7}".
std::string clock_str(const tmk::VectorClock& vc) {
  std::string out = "{";
  bool first = true;
  for (std::size_t i = 0; i < vc.size(); ++i) {
    const std::uint32_t v = vc.at(static_cast<tmk::NodeId>(i));
    if (v == 0) continue;
    if (!first) out += ",";
    first = false;
    out += std::to_string(i) + ":" + std::to_string(v);
  }
  out += "}";
  return out;
}

std::string site_str(std::uint32_t site) {
  return site == tmk::NodeRuntime::kNoSite ? std::string("-") : std::to_string(site);
}

}  // namespace

std::optional<std::uint8_t> parse_mask(const char* value, std::string* bad_token) {
  if (value == nullptr || *value == '\0') return std::uint8_t{0};
  std::uint8_t mask = 0;
  std::string tok;
  const char* p = value;
  for (;;) {
    if (*p == ',' || *p == '\0') {
      if (tok == "races") {
        mask |= static_cast<std::uint8_t>(Cat::Races);
      } else if (tok == "protocol") {
        mask |= static_cast<std::uint8_t>(Cat::Protocol);
      } else if (tok == "all") {
        mask |= kAllCats;
      } else {
        if (bad_token != nullptr) *bad_token = tok;
        return std::nullopt;
      }
      tok.clear();
      if (*p == '\0') break;
    } else {
      tok.push_back(*p);
    }
    ++p;
  }
  return mask;
}

std::uint8_t mask_from_env() {
  const char* v = std::getenv("REPSEQ_CHECK");
  std::string bad;
  const auto mask = parse_mask(v, &bad);
  if (!mask) {
    // A silently-misspelled checker axis would run the suite unchecked and
    // green: fail loud like every other REPSEQ_* axis.
    std::fprintf(stderr,
                 "error: unknown REPSEQ_CHECK category '%s'"
                 " (accepted: races|protocol|all, comma-separated)\n",
                 bad.c_str());
    std::exit(2);
  }
  return *mask;
}

ScopedConfig::ScopedConfig(std::uint8_t mask, bool abort_on_violation) {
  g_forced_storage = Config{mask, abort_on_violation};
  g_forced_config = &g_forced_storage;
}

ScopedConfig::~ScopedConfig() { g_forced_config = nullptr; }

Config effective_config() {
  if (g_forced_config != nullptr) return *g_forced_config;
  return Config{mask_from_env(), /*abort_on_violation=*/true};
}

// ---------------------------------------------------------------------------
// Checker
// ---------------------------------------------------------------------------

Checker::Checker(tmk::Cluster& cluster, Config cfg) : cluster_(cluster), cfg_(cfg) {
  const std::size_t n = cluster.node_count();
  shadow_.assign(n, tmk::VectorClock(n));
  snapshot_.assign(n, nullptr);
  last_index_.assign(n, 0);
  last_vc_.assign(n, tmk::VectorClock(n));
  sync_gen_.assign(n, 1);  // 1: a zero-initialized cache entry is never valid
  coverage_checked_.resize(n);
  sections_.resize(n);
}

void Checker::record_violation(const char* checker, std::string detail) {
  cluster_.metrics().counter("chk_violations", {{"checker", checker}}).inc();
  std::fprintf(stderr, "chk: VIOLATION [%s]\n%s\n", checker, detail.c_str());
  violations_.push_back(Violation{checker, std::move(detail)});
  if (cfg_.abort_on_violation) std::abort();
}

std::shared_ptr<const tmk::VectorClock> Checker::clock_snapshot(tmk::NodeId n) {
  if (snapshot_[n] == nullptr) snapshot_[n] = std::make_shared<tmk::VectorClock>(shadow_[n]);
  return snapshot_[n];
}

// ---- shadow happens-before -------------------------------------------------

void Checker::on_release(tmk::NodeId n) {
  if (!races()) return;
  shadow_[n].bump(n);
  snapshot_[n] = nullptr;
}

void Checker::on_acquire(tmk::NodeId n, const tmk::VectorClock& incoming) {
  if (!races() || incoming.size() == 0) return;
  shadow_[n].max_with(incoming);
  snapshot_[n] = nullptr;
}

void Checker::buffer_barrier_arrival(std::uint64_t barrier_seq,
                                     const tmk::VectorClock& incoming) {
  if (!races() || incoming.size() == 0) return;
  auto [it, inserted] =
      barrier_arrivals_.try_emplace(barrier_seq, tmk::VectorClock(cluster_.node_count()));
  it->second.max_with(incoming);
}

void Checker::on_barrier_complete(std::uint64_t barrier_seq) {
  auto it = barrier_arrivals_.find(barrier_seq);
  if (it == barrier_arrivals_.end()) return;
  shadow_[0].max_with(it->second);
  snapshot_[0] = nullptr;
  barrier_arrivals_.erase(it);
}

// ---- access events ---------------------------------------------------------

std::string Checker::describe(tmk::NodeId owner, const EpochRanges& er, bool write) {
  return std::string(write ? "write" : "read ") + " by node " + std::to_string(owner) +
         " (site " + site_str(er.site) + ", epoch " + std::to_string(er.epoch) + ", clock " +
         (er.clock != nullptr ? clock_str(*er.clock) : std::string("{}")) + ")";
}

namespace {

/// Inserts [lo, hi] into a sorted disjoint range list, merging neighbors.
void insert_range(std::vector<std::pair<std::uint32_t, std::uint32_t>>& rs, std::uint32_t lo,
                  std::uint32_t hi) {
  auto it = std::lower_bound(rs.begin(), rs.end(), lo,
                             [](const auto& r, std::uint32_t v) { return r.first < v; });
  // Merge left neighbor if adjacent/overlapping.
  if (it != rs.begin() && std::prev(it)->second + 1 >= lo) --it;
  if (it == rs.end() || it->first > hi + 1) {
    rs.insert(it, {lo, hi});
    return;
  }
  it->first = std::min(it->first, lo);
  it->second = std::max(it->second, hi);
  auto next = std::next(it);
  while (next != rs.end() && next->first <= it->second + 1) {
    it->second = std::max(it->second, next->second);
    next = rs.erase(next);
  }
}

[[nodiscard]] bool covered(const std::vector<std::pair<std::uint32_t, std::uint32_t>>& rs,
                           std::uint32_t lo, std::uint32_t hi) {
  auto it = std::upper_bound(rs.begin(), rs.end(), lo,
                             [](std::uint32_t v, const auto& r) { return v < r.first; });
  return it != rs.begin() && std::prev(it)->second >= hi;
}

/// First range in `rs` overlapping [lo, hi], or nullopt.
[[nodiscard]] std::optional<std::pair<std::uint32_t, std::uint32_t>> overlap(
    const std::vector<std::pair<std::uint32_t, std::uint32_t>>& rs, std::uint32_t lo,
    std::uint32_t hi) {
  auto it = std::upper_bound(rs.begin(), rs.end(), lo,
                             [](std::uint32_t v, const auto& r) { return v < r.first; });
  if (it != rs.begin() && std::prev(it)->second >= lo) it = std::prev(it);
  if (it == rs.end() || it->first > hi) return std::nullopt;
  return std::make_pair(std::max(it->first, lo), std::min(it->second, hi));
}

}  // namespace

void Checker::on_access(tmk::NodeRuntime& rt, tmk::GAddr addr, std::size_t bytes, bool write) {
  if (bytes == 0 || cluster_.node_count() < 2) return;
  const tmk::NodeId id = rt.id();
  const std::size_t pb = rt.config().page_bytes;
  const tmk::PageId first = tmk::page_of(addr, pb);
  const tmk::PageId last = tmk::page_of(addr + (bytes - 1), pb);
  const bool in_section = rt.in_replicated_section();
  for (tmk::PageId p = first; p <= last; ++p) {
    const auto lo = static_cast<std::uint32_t>(p == first ? tmk::page_offset(addr, pb) : 0);
    const auto hi = static_cast<std::uint32_t>(
        p == last ? tmk::page_offset(addr + (bytes - 1), pb) : pb - 1);
    if (protocol()) {
      if (write && in_section && sections_[id].active) {
        // Replica write-set recording: every node logs its section writes;
        // exit compares the digests.
        insert_range(sections_[id].writes[p], lo, hi);
      }
      if (rt.page(p).prot != tmk::PageProt::Invalid) coverage_check(rt, p);
    }
    if (races()) {
      // Inside a replicated section every node performs the same accesses;
      // node 0 stands in for the (logically single) section execution.
      if (!in_section || id == 0) race_check(rt, p, lo, hi, write);
    }
  }
}

void Checker::race_check(tmk::NodeRuntime& rt, tmk::PageId page, std::uint32_t lo,
                         std::uint32_t hi, bool write) {
  const tmk::NodeId id = rt.id();
  const std::uint32_t epoch = shadow_[id].at(id);
  PageAccesses& pa = accesses_[page];
  OwnerAccesses& own = pa.by_owner[id];
  if (own.epochs.empty() || own.epochs.back().epoch != epoch) {
    own.epochs.push_back(EpochRanges{epoch, rt.current_site(), clock_snapshot(id), {}, {}, {}});
    if (++pa.total_epochs > kAccessGcThreshold) gc_page(pa);
  }
  EpochRanges& cur = pa.by_owner[id].epochs.back();

  // A range already recorded this epoch was already scanned, and every
  // conflicting access since then scans symmetrically from its own side --
  // sequential loops hit this early-out after their first element.
  if (covered(cur.writes, lo, hi) || (!write && covered(cur.reads, lo, hi))) return;

  for (auto& [owner, oa] : pa.by_owner) {
    if (owner == id || oa.epochs.empty()) continue;
    // Epochs below this are ordered before the current access (the
    // releasing bump that published them has reached us); the reverse
    // direction cannot hold -- happens-before edges follow messages, which
    // follow simulated time.  Whole-owner skip: in a barrier-synchronized
    // program nearly every group is fully ordered at access time.
    const std::uint32_t ordered_below = shadow_[id].at(owner);
    if (oa.epochs.back().epoch < ordered_below) continue;
    for (auto it = oa.epochs.rbegin(); it != oa.epochs.rend() && it->epoch >= ordered_below;
         ++it) {
      auto w = overlap(it->writes, lo, hi);
      auto r = write ? overlap(it->reads, lo, hi) : std::nullopt;
      if (!w && !r) continue;
      const std::pair<std::uint32_t, std::uint32_t> pair_key{owner, it->epoch};
      if (std::find(cur.reported.begin(), cur.reported.end(), pair_key) != cur.reported.end()) {
        continue;  // this epoch pair was already reported
      }
      cur.reported.push_back(pair_key);
      const auto [olo, ohi] = w ? *w : *r;
      record_violation("race", "  data race on page " + std::to_string(page) + " bytes [" +
                                   std::to_string(olo) + "," + std::to_string(ohi) +
                                   "]\n  earlier: " + describe(owner, *it, w.has_value()) +
                                   "\n  later:   " + describe(id, cur, write));
    }
  }

  insert_range(write ? cur.writes : cur.reads, lo, hi);
}

void Checker::gc_page(PageAccesses& pa) {
  // An epoch is retired once EVERY other node's shadow orders it: no future
  // access can race with it.  min over p != q of shadow_[p][q] bounds the
  // epochs of q still racing-eligible from some node's perspective.
  const std::size_t n = cluster_.node_count();
  std::vector<std::uint32_t> settled(n, UINT32_MAX);
  for (std::size_t p = 0; p < n; ++p) {
    for (std::size_t q = 0; q < n; ++q) {
      if (p == q) continue;
      settled[q] = std::min(settled[q], shadow_[p].at(static_cast<tmk::NodeId>(q)));
    }
  }
  pa.total_epochs = 0;
  for (auto& [owner, oa] : pa.by_owner) {
    std::erase_if(oa.epochs,
                  [&](const EpochRanges& er) { return er.epoch < settled[owner]; });
    pa.total_epochs += oa.epochs.size();
  }
}

// ---- protocol oracles ------------------------------------------------------

void Checker::on_interval_commit(tmk::NodeRuntime& rt, const tmk::IntervalRecordPtr& rec) {
  const tmk::NodeId n = rec->owner;
  ++sync_gen_[n];
  if (!protocol()) return;
  if (rec->index != last_index_[n] + 1) {
    record_violation("interval-monotonicity",
                     "  node " + std::to_string(n) + " committed interval " +
                         std::to_string(rec->index) + " after " + std::to_string(last_index_[n]) +
                         " (indices must be consecutive)");
  }
  if (rec->vc.at(n) != rec->index) {
    record_violation("interval-monotonicity",
                     "  node " + std::to_string(n) + " interval " + std::to_string(rec->index) +
                         " carries own-component " + std::to_string(rec->vc.at(n)) +
                         " (clock and index must agree)");
  }
  if (!last_vc_[n].dominated_by(rec->vc)) {
    record_violation("interval-monotonicity",
                     "  node " + std::to_string(n) + " interval " + std::to_string(rec->index) +
                         " clock " + clock_str(rec->vc) + " does not dominate predecessor " +
                         clock_str(last_vc_[n]));
  }
  last_index_[n] = rec->index;
  last_vc_[n] = rec->vc;

  for (tmk::PageId p : rec->pages) {
    auto& entries = coverage_[p];
    entries.emplace_back(n, rec->index);
    if (entries.size() > kCoverageGcThreshold) {
      // Drop entries every node's copy already incorporates.
      const auto n_nodes = static_cast<tmk::NodeId>(cluster_.node_count());
      std::erase_if(entries, [&](const std::pair<tmk::NodeId, std::uint32_t>& e) {
        for (tmk::NodeId x = 0; x < n_nodes; ++x) {
          if (!cluster_.node(x).page(p).valid_vc.covers(e.first, e.second)) return false;
        }
        return true;
      });
    }
  }
  (void)rt;
}

void Checker::on_sync_merge(tmk::NodeId n) { ++sync_gen_[n]; }

void Checker::coverage_check(tmk::NodeRuntime& rt, tmk::PageId page) {
  auto cit = coverage_.find(page);
  if (cit == coverage_.end()) return;
  const tmk::NodeId id = rt.id();
  auto [chit, inserted] = coverage_checked_[id].try_emplace(page, 0);
  if (chit->second == sync_gen_[id]) return;  // knowledge unchanged since last pass
  chit->second = sync_gen_[id];
  const tmk::PageState& ps = rt.page(page);
  for (const auto& [owner, index] : cit->second) {
    if (owner == id) continue;
    if (!rt.vc().covers(owner, index)) continue;  // not yet known here
    if (!ps.valid_vc.covers(owner, index)) {
      record_violation(
          "write-notice-coverage",
          "  node " + std::to_string(id) + " holds page " + std::to_string(page) +
              " valid without interval (" + std::to_string(owner) + "," + std::to_string(index) +
              ") it knows of -- a write notice failed to invalidate this copy\n  node clock " +
              clock_str(rt.vc()) + ", page validity " + clock_str(ps.valid_vc));
    }
  }
}

void Checker::on_diff_apply(tmk::NodeRuntime& rt, const tmk::DiffPacket& pkt) {
  if (!protocol()) return;
  std::uint32_t newest = 0;
  for (std::uint32_t i : pkt.covers) {
    if (i <= rt.log().known(pkt.owner)) newest = std::max(newest, i);
  }
  if (newest == 0) return;
  const tmk::VectorClock& cover_vc = rt.log().get(pkt.owner, newest).vc;
  for (const tmk::IntervalRecordPtr& r : rt.page(pkt.page).pending) {
    if (r->owner == pkt.owner &&
        std::find(pkt.covers.begin(), pkt.covers.end(), r->index) != pkt.covers.end()) {
      continue;  // satisfied by this very packet
    }
    // The covering interval's clock knowing the pending interval means the
    // pending one happens-before it: its diff must land FIRST, or the later
    // application will clobber this packet's newer data (the PR 4 class).
    if (cover_vc.covers(r->owner, r->index)) {
      record_violation(
          "diff-apply-causality",
          "  node " + std::to_string(rt.id()) + " applies diff (" + std::to_string(pkt.owner) +
              "," + std::to_string(newest) + ") to page " + std::to_string(pkt.page) +
              " while causally earlier notice (" + std::to_string(r->owner) + "," +
              std::to_string(r->index) + ") is still pending\n  applied interval clock " +
              clock_str(cover_vc) + " covers the pending interval " + clock_str(r->vc));
    }
  }
}

void Checker::on_page_revalidate(tmk::NodeRuntime& rt, tmk::PageId page) {
  if (!protocol()) return;
  coverage_checked_[rt.id()].erase(page);  // force a fresh pass at the flip
  coverage_check(rt, page);
}

void Checker::on_section_enter(tmk::NodeRuntime& rt, std::uint32_t site) {
  SectionState& s = sections_[rt.id()];
  s.active = true;
  s.site = site;
  s.writes.clear();
}

void Checker::on_section_exit(tmk::NodeRuntime& rt) {
  SectionState& s = sections_[rt.id()];
  const std::uint64_t no = s.section_no++;
  s.active = false;
  if (!protocol()) {
    s.writes.clear();
    return;
  }
  // Digest the section's write set: sorted (page, lo, hi) ranges plus the
  // bytes they hold at exit.  Replicated execution is only sound if every
  // node wrote the same data; divergence (a node-id-dependent body, an
  // unreplicated side effect) is exactly what this catches.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const auto& [page, ranges] : s.writes) {  // insert_range kept these sorted+disjoint
    const std::span<const std::byte> span = std::as_const(rt).page_span(page);
    for (const auto& [lo, hi] : ranges) {
      h = fnv1a_u64(h, page);
      h = fnv1a_u64(h, lo);
      h = fnv1a_u64(h, hi);
      h = fnv1a(h, span.data() + lo, hi - lo + 1);
    }
  }
  s.writes.clear();

  SectionDigest& d = section_digests_[no];
  if (d.reported == 0) {
    d.hash = h;
    d.first_node = rt.id();
  } else if (h != d.hash) {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "  replicated section #%llu (site %s): node %u write-set digest %016llx"
                  " != node %u digest %016llx",
                  static_cast<unsigned long long>(no), site_str(s.site).c_str(), rt.id(),
                  static_cast<unsigned long long>(h), d.first_node,
                  static_cast<unsigned long long>(d.hash));
    record_violation("replica-write-set", buf);
  }
  if (++d.reported == cluster_.node_count()) section_digests_.erase(no);
}

void Checker::on_round_start(std::size_t shard, std::uint64_t round) {
  if (!protocol()) return;
  ShardRound& r = rounds_[shard];
  if (r.in_flight) {
    record_violation("round-serialization",
                     "  round " + std::to_string(round) + " started on shard " +
                         std::to_string(shard) + " while round " + std::to_string(r.active) +
                         " is still in flight");
  }
  if (round <= r.last_started) {
    record_violation("round-serialization",
                     "  round numbers must be strictly increasing per shard: shard " +
                         std::to_string(shard) + " started " + std::to_string(round) + " after " +
                         std::to_string(r.last_started));
  }
  r.in_flight = true;
  r.active = round;
  r.last_started = std::max(r.last_started, round);
}

void Checker::on_round_finish(std::size_t shard, std::uint64_t round) {
  if (!protocol()) return;
  ShardRound& r = rounds_[shard];
  if (!r.in_flight || r.active != round) {
    record_violation("round-serialization",
                     "  finish of round " + std::to_string(round) + " on shard " +
                         std::to_string(shard) +
                         (r.in_flight ? " but round " + std::to_string(r.active) + " is active"
                                      : " with no round in flight"));
  }
  r.in_flight = false;
}

}  // namespace repseq::chk
