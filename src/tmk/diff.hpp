// Diffs: the multiple-writer protocol's unit of update propagation.
//
// A diff is the run-length encoding of the words that changed between a
// page's twin (copy taken at the first write) and its current contents
// (paper Section 2.2.2).  Applying a diff overwrites exactly those words,
// which is what lets concurrent writers to disjoint parts of a page merge
// without false-sharing ping-pong.
//
// Storage is contiguous: one vector of fixed-size run headers plus one
// vector holding every carried word, sized exactly in a counting pre-pass.
// The previous vector-of-vectors layout paid one heap allocation (plus
// growth reallocations) per run; diff creation sits on the fault-service
// hot path, so at 256+ nodes that was a measurable slice of the run.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "util/pool_ptr.hpp"

namespace repseq::tmk {

class Diff {
 public:
  /// One run of modified 32-bit words, viewed in place (`values` aliases
  /// the diff's contiguous word buffer -- valid while the Diff lives).
  struct RunView {
    std::uint32_t word_index;               // offset within the page, in words
    std::span<const std::uint32_t> values;  // new values
  };

  /// Indexable, iterable view over the runs.
  class RunRange {
   public:
    class iterator {
     public:
      iterator(const Diff* d, std::size_t i) : d_(d), i_(i) {}
      RunView operator*() const { return d_->run(i_); }
      iterator& operator++() {
        ++i_;
        return *this;
      }
      [[nodiscard]] bool operator!=(const iterator& o) const { return i_ != o.i_; }

     private:
      const Diff* d_;
      std::size_t i_;
    };

    explicit RunRange(const Diff* d) : d_(d) {}
    [[nodiscard]] std::size_t size() const { return d_->headers_.size(); }
    [[nodiscard]] bool empty() const { return d_->headers_.empty(); }
    [[nodiscard]] RunView operator[](std::size_t i) const { return d_->run(i); }
    [[nodiscard]] iterator begin() const { return {d_, 0}; }
    [[nodiscard]] iterator end() const { return {d_, size()}; }

   private:
    const Diff* d_;
  };

  /// Builds the diff `twin -> current`.  Both spans must be the same size,
  /// a multiple of 4 bytes.
  static Diff create(std::span<const std::byte> twin, std::span<const std::byte> current);

  /// Overwrites the runs into `page`.
  void apply(std::span<std::byte> page) const;

  [[nodiscard]] bool empty() const { return headers_.empty(); }
  [[nodiscard]] RunRange runs() const { return RunRange{this}; }

  /// Number of words carried.
  [[nodiscard]] std::size_t word_count() const { return words_.size(); }

  /// Encoded size on the wire: per-run header (index + length, 8 bytes)
  /// plus 4 bytes per word, plus a fixed page/interval header.
  [[nodiscard]] std::size_t wire_bytes() const {
    return 12 + 8 * headers_.size() + 4 * words_.size();
  }

 private:
  friend class RunRange;

  struct RunHeader {
    std::uint32_t word_index;  // offset within the page, in words
    std::uint32_t begin;       // offset of the run's words in words_
    std::uint32_t length;      // run length in words
  };

  [[nodiscard]] RunView run(std::size_t i) const {
    const RunHeader& h = headers_[i];
    return {h.word_index, {words_.data() + h.begin, h.length}};
  }

  std::vector<RunHeader> headers_;
  std::vector<std::uint32_t> words_;
};

using DiffPtr = util::PoolPtr<const Diff>;

}  // namespace repseq::tmk
