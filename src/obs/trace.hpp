// Virtual-time span/instant tracer emitting Chrome trace-event JSON
// (loadable in Perfetto / chrome://tracing).
//
// Design constraints, in order:
//   * Determinism: every timestamp is virtual sim time; recording an event
//     allocates from slab-backed per-process ring buffers and never consults
//     the host clock, so a traced run's checksums and interval vectors are
//     bit-identical to an untraced one.
//   * Zero overhead when disabled: every hook in sim/net/tmk/rse guards on
//     obs::enabled(cat), a single load-and-test of the global category mask.
//     With REPSEQ_TRACE unset the mask is zero and no argument is ever
//     evaluated.
//   * No hot-path strings: event and track names are string literals (or
//     pointers interned once via Tracer::intern); argument keys likewise.
//
// Perfetto mapping: simulated nodes are processes (pid = node id + 1; pid 0
// is the cluster-global "cluster" process for engine/wire events), and
// fibers / protocol phases are threads (tracks) within them.  Span (B/E)
// events on one track always nest -- per-fiber tracks make that hold across
// fiber suspension -- while anything that can overlap (batch windows, tree
// hops, fiber switches, watchdog ticks) is an instant.
//
// Lifecycle: tmk::Cluster re-reads REPSEQ_TRACE / REPSEQ_TRACE_FILTER at
// construction and writes the file (overwriting) at destruction, so each
// Cluster in a sweep produces a complete trace and the last one wins.
#pragma once

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "sim/clock.hpp"

namespace repseq::obs {

/// Trace categories, one per instrumented layer.  Values are mask bits.
enum class Cat : std::uint8_t {
  Sim = 1u << 0,  // event-queue depth, fiber switches
  Net = 1u << 1,  // frame sends, tree hops, batch windows, loss drops
  Tmk = 1u << 2,  // page faults, diff create/apply, interval commits
  Rse = 1u << 3,  // section brackets, rounds, watchdogs, policy decisions
};

inline constexpr std::uint8_t kAllCats = 0x0f;

[[nodiscard]] const char* cat_name(Cat c);

/// The global category mask: zero when tracing is off.  Hooks test this
/// before evaluating any argument -- the entire disabled-mode cost.
extern std::uint8_t g_cat_mask;

[[nodiscard]] inline bool enabled(Cat c) {
  return (g_cat_mask & static_cast<std::uint8_t>(c)) != 0;
}

/// One typed argument: literal (or interned) key, numeric value.  Doubles
/// carry every counter/cost the layers record; integers up to 2^53 print
/// exactly.
struct Arg {
  const char* key;
  double value;
};

class Tracer {
 public:
  static constexpr std::size_t kMaxArgs = 12;
  /// Events per slab; slabs are the ring-buffer eviction unit.
  static constexpr std::size_t kSlabEvents = 4096;
  /// Per-process slab cap (drop-oldest past this): bounds a runaway trace
  /// at ~1M events per process.
  static constexpr std::size_t kMaxSlabsPerProcess = 256;

  static Tracer& instance();

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Re-reads REPSEQ_TRACE (output path; unset disables) and
  /// REPSEQ_TRACE_FILTER (comma list of sim|net|tmk|rse; unset = all).
  /// Clears any buffered events.  A malformed filter fails loud (exit 2),
  /// matching the bench env-axis convention.
  void configure_from_env();

  /// Programmatic configuration (tests): empty path disables.
  void configure(std::string path, std::uint8_t mask = kAllCats);

  [[nodiscard]] bool active() const { return g_cat_mask != 0; }
  [[nodiscard]] const std::string& path() const { return path_; }

  /// Interns a dynamic name (fiber names, per-shard track names) so hooks
  /// can hand the event buffer a stable const char*.
  [[nodiscard]] const char* intern(const std::string& s);

  /// Names a Perfetto process (pid 0 = "cluster", pid n+1 = "node-n").
  void set_process_name(std::int32_t pid, const std::string& name);

  // ---- recording (callers must have checked enabled(cat)) ----

  void begin(Cat cat, sim::SimTime t, std::int32_t pid, const char* track,
             const char* name, std::initializer_list<Arg> args = {});
  void end(Cat cat, sim::SimTime t, std::int32_t pid, const char* track,
           std::initializer_list<Arg> args = {});
  void instant(Cat cat, sim::SimTime t, std::int32_t pid, const char* track,
               const char* name, std::initializer_list<Arg> args = {});
  void counter(Cat cat, sim::SimTime t, std::int32_t pid, const char* name,
               double value);

  /// Events currently buffered across all processes (observability for
  /// tests and the writer).
  [[nodiscard]] std::size_t event_count() const;
  /// Slabs evicted by ring overflow since configure (their events are gone;
  /// the writer heals the orphaned span ends).
  [[nodiscard]] std::uint64_t slabs_dropped() const { return slabs_dropped_; }

  /// Sorts the merged buffers by (virtual time, global sequence), repairs
  /// span nesting (drops E events orphaned by ring eviction, closes spans
  /// left open), writes Chrome trace JSON to path(), and clears the
  /// buffers.  No-op when inactive or empty.  Returns events written.
  std::size_t write();

 private:
  Tracer() = default;

  struct Event {
    std::int64_t ts_ns;
    std::uint64_t seq;
    std::int32_t pid;
    char ph;  // 'B', 'E', 'i', 'C'
    const char* track;
    const char* name;
    std::uint8_t cat_bit;
    std::uint8_t nargs;
    const char* keys[kMaxArgs];
    double vals[kMaxArgs];
  };

  /// Slab-backed ring of one process's events: recording appends to the
  /// last slab, overflow past the cap drops the oldest slab whole.
  struct Ring {
    std::vector<std::unique_ptr<std::vector<Event>>> slabs;
  };

  Event& push(Cat cat, char ph, sim::SimTime t, std::int32_t pid, const char* track,
              const char* name, std::initializer_list<Arg> args);

  std::string path_;
  std::map<std::int32_t, Ring> rings_;
  std::map<std::int32_t, std::string> process_names_;
  std::set<std::string> interned_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t slabs_dropped_ = 0;
};

[[nodiscard]] inline Tracer& tracer() { return Tracer::instance(); }

}  // namespace repseq::obs
