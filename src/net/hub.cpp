#include "net/hub.hpp"

namespace repseq::net {

sim::SimTime Hub::transmit(std::size_t wire_bytes, sim::SimTime ready) {
  const sim::SimTime start = std::max({eng_.now(), ready, medium_free_});
  const sim::SimDuration tx = cfg_.hub_tx_time(wire_bytes);
  medium_free_ = start + tx;
  busy_total_ += tx;
  return medium_free_ + cfg_.hub_latency;
}

}  // namespace repseq::net
