#include "net/nic.hpp"

#include <algorithm>

namespace repseq::net {

sim::SimTime Nic::reserve_uplink(std::size_t wire_bytes, sim::SimTime ready) {
  const sim::SimTime start = std::max({eng_.now(), ready, uplink_free_});
  const auto tx_ns = static_cast<std::int64_t>(
      static_cast<double>(wire_bytes) / cfg_.link_bytes_per_sec * 1e9);
  uplink_free_ = start + sim::SimDuration{tx_ns};
  return uplink_free_;
}

bool Nic::deliver(Message msg) {
  if (inbox_.size() >= cfg_.recv_buffer_msgs && (!droppable_ || droppable_(msg))) {
    ++drops_;
    return false;
  }
  inbox_.push(std::move(msg));
  return true;
}

}  // namespace repseq::net
