// Ilink-style genetic linkage analysis, the paper's second evaluation
// application (Section 6.2).
//
// The paper used the real Ilink code on the proprietary CLP pedigree; this
// module is a from-scratch workload with the same algorithmic structure
// (the parallel algorithm of Dwarkadas et al. as the paper describes it):
//
//   * a pool ("bank") of genarrays sized for the largest nuclear family,
//     reused for every family;
//   * an index array of non-zero entries per genarray (sparse);
//   * on every move to a new nuclear family the master reinitializes the
//     whole pool -- the severe contention point;
//   * each member update is parallelized over the non-zero elements,
//     assigned cyclically, *if* the work exceeds a threshold (the OpenMP
//     `if` clause); threads write a densely packed contribution buffer
//     (cyclic false sharing, merged by the multiple-writer protocol);
//   * the master sums the contributions back into the member's genarray.
//
// All arithmetic is exact in doubles (integer-valued, bounded well below
// 2^53), so results across Sequential / Original / Optimized runs must be
// bit-identical -- the verification hook for every mode and flow-control
// policy.
#pragma once

#include <cstdint>
#include <vector>

#include "ompnow/team.hpp"
#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

namespace repseq::apps::ilink {

/// Static section-site ids (adaptive-policy telemetry keys): the pool
/// reinitialization on every family move (write-heavy, the severe
/// contention point), the master's summation of the threads' contribution
/// buffers (read fan-in, small write set), and the below-threshold member
/// update that stays in the sequential flow (the OpenMP `if` clause).
inline constexpr std::uint32_t kSectionPoolInit = 1;
inline constexpr std::uint32_t kSectionSumContrib = 2;
inline constexpr std::uint32_t kSectionSerialUpdate = 3;

struct IlinkConfig {
  int families = 4;           // nuclear families in the pedigree
  int children = 4;           // children per nuclear family
  int genotypes = 2048;       // genarray length (doubles)
  int iterations = 8;         // likelihood evaluations (paper's CLP: 180)
  int min_nonzero = 256;      // sparsity range per member
  int max_nonzero = 1024;
  int threshold = 192;        // parallelize only above this non-zero count
  std::uint64_t seed = 0x11aa22bb;

  // ---- CPU cost model ----
  // Updating one non-zero genarray element conditions it on every genotype
  // combination of the other family members -- a heavy kernel (hundreds of
  // microseconds on an 800 MHz machine).  Calibrated so the base system
  // lands in the paper's regime: ~2x speedup on 32 nodes with the parallel
  // sections dominated by genarray fan-out waits.
  sim::SimDuration cost_element = sim::microseconds(300);  // per non-zero update
  sim::SimDuration cost_init_element = sim::nanoseconds(40);
  sim::SimDuration cost_sum_element = sim::nanoseconds(60);

  [[nodiscard]] int pool_persons() const { return 2 + children; }
};

struct IlinkResult {
  double likelihood = 0.0;  // exact integer-valued checksum
  std::uint64_t parallel_updates = 0;
  std::uint64_t serial_updates = 0;  // below-threshold (if-clause) updates
  sim::SimDuration total_time{};
  sim::SimDuration seq_time{};
  sim::SimDuration par_time{};
};

struct IlinkWorld {
  /// The genarray pool: pool_persons() x genotypes, page aligned per person.
  tmk::ShArray<double> pool;
  std::size_t person_stride = 0;  // doubles per person slot
  /// The contribution buffer, indexed by *position* in the member's
  /// non-zero list and shared by all threads (cyclic ownership).  Densely
  /// packed, exactly the false-sharing pattern the multiple-writer protocol
  /// absorbs; the master's summation reads it back as a handful of pages
  /// carrying one diff per writer.
  tmk::ShArray<double> contrib;
  /// Non-zero index lists per (family, person), flattened host-side copy
  /// shared by every node (static pedigree structure, computed from the
  /// seed; in the real program this comes from the input file).
  std::vector<std::vector<std::vector<std::uint32_t>>> nonzeros;
};

IlinkWorld setup_world(tmk::Cluster& cluster, const IlinkConfig& cfg);

/// Runs the full evaluation loop on the master fiber.
IlinkResult run_program(tmk::Cluster& cluster, ompnow::Team& team, const IlinkWorld& w,
                        const IlinkConfig& cfg);

}  // namespace repseq::apps::ilink
