#include "net/transport.hpp"

#include "net/batching_transport.hpp"
#include "net/direct_all_transport.hpp"
#include "net/hub_switch_transport.hpp"
#include "net/sharded_hub_transport.hpp"
#include "net/tree_multicast_transport.hpp"
#include "util/check.hpp"

namespace repseq::net {

namespace {

std::unique_ptr<Transport> make_backend(sim::Engine& eng, const NetConfig& cfg,
                                        std::vector<std::unique_ptr<Nic>>& nics) {
  switch (cfg.transport) {
    case TransportKind::HubSwitch:
      return std::make_unique<HubSwitchTransport>(eng, cfg, nics);
    case TransportKind::TreeMulticast:
      return std::make_unique<TreeMulticastTransport>(eng, cfg, nics);
    case TransportKind::DirectAll:
      return std::make_unique<DirectAllTransport>(eng, cfg, nics);
    case TransportKind::ShardedHub:
      return std::make_unique<ShardedHubTransport>(eng, cfg, nics);
  }
  REPSEQ_CHECK(false, "unknown transport kind");
}

}  // namespace

std::unique_ptr<Transport> make_transport(sim::Engine& eng, const NetConfig& cfg,
                                          std::vector<std::unique_ptr<Nic>>& nics) {
  auto backend = make_backend(eng, cfg, nics);
  // A zero window never wraps: behaviour (frames, events, loss draws) stays
  // bit-identical to the bare backend, which the invariance suite pins.
  if (cfg.batch_window.ns > 0) {
    return std::make_unique<BatchingTransport>(eng, cfg, nics, std::move(backend));
  }
  return backend;
}

}  // namespace repseq::net
