// Typed message-dispatch registry for the per-node request server.
//
// Each Message::Kind has exactly one registered handler.  The tmk base
// protocol registers its handlers at Cluster construction
// (NodeRuntime::register_base_protocol); protocol extensions -- the RSE
// engine's flow-control variants -- register theirs through the RseHooks
// seam when they attach.  The dispatcher fiber then routes every inbound
// message through dispatch(), which replaces the monolithic switch that
// previously fused all protocol handling into NodeRuntime.
#pragma once

#include <functional>
#include <unordered_map>

#include "net/message.hpp"
#include "tmk/protocol.hpp"

namespace repseq::tmk {

class NodeRuntime;

class ProtocolEngine {
 public:
  /// Handlers run on the destination node's dispatcher fiber.
  using Handler = std::function<void(NodeRuntime&, const net::Message&)>;

  /// Registers the handler for `kind`.  Double registration is a protocol
  /// wiring bug (two subsystems claiming one kind) and aborts.
  void on(MsgKind kind, Handler h);

  [[nodiscard]] bool handles(MsgKind kind) const {
    return handlers_.contains(static_cast<std::uint32_t>(kind));
  }

  [[nodiscard]] std::size_t handler_count() const { return handlers_.size(); }

  /// Routes `msg` to its handler; returns false when no handler is
  /// registered for the message's kind.
  bool dispatch(NodeRuntime& rt, const net::Message& msg) const;

 private:
  std::unordered_map<std::uint32_t, Handler> handlers_;
};

}  // namespace repseq::tmk
