// Closed-form per-strategy cost estimates for one sequential section --
// the paper's Section 4 analysis as arithmetic over per-site telemetry.
//
// Every input is a protocol-level count (pages written, stale pages read,
// post-section faults): counts are identical across transport backends and
// shard counts, so the decisions derived from them are too.  Wall-clock
// times and wire frame/byte counters both vary with the backend and are
// deliberately excluded -- feeding them back would make the decision
// sequence timing-dependent.  The constants come from the calibrated
// NetConfig/TmkConfig scalars (software overheads, hub rate, page size),
// which a transport choice does not alter.
#pragma once

#include <cstdint>

#include "net/net_config.hpp"
#include "rse/policy/policy.hpp"
#include "tmk/config.hpp"

namespace repseq::rse::policy {

/// Transport-invariant telemetry for one section site, EWMA-smoothed over
/// its occurrences.
struct SectionProfile {
  std::uint64_t runs = 0;

  /// Pages the section body writes.  Measured under MasterOnly (newly
  /// dirtied pages) and BroadcastAfter (the closed interval's page list);
  /// replicated execution leaves no write trace by design (Section 5.2), so
  /// the last measured value carries -- section sites have stable static
  /// write sets, which is the premise of per-site policies.
  double pages_written = 0;

  /// Stale pages the section reads: master faults under MasterOnly and
  /// BroadcastAfter, flow-controlled multicast rounds under Replicated.
  double faults_in = 0;

  /// Measured post-section contention, per strategy that actually ran:
  /// diff messages/bytes converging on the *master* during the aftermath
  /// window (the paper's Section 3 queue).  Counting master-side traffic
  /// rather than cluster-wide faults keeps background contention -- e.g.
  /// faults on pages other parallel threads wrote, served evenly by all
  /// nodes -- from being attributed to the section.  Parallel-phase diff
  /// traffic is unicast, and every backend shares the switched unicast
  /// path, so both counters are transport-invariant.  tried[] gates the
  /// prediction fallback in CostModel.
  double after_msgs[kStrategyCount] = {0, 0, 0};
  double after_bytes[kStrategyCount] = {0, 0, 0};
  std::uint64_t tried[kStrategyCount] = {0, 0, 0};
};

class CostModel {
 public:
  CostModel(const tmk::TmkConfig& tmk, const net::NetConfig& net, std::size_t nodes);

  /// Modeled protocol-overhead seconds of running one occurrence of a
  /// section with profile `p` under strategy `s`.  The section's own
  /// compute is identical under every strategy and cancels out.
  [[nodiscard]] double cost(SectionStrategy s, const SectionProfile& p) const;

  [[nodiscard]] std::size_t nodes() const { return n_; }

 private:
  /// Master service time for an aftermath traffic volume: per-message
  /// software cost plus the measured (or predicted) payload on the wire.
  [[nodiscard]] double after_cost(double msgs, double bytes) const;

  std::size_t n_;
  double c_msg_;       // software send + receive per message
  double c_page_;      // one page-sized payload: wire + diff create/apply
  double c_ack_;       // one small control frame (null ack class)
  double rt_;          // uncontended fault round trip (Table 2's ~0.7-0.9 ms)
  double round_;       // one flow-controlled multicast round (n chained frames)
  double repl_fixed_;  // per-section replicated bracket: fork/join, entry and
                       // exit barriers, valid-notice exchange (Section 5.2/5.4.1)
  double link_rate_;   // switched unicast port, bytes/second
  double page_wire_;   // wire bytes of one page-sized payload
};

}  // namespace repseq::rse::policy
