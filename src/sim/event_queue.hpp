// Cancellable min-heap event queue for the discrete-event engine.
//
// Ties on the timestamp are broken by insertion sequence number, which makes
// the event order -- and therefore the whole simulation -- deterministic.
// Cancellation is lazy: a cancelled entry stays in the heap and is skipped
// when popped (the CPU-preemption model cancels and reschedules wake events
// frequently, so O(1) cancel matters).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "sim/clock.hpp"

namespace repseq::sim {

class EventQueue {
 public:
  using Callback = std::function<void()>;

  struct Entry {
    SimTime time;
    std::uint64_t seq = 0;
    Callback fn;
    bool cancelled = false;
  };
  using Handle = std::shared_ptr<Entry>;

  /// Schedules `fn` to run at absolute time `t`.  Returns a handle usable
  /// with cancel().
  Handle schedule(SimTime t, Callback fn);

  /// Marks an event as cancelled; it will be skipped.  Safe to call twice.
  void cancel(const Handle& h);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  Handle pop();

  [[nodiscard]] std::size_t live_count() const { return live_; }

 private:
  void drop_cancelled() const;

  struct Later {
    bool operator()(const Handle& a, const Handle& b) const {
      if (a->time != b->time) return a->time > b->time;
      return a->seq > b->seq;
    }
  };
  // mutable: drop_cancelled() prunes dead heads from const observers.
  mutable std::priority_queue<Handle, std::vector<Handle>, Later> heap_;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
};

}  // namespace repseq::sim
