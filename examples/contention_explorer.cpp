// Contention explorer: a synthetic hot-spot workload that makes the paper's
// Section 3 visible.  The master writes K pages in a sequential section;
// all other nodes then read disjoint slices simultaneously.  The tool
// prints, for growing cluster sizes, the average and worst diff-request
// response time and an ASCII bar of the master's service backlog effect.
//
// Build & run:   ./build/examples/contention_explorer
//                    [hub|tree|direct|sharded] [shards]
//                    [--mode base|replicated|broadcast|adaptive]
//                    [--policy static|greedy|hysteresis]
//
// --mode selects what the second column runs against the base system;
// adaptive mode routes every section through the rse::policy engine and
// reports its per-strategy decision counts.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <string_view>

#include "apps/harness/run_modes.hpp"
#include "ompnow/team.hpp"
#include "rse/controller.hpp"
#include "rse/policy/policy_engine.hpp"
#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

using namespace repseq;

namespace {

struct Sample {
  double avg_ms;
  double max_ms;
  double busy_max_s;  // busiest multicast-medium shard's transmit time
  std::array<std::uint64_t, rse::policy::kStrategyCount> by_strategy{};
};

Sample probe(std::size_t nodes, ompnow::SeqMode mode, const net::NetConfig& ncfg,
             const rse::policy::PolicyConfig& pcfg) {
  tmk::TmkConfig cfg;
  cfg.heap_bytes = 8u << 20;
  // One diff server fields O(N) queued requests for a hot page; the
  // retransmit timeout must cover that backlog at large N (same scaling as
  // bench/perf_sim).
  if (nodes > 256) {
    cfg.request_timeout = sim::milliseconds(static_cast<std::int64_t>(nodes));
  }
  tmk::Cluster cl(cfg, ncfg, nodes);
  rse::RseController rse(cl, rse::FlowControl::Chained);
  std::unique_ptr<rse::policy::PolicyEngine> policy;
  if (mode == ompnow::SeqMode::Adaptive) {
    policy = std::make_unique<rse::policy::PolicyEngine>(cl, pcfg);
  }
  ompnow::Team team(cl, mode, &rse, policy.get());

  constexpr std::size_t kIntsPerPage = 4096 / sizeof(int);
  const std::size_t elems = 64 * kIntsPerPage;  // 64 hot pages
  auto data = tmk::ShArray<int>::alloc(cl, elems, /*page_aligned=*/true);

  cl.run([&](tmk::NodeRuntime&) {
    // Two rounds, so an adaptive policy gets past its bootstrap probe and
    // the steady-state decision shows in the second section.
    for (int round = 0; round < 2; ++round) {
      team.sequential(1, [&](const ompnow::Ctx&) {
        for (std::size_t i = 0; i < elems; ++i) data.store(i, static_cast<int>(i));
      });
      team.parallel([&](const ompnow::Ctx& ctx) {
        const auto r = ompnow::block_range(0, static_cast<long>(elems), ctx.tid, ctx.nthreads);
        long sum = 0;
        for (long i = r.lo; i < r.hi; ++i) sum += data.load(static_cast<std::size_t>(i));
        if (sum < 0) std::abort();  // keep the loop alive
      });
    }
  });

  util::Accumulator acc;
  for (net::NodeId n = 0; n < nodes; ++n) {
    acc.merge(cl.node(n).stats().par.response_ms);
  }
  double busy_max_s = 0;
  for (const tmk::HubOccupancy& o : cl.hub_occupancy()) {
    busy_max_s = std::max(busy_max_s, o.busy.seconds());
  }
  Sample s{acc.mean(), acc.max(), busy_max_s, {}};
  if (policy) s.by_strategy = policy->strategy_counts();
  return s;
}

/// REPSEQ_NODES caps the sweep (default full sweep to 1024 nodes) so CI can
/// bound the run's budget, mirroring the bench harnesses.
std::size_t nodes_cap() {
  const char* s = std::getenv("REPSEQ_NODES");
  if (s == nullptr || *s == '\0') return 1024;
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0' || v < 2) {
    std::fprintf(stderr, "error: REPSEQ_NODES='%s' is not a node count >= 2\n", s);
    std::exit(2);
  }
  return static_cast<std::size_t>(v);
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [hub|tree|direct|sharded] [shards]\n"
               "          [--mode base|replicated|broadcast|adaptive]\n"
               "          [--policy static|greedy|hysteresis]\n"
               "          [--batch-window <microseconds>]\n"
               "          [--trace <path>]   write a Perfetto trace (= REPSEQ_TRACE)\n"
               "          [--check races,protocol|all]   correctness checking (= REPSEQ_CHECK)\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  net::NetConfig ncfg;
  ompnow::SeqMode mode = ompnow::SeqMode::Replicated;
  rse::policy::PolicyConfig pcfg;
  int positional = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--mode") {
      if (++i >= argc) return usage(argv[0]);
      const auto m = apps::harness::parse_mode(argv[i]);
      if (!m) return usage(argv[0]);
      switch (*m) {
        case apps::harness::Mode::Original:
          mode = ompnow::SeqMode::MasterOnly;
          break;
        case apps::harness::Mode::Optimized:
          mode = ompnow::SeqMode::Replicated;
          break;
        case apps::harness::Mode::BroadcastSeq:
          mode = ompnow::SeqMode::BroadcastAfter;
          break;
        case apps::harness::Mode::Adaptive:
          mode = ompnow::SeqMode::Adaptive;
          break;
        case apps::harness::Mode::Sequential:
          return usage(argv[0]);
      }
    } else if (arg == "--policy") {
      if (++i >= argc) return usage(argv[0]);
      const auto k = rse::policy::parse_policy(argv[i]);
      if (!k) return usage(argv[0]);
      pcfg.kind = *k;
    } else if (arg == "--trace") {
      if (++i >= argc) return usage(argv[0]);
      // The tracer reads REPSEQ_TRACE at cluster construction, so the flag
      // just seeds the environment before any cluster exists.
      ::setenv("REPSEQ_TRACE", argv[i], /*overwrite=*/1);
    } else if (arg == "--check") {
      if (++i >= argc) return usage(argv[0]);
      // Same pattern as --trace: the checker reads REPSEQ_CHECK at cluster
      // construction and fails loud there on an unknown category.
      ::setenv("REPSEQ_CHECK", argv[i], /*overwrite=*/1);
    } else if (arg == "--batch-window") {
      if (++i >= argc) return usage(argv[0]);
      const auto w = net::parse_batch_window(argv[i]);
      if (!w) {
        std::fprintf(stderr, "batch window must be a non-negative microsecond count, got '%s'\n",
                     argv[i]);
        return 2;
      }
      ncfg.batch_window = *w;
    } else if (positional == 0) {
      const auto kind = net::parse_transport(arg);
      if (!kind) return usage(argv[0]);
      ncfg.transport = *kind;
      ++positional;
    } else if (positional == 1) {
      const long shards = std::atol(argv[i]);
      if (shards < 1) {
        std::fprintf(stderr, "shard count must be >= 1, got '%s'\n", argv[i]);
        return 2;
      }
      ncfg.hub_shards = static_cast<std::size_t>(shards);
      ++positional;
    } else {
      return usage(argv[0]);
    }
  }

  const bool adaptive = mode == ompnow::SeqMode::Adaptive;
  const char* right_label = "replicated avg/max (ms)";
  switch (mode) {
    case ompnow::SeqMode::MasterOnly:
      right_label = "base avg/max (ms)";
      break;
    case ompnow::SeqMode::Replicated:
      break;
    case ompnow::SeqMode::BroadcastAfter:
      right_label = "broadcast avg/max (ms)";
      break;
    case ompnow::SeqMode::Adaptive:
      right_label = "adaptive avg/max (ms)";
      break;
  }
  std::printf("Hot-spot response time vs cluster size (64 master-written pages)\n");
  if (ncfg.transport == net::TransportKind::ShardedHub) {
    std::printf("transport: %s (%zu shards)", net::transport_name(ncfg.transport),
                ncfg.hub_shards);
  } else {
    std::printf("transport: %s", net::transport_name(ncfg.transport));
  }
  if (ncfg.batch_window.ns > 0) {
    std::printf("   batch window: %.0f us", ncfg.batch_window.micros());
  }
  if (adaptive) {
    std::printf("   policy: %s", rse::policy::policy_name(pcfg.kind));
  }
  std::printf("\n\n");
  const std::size_t cap = nodes_cap();
  std::printf("%6s | %-28s | %-28s | %s\n", "nodes", "base avg/max response (ms)", right_label,
              "hub busy max (ms)");
  std::printf("-------+------------------------------+------------------------------+"
              "----------------\n");
  for (std::size_t nodes : {2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}) {
    if (nodes > cap) break;
    const Sample base = probe(nodes, ompnow::SeqMode::MasterOnly, ncfg, pcfg);
    const Sample opt = probe(nodes, mode, ncfg, pcfg);
    const int bar = std::min(24, static_cast<int>(base.avg_ms * 4.0));
    std::printf("%6zu | %6.2f / %-7.2f %-12s | %6.2f / %-12.2f | %12.4f", nodes, base.avg_ms,
                base.max_ms, std::string(static_cast<std::size_t>(bar), '#').c_str(),
                opt.avg_ms, opt.max_ms, opt.busy_max_s * 1e3);
    if (adaptive) {
      std::printf("   [m/r/b %llu/%llu/%llu]",
                  static_cast<unsigned long long>(opt.by_strategy[0]),
                  static_cast<unsigned long long>(opt.by_strategy[1]),
                  static_cast<unsigned long long>(opt.by_strategy[2]));
    }
    std::printf("\n");
  }
  std::printf("\nBase-system response time grows with the requester count (FIFO service\n"
              "at the master, paper Section 3); replication removes those faults.\n");
  if (adaptive) {
    std::printf("Adaptive rows list sections per strategy (master-only/replicated/"
                "broadcast):\nthe first section of each site is the broadcast probe, the "
                "rest follow the\ncost model.\n");
  }
  return 0;
}
