// The shared heap allocator.  TreadMarks programs place all shared data on
// a shared heap (`Tmk_malloc`); the OpenMP translator also gathers shared
// globals into one structure allocated there (paper Section 2.3).
//
// Allocation metadata is cluster-global and deterministic: every node sees
// identical addresses, which is both what a real DSM provides (same mapping
// on every node) and what replicated sequential execution requires of
// guarded allocation calls.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tmk/gaddr.hpp"
#include "util/check.hpp"

namespace repseq::tmk {

class SharedHeap {
 public:
  explicit SharedHeap(std::size_t capacity) : capacity_(capacity) {}

  /// Allocates `bytes` with the given alignment (power of two).
  GAddr alloc(std::size_t bytes, std::size_t align = 8) {
    REPSEQ_CHECK((align & (align - 1)) == 0, "alignment must be a power of two");
    std::uint64_t base = (next_ + align - 1) & ~(static_cast<std::uint64_t>(align) - 1);
    REPSEQ_CHECK(base + bytes <= capacity_,
                 "shared heap exhausted: need " + std::to_string(bytes) + " at " +
                     std::to_string(base) + ", capacity " + std::to_string(capacity_));
    next_ = base + bytes;
    ++allocations_;
    return GAddr{base};
  }

  /// Page-aligned allocation; used by applications that lay out data
  /// structures to avoid false sharing.
  GAddr alloc_pages(std::size_t bytes, std::size_t page_bytes) {
    return alloc(bytes, page_bytes);
  }

  [[nodiscard]] std::size_t used() const { return next_; }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t allocations() const { return allocations_; }

 private:
  std::size_t capacity_;
  std::uint64_t next_ = 0;
  std::uint64_t allocations_ = 0;
};

}  // namespace repseq::tmk
