// Ablation A2 (paper Section 4.2): "multicast all data modified during the
// sequential execution to all threads" as an alternative to replication.
//
// The paper argues this is expensive when threads access only a small part
// of the modified data (Barnes-Hut: most of the tree is accessed by only a
// subset of threads) but acknowledges it is reasonable where everything is
// read by everyone.  Ilink's genarray pool is the latter case; Barnes-Hut
// with more nodes is the former.  This harness shows both sides.
#include "bench_common.hpp"

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  using apps::harness::Mode;

  print_header("Ablation: broadcast-all-modified-data vs replication",
               "PPoPP'01 Section 4.2",
               "push everything (BroadcastSeq) vs replicate + pull-on-demand (Optimized)");

  // The push-everything strawman fans the section's data out as one unicast
  // per destination: select the DirectAll transport for the broadcast runs
  // (REPSEQ_TRANSPORT still overrides for cross-backend sweeps).
  apps::harness::RunOptions bcast_opt = options_for(Mode::BroadcastSeq);
  bcast_opt.net.transport = bench_transport(net::TransportKind::DirectAll);
  std::printf("broadcast runs use the '%s' transport\n\n",
              net::transport_name(bcast_opt.net.transport));

  {
    apps::ilink::IlinkConfig cfg = ilink_config();
    cfg.iterations = static_cast<int>(env_long("ILINK_ITERATIONS", 4));
    const auto orig = apps::harness::run_ilink(options_for(Mode::Original), cfg);
    const auto bcast = apps::harness::run_ilink(bcast_opt, cfg);
    const auto opt = apps::harness::run_ilink(options_for(Mode::Optimized), cfg);
    if (orig.checksum != bcast.checksum || orig.checksum != opt.checksum) {
      std::printf("ERROR: Ilink results diverge across modes\n");
      return 1;
    }
    util::Table t({"Ilink", "Original", "BroadcastAll", "Optimized (RSE)"});
    t.add_row({"Total time (s)", fmt2(orig.total_s), fmt2(bcast.total_s), fmt2(opt.total_s)});
    t.add_row({"Sequential time (s)", fmt2(orig.seq_s), fmt2(bcast.seq_s), fmt2(opt.seq_s)});
    t.add_row({"Parallel time (s)", fmt2(orig.par_s), fmt2(bcast.par_s), fmt2(opt.par_s)});
    t.add_row({"Total data (KB)", util::fmt_count(orig.total_kb), util::fmt_count(bcast.total_kb),
               util::fmt_count(opt.total_kb)});
    std::printf("%s", t.render().c_str());
    std::printf("Ilink reads the whole pool everywhere, so pushing it wholesale is viable\n"
                "(paper: \"no benefit is gained from broadcasting each thread's contribution\"\n"
                " applies to the replicated run's extra data, not to correctness).\n\n");
  }

  {
    apps::bh::BhConfig cfg = bh_config();
    cfg.bodies = static_cast<int>(env_long("A2_BH_BODIES", 2048));
    const auto bcast = apps::harness::run_barnes_hut(bcast_opt, cfg);
    const auto opt = apps::harness::run_barnes_hut(options_for(Mode::Optimized), cfg);
    if (bcast.checksum != opt.checksum) {
      std::printf("ERROR: Barnes-Hut results diverge across modes\n");
      return 1;
    }
    util::Table t({"Barnes-Hut", "BroadcastAll", "Optimized (RSE)"});
    t.add_row({"Total time (s)", fmt2(bcast.total_s), fmt2(opt.total_s)});
    t.add_row({"Sequential time (s)", fmt2(bcast.seq_s), fmt2(opt.seq_s)});
    t.add_row({"Parallel time (s)", fmt2(bcast.par_s), fmt2(opt.par_s)});
    t.add_row({"Total data (KB)", util::fmt_count(bcast.total_kb), util::fmt_count(opt.total_kb)});
    std::printf("%s", t.render().c_str());
    std::printf("Barnes-Hut pushes the whole tree to everyone under BroadcastAll; the\n"
                "replicated system moves only what replicas actually read (\"with a larger\n"
                "problem size ... most data to be accessed by an ever smaller number of\n"
                "threads\", Section 4.2).\n");
  }
  return 0;
}
