// Protocol corner cases: the merged lazy-diff coverage rule (regression for
// a real clobbering bug found during bring-up), empty diffs, lock
// forwarding chains and queues, and mixed lock/barrier notice flow.
#include <gtest/gtest.h>

#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

namespace repseq::tmk {
namespace {

std::unique_ptr<Cluster> make_cluster(std::size_t nodes) {
  TmkConfig cfg;
  cfg.heap_bytes = 1u << 20;
  return std::make_unique<Cluster>(cfg, net::NetConfig{}, nodes);
}

// Regression: a twin spanning a closed interval plus the open interval's
// prefix must be registered under the closed interval only.  If it is also
// registered under the open interval's future index, a node that applied it
// once re-applies the stale full-page image later and destroys newer data
// (its own writes and third-party writes).
TEST(MergedDiffs, EarlyFlushedSpanningTwinDoesNotClobberNewerWrites) {
  auto cl = make_cluster(4);
  constexpr std::size_t kInts = 1024;  // exactly one page
  auto data = ShArray<int>::alloc(*cl, kInts, /*page_aligned=*/true);
  std::vector<int> finals(4, -1);

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    const auto tid = static_cast<std::size_t>(rt.id());
    if (rt.id() == 0) {
      // Master: interval 2 is open (a write before anyone's request), so
      // the lazy diff for interval 1 merges in this prefix.
      data.store(512, 7001);
    }
    rt.barrier(11);
    // Every node reads some master data (flushes the master's twin mid-
    // interval on the first request) and then writes its own word.
    (void)data.load(100 + tid);
    data.store(tid, static_cast<int>(1000 + tid));
    rt.barrier(12);
    // Now every node needs the master's second interval (the write notice
    // for index 2 arrived at barrier 12).  Fetching it must not revert
    // anyone's word back to the interval-1 image.
    EXPECT_EQ(data.load(512), 7001);
    rt.barrier(13);
    int ok = 1;
    for (int t = 0; t < 4; ++t) {
      if (data.load(static_cast<std::size_t>(t)) != 1000 + t) ok = 0;
    }
    finals[tid] = ok;
  });

  cl->run([&](NodeRuntime& rt) {
    // Interval 1: master initializes the whole page.
    for (std::size_t i = 0; i < kInts; ++i) data.store(i, 1);
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  for (int t = 0; t < 4; ++t) EXPECT_EQ(finals[t], 1) << "node " << t;
}

TEST(MergedDiffs, EmptyDiffServesEarlyFlushedIntervalWithNoLaterWrites) {
  auto cl = make_cluster(3);
  auto data = ShArray<int>::alloc(*cl, 1024, /*page_aligned=*/true);
  int seen_by_2 = -1;

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    if (rt.id() == 1) {
      // Node 1 reads early, forcing the master's open-interval twin to
      // flush; the master makes no further writes before the interval
      // closes, so the interval's registration is the empty diff.
      EXPECT_EQ(data.load(3), 3);
    }
    rt.barrier(21);
    if (rt.id() == 2) {
      // Node 2 asks for that interval after the barrier; the content
      // travelled in the early flush, the empty diff just clears the
      // notice.
      seen_by_2 = data.load(3);
    }
  });

  cl->run([&](NodeRuntime& rt) {
    for (std::size_t i = 0; i < 8; ++i) data.store(i, static_cast<int>(i));
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  EXPECT_EQ(seen_by_2, 3);
}

TEST(MergedDiffs, IdenticalValueWritesYieldEmptyDiffButClearNotices) {
  auto cl = make_cluster(2);
  auto data = ShArray<int>::alloc(*cl, 64);
  int value = -1;

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    if (rt.id() == 1) {
      data.store(0, 0);  // writes the value already there: empty diff
    }
    rt.barrier(31);
    if (rt.id() == 0) value = data.load(0);
  });

  cl->run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });
  EXPECT_EQ(value, 0);
  // The master faulted (a notice existed) even though the diff was empty.
  EXPECT_GE(cl->node(0).stats().par.page_faults, 1u);
}

TEST(Locks, GrantChainsAcrossThreeNodes) {
  auto cl = make_cluster(3);
  auto x = ShVar<int>::alloc(*cl);
  std::vector<int> observed(3, -1);

  // Lock 1 is managed by node 1 (1 % 3).  Each node increments in turn;
  // the lock grant must carry the previous holder's write notices.
  const auto work = cl->register_work([&](NodeRuntime& rt) {
    for (int round = 0; round < 3; ++round) {
      rt.lock_acquire(1);
      x.store(x.load() + 1);
      rt.lock_release(1);
    }
    rt.barrier(41);
    observed[rt.id()] = x.load();
  });

  cl->run([&](NodeRuntime& rt) {
    x.store(0);
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  for (int n = 0; n < 3; ++n) EXPECT_EQ(observed[n], 9) << "node " << n;
}

TEST(Locks, ManagerOnSelfTakesLocalFastPath) {
  auto cl = make_cluster(2);
  auto x = ShVar<int>::alloc(*cl);
  // Lock 0 is managed by node 0; the master acquires it with no slaves
  // contending -- no messages should be needed at all.
  cl->run([&](NodeRuntime& rt) {
    rt.lock_acquire(0);
    x.store(5);
    rt.lock_release(0);
    EXPECT_EQ(x.load(), 5);
  });
  EXPECT_EQ(cl->network().messages_sent(), 0u);
}

TEST(Locks, WaitersQueueInFifoOrder) {
  auto cl = make_cluster(4);
  auto order = ShArray<int>::alloc(*cl, 8);
  auto cursor = ShVar<int>::alloc(*cl);

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    // Stagger arrivals deterministically with compute.
    rt.cpu().compute(sim::microseconds(100 * (rt.id() + 1)));
    rt.lock_acquire(2);
    const int pos = cursor.load();
    order.store(static_cast<std::size_t>(pos), static_cast<int>(rt.id()));
    cursor.store(pos + 1);
    rt.lock_release(2);
  });

  std::vector<int> got;
  cl->run([&](NodeRuntime& rt) {
    cursor.store(0);
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
    for (int i = 0; i < 4; ++i) got.push_back(order.load(static_cast<std::size_t>(i)));
  });

  // All four nodes appear exactly once.
  std::vector<int> sorted = got;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
}

TEST(LocksAndBarriers, LockLearnedNoticesSurviveBarrierRedistribution) {
  auto cl = make_cluster(3);
  auto a = ShVar<int>::alloc(*cl);
  auto b = ShVar<int>::alloc(*cl);
  int seen = -1;

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    if (rt.id() == 1) {
      rt.lock_acquire(5);
      a.store(11);
      rt.lock_release(5);
    }
    if (rt.id() == 2) {
      rt.cpu().compute(sim::milliseconds(1));
      rt.lock_acquire(5);  // learns node 1's interval via the grant
      b.store(a.load() + 1);
      rt.lock_release(5);
    }
    rt.barrier(51);  // the master must now know both intervals
    if (rt.id() == 0) seen = a.load() + b.load();
  });

  cl->run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  EXPECT_EQ(seen, 11 + 12);
}

TEST(Stats, PhaseTaggingSeparatesSequentialAndParallelTraffic) {
  auto cl = make_cluster(2);
  auto data = ShArray<int>::alloc(*cl, 2048);

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    if (rt.id() == 1) {
      for (std::size_t i = 0; i < data.size(); ++i) (void)data.load(i);
    }
  });

  cl->run([&](NodeRuntime& rt) {
    for (std::size_t i = 0; i < data.size(); ++i) data.store(i, 1);  // sequential phase
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  const PhaseCounters seq = cl->total(Phase::Sequential);
  const PhaseCounters par = cl->total(Phase::Parallel);
  // All diff traffic happened inside the parallel region here.
  EXPECT_EQ(seq.diff_msgs_sent, 0u);
  EXPECT_GT(par.diff_msgs_sent, 0u);
  EXPECT_GT(par.diff_bytes_sent, 0u);
}

}  // namespace
}  // namespace repseq::tmk
