#include "net/nic.hpp"

#include <algorithm>

namespace repseq::net {

sim::SimTime Nic::reserve_uplink(std::size_t wire_bytes, sim::SimTime ready) {
  const sim::SimTime start = std::max({eng_.now(), ready, uplink_free_});
  uplink_free_ = start + cfg_.link_tx_time(wire_bytes);
  return uplink_free_;
}

bool Nic::deliver(Message msg) {
  if (inbox_.size() >= cfg_.recv_buffer_msgs && (!droppable_ || droppable_(msg))) {
    ++drops_;
    return false;
  }
  inbox_.push(std::move(msg));
  return true;
}

}  // namespace repseq::net
