// Micro-benchmarks for the observability layer's hot-path cost.
//
// The claim to pin: a DISABLED tracer hook is one load-and-test of the
// global category mask, indistinguishable from the unhooked loop -- the
// simulator's hot paths (event dispatch, sends, faults) pay nothing when
// REPSEQ_TRACE is unset.  The enabled rows quantify what a recording run
// pays per event, and that the registry and Accumulator percentile paths
// stay allocation-free in steady state.
#include <cstdint>

#include "micro_runner.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "sim/clock.hpp"
#include "util/stats_accum.hpp"

int main() {
  using namespace repseq;
  using microbench::bench;
  using microbench::do_not_optimize;

  microbench::print_header();

  // Baseline: the kind of integer work a hook would sit next to.
  std::uint64_t acc = 0;
  std::uint64_t x = 0;
  bench("loop/baseline", [&] {
    acc += ++x * 2654435761u;
    do_not_optimize(acc);
  });

  // The same loop with a disabled tracer hook in the body: the overhead of
  // the enabled() branch must vanish into noise against the row above.
  obs::tracer().configure("", 0);
  bench("loop/disabled-trace-hook", [&] {
    acc += ++x * 2654435761u;
    if (obs::enabled(obs::Cat::Tmk)) [[unlikely]] {
      obs::tracer().instant(obs::Cat::Tmk, sim::SimTime{static_cast<std::int64_t>(x)}, 1,
                            "bench", "tick", {{"x", static_cast<double>(x)}});
    }
    do_not_optimize(acc);
  });

  // Enabled recording cost per event (slab append, no write): the price a
  // traced run pays, amortized-allocation-free once the slabs exist.
  obs::tracer().configure("/dev/null");
  std::int64_t t = 0;
  bench("trace/instant-enabled", [&] {
    obs::tracer().instant(obs::Cat::Tmk, sim::SimTime{++t}, 1, "bench", "tick",
                          {{"x", static_cast<double>(t)}});
    if ((t & 0xffff) == 0) obs::tracer().configure("/dev/null");  // cap memory
  });
  bench("trace/span-enabled", [&] {
    ++t;
    obs::tracer().begin(obs::Cat::Rse, sim::SimTime{t}, 1, "bench", "section");
    obs::tracer().end(obs::Cat::Rse, sim::SimTime{t + 1}, 1, "bench");
    if ((t & 0xffff) == 0) obs::tracer().configure("/dev/null");
  });
  obs::tracer().configure("", 0);

  // Registry: steady-state counter increment through the labeled lookup,
  // and the pre-resolved handle the hot paths should hold instead.
  obs::Registry reg;
  bench("registry/counter-lookup-inc", [&] {
    reg.counter("decisions", {{"site", "1"}, {"strategy", "replicated"}}).inc();
  });
  obs::Counter& c = reg.counter("decisions", {{"site", "1"}, {"strategy", "replicated"}});
  bench("registry/counter-handle-inc", [&] {
    c.inc();
    do_not_optimize(c.value());
  });

  // Accumulator with the streaming-percentile histogram: add stays O(1)
  // and allocation-free after the first sample's bucket allocation.
  util::Accumulator a;
  a.add(1.0);
  double v = 1.0;
  bench("accumulator/add", [&] {
    v = v * 1.0000001 + 0.001;
    a.add(v);
  });
  bench("accumulator/p99", [&] { do_not_optimize(a.percentile(0.99)); });

  return 0;
}
