// Tests for the OpenMP/NOW layer: schedules, the `if` clause, sequential
// dispatch modes, and the section time accounting the paper's tables use.
#include <gtest/gtest.h>

#include <set>

#include "ompnow/team.hpp"
#include "rse/controller.hpp"
#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

namespace repseq::ompnow {
namespace {

struct Fx {
  tmk::TmkConfig cfg;
  std::unique_ptr<tmk::Cluster> cl;
  std::unique_ptr<rse::RseController> rse;
  std::unique_ptr<Team> team;

  explicit Fx(std::size_t nodes, SeqMode mode = SeqMode::MasterOnly) {
    cfg.heap_bytes = 1u << 20;
    cl = std::make_unique<tmk::Cluster>(cfg, net::NetConfig{}, nodes);
    rse = std::make_unique<rse::RseController>(*cl, rse::FlowControl::Chained);
    team = std::make_unique<Team>(*cl, mode, rse.get());
  }
};

TEST(Schedules, CyclicAssignsEveryIndexExactlyOnce) {
  Fx fx(4);
  auto hits = tmk::ShArray<int>::alloc(*fx.cl, 101);
  fx.cl->run([&](tmk::NodeRuntime&) {
    fx.team->parallel_for(0, 101, Schedule::StaticCyclic, [&](const Ctx&, long i) {
      hits.store(static_cast<std::size_t>(i), hits.load(static_cast<std::size_t>(i)) + 1);
    });
    for (std::size_t i = 0; i < 101; ++i) EXPECT_EQ(hits.load(i), 1) << i;
  });
}

TEST(Schedules, BlockAssignsEveryIndexExactlyOnce) {
  Fx fx(3);
  auto hits = tmk::ShArray<int>::alloc(*fx.cl, 100);
  fx.cl->run([&](tmk::NodeRuntime&) {
    fx.team->parallel_for(0, 100, Schedule::StaticBlock, [&](const Ctx&, long i) {
      hits.store(static_cast<std::size_t>(i), hits.load(static_cast<std::size_t>(i)) + 1);
    });
    for (std::size_t i = 0; i < 100; ++i) EXPECT_EQ(hits.load(i), 1) << i;
  });
}

TEST(Schedules, BlockRangeDegenerateCases) {
  // More threads than iterations: trailing threads get empty ranges.
  long covered = 0;
  for (int t = 0; t < 8; ++t) {
    const Range r = block_range(0, 3, t, 8);
    covered += r.hi - r.lo;
  }
  EXPECT_EQ(covered, 3);
  // Empty loop.
  const Range r = block_range(5, 5, 0, 4);
  EXPECT_EQ(r.lo, r.hi);
}

TEST(Team, RegionCountersTrackInvocations) {
  Fx fx(2);
  fx.cl->run([&](tmk::NodeRuntime&) {
    fx.team->parallel([](const Ctx&) {});
    fx.team->parallel([](const Ctx&) {});
    fx.team->sequential([](const Ctx&) {});
  });
  EXPECT_EQ(fx.team->parallel_regions(), 2u);
  EXPECT_EQ(fx.team->sequential_sections(), 1u);
}

TEST(Team, SectionTimesAccumulate) {
  Fx fx(2);
  fx.cl->run([&](tmk::NodeRuntime& rt) {
    fx.team->sequential([&](const Ctx&) { rt.cpu().compute(sim::milliseconds(3)); });
    fx.team->parallel([](const Ctx& ctx) { ctx.rt.cpu().compute(sim::milliseconds(5)); });
  });
  EXPECT_GE(fx.team->sequential_time().millis(), 3.0);
  EXPECT_GE(fx.team->parallel_time().millis(), 5.0);
  // Sections don't bleed into each other.
  EXPECT_LT(fx.team->sequential_time().millis(), 5.0);
}

TEST(Team, MasterOnlySequentialRunsOnlyOnMaster) {
  Fx fx(4, SeqMode::MasterOnly);
  std::set<int> ran_on;
  fx.cl->run([&](tmk::NodeRuntime&) {
    fx.team->sequential([&](const Ctx& ctx) { ran_on.insert(ctx.tid); });
  });
  EXPECT_EQ(ran_on, (std::set<int>{0}));
}

TEST(Team, ReplicatedSequentialRunsEverywhere) {
  Fx fx(4, SeqMode::Replicated);
  std::set<int> ran_on;
  fx.cl->run([&](tmk::NodeRuntime&) {
    fx.team->sequential([&](const Ctx& ctx) { ran_on.insert(ctx.tid); });
  });
  EXPECT_EQ(ran_on, (std::set<int>{0, 1, 2, 3}));
}

TEST(Team, ReplicatedSectionTrafficCountsAsSequentialPhase) {
  Fx fx(4, SeqMode::Replicated);
  auto data = tmk::ShArray<int>::alloc(*fx.cl, 2048);
  fx.cl->run([&](tmk::NodeRuntime&) {
    fx.team->parallel_for(0, 2048, Schedule::StaticBlock, [&](const Ctx&, long i) {
      data.store(static_cast<std::size_t>(i), 1);
    });
    fx.team->sequential([&](const Ctx&) {
      long s = 0;
      for (std::size_t i = 0; i < data.size(); ++i) s += data.load(i);
      EXPECT_EQ(s, 2048);
    });
  });
  // The replicated section's multicast fetches are sequential-phase traffic.
  const tmk::PhaseCounters seq = fx.cl->total(tmk::Phase::Sequential);
  EXPECT_GT(seq.diff_msgs_sent, 0u);
}

TEST(Team, IfClauseFalseOnMultiNodeRunsInline) {
  Fx fx(4);
  int executions = 0;
  fx.cl->run([&](tmk::NodeRuntime&) {
    fx.team->parallel_for(0, 10, Schedule::StaticCyclic,
                          [&](const Ctx& ctx, long) {
                            EXPECT_EQ(ctx.tid, 0);
                            EXPECT_EQ(ctx.nthreads, 1);
                            ++executions;
                          },
                          /*if_parallel=*/false);
  });
  EXPECT_EQ(executions, 10);
  EXPECT_EQ(fx.team->parallel_regions(), 0u);
}

TEST(Team, SingleNodeParallelForCountsAsParallelTime) {
  Fx fx(1);
  fx.cl->run([&](tmk::NodeRuntime&) {
    fx.team->parallel_for(0, 4, Schedule::StaticBlock, [&](const Ctx& ctx, long) {
      ctx.rt.cpu().compute(sim::milliseconds(1));
    });
  });
  EXPECT_GE(fx.team->parallel_time().millis(), 4.0);
  EXPECT_EQ(fx.team->parallel_regions(), 1u);
}

TEST(Ctx, MasterOnlyGuardsSideEffects) {
  Fx fx(3, SeqMode::Replicated);
  int side_effects = 0;
  fx.cl->run([&](tmk::NodeRuntime&) {
    fx.team->sequential([&](const Ctx& ctx) {
      ctx.master_only([&] { ++side_effects; });
    });
  });
  EXPECT_EQ(side_effects, 1);
}

}  // namespace
}  // namespace repseq::ompnow
