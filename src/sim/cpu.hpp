// Per-node CPU model with interrupt-style request servicing.
//
// TreadMarks services remote requests from a SIGIO handler: an incoming diff
// request *preempts* the application, the node spends the service time, and
// the application's computation resumes where it left off.  That preemption
// is exactly what makes a node with many pending requests slow to respond --
// the paper's definition of contention.  This class reproduces it:
//
//   * the application fiber calls compute(d) (usually via accrue()/flush());
//   * the request-server fiber calls service(d) for each message, which
//     suspends any in-flight compute, consumes d, and then lets the
//     remaining compute continue.
//
// accrue()/flush() let application code charge fine-grained work (hundreds
// of millions of floating point operations) without one event per charge:
// accrued time is flushed to compute() whenever it crosses `quantum` or when
// the node is about to interact with the outside world (fault, sync, send).
#pragma once

#include <cstdint>

#include "sim/clock.hpp"
#include "sim/engine.hpp"

namespace repseq::sim {

class Cpu {
 public:
  Cpu(Engine& eng, SimDuration quantum) : eng_(eng), quantum_(quantum) {}

  Cpu(const Cpu&) = delete;
  Cpu& operator=(const Cpu&) = delete;

  /// Charges `d` of computation on the application fiber.  Interruptible:
  /// concurrent service() calls extend the wall (virtual) time this takes.
  void compute(SimDuration d);

  /// Adds fine-grained work to the pending pile; flushes when it exceeds
  /// the quantum so remote requests observe a realistically busy CPU.
  void accrue(SimDuration d) {
    pending_ += d;
    if (pending_ >= quantum_) flush();
  }

  /// Converts all accrued work into simulated compute time.  Call before
  /// any communication or synchronization so virtual timestamps are exact.
  void flush() {
    if (pending_.ns > 0) {
      SimDuration d = pending_;
      pending_ = SimDuration{};
      compute(d);
    }
  }

  /// Charges `d` of request-service time on the server fiber, preempting
  /// any in-flight application compute (interrupt semantics).
  void service(SimDuration d);

  /// Total virtual time spent in compute() by the application fiber.
  [[nodiscard]] SimDuration busy_time() const { return busy_; }
  /// Total virtual time spent servicing requests.
  [[nodiscard]] SimDuration service_time() const { return serviced_; }

 private:
  Engine& eng_;
  SimDuration quantum_;
  SimDuration pending_{};

  // ---- preemption state ----
  FiberRef app_fiber_ = nullptr;        // fiber currently inside compute()
  EventQueue::Handle app_wake_{};       // its pending completion event
  SimTime app_started_{};               // when the current compute leg began
  bool app_interrupted_ = false;
  int service_depth_ = 0;
  std::deque<WaitToken*> cpu_free_waiters_;

  SimDuration busy_{};
  SimDuration serviced_{};
};

}  // namespace repseq::sim
