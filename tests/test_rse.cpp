// Tests for replicated sequential execution: correctness of replication,
// the Section 5.3 lazy-diff hazard fix, the flow-controlled multicast
// protocol (all three policies), contention elimination, and the
// broadcast-after alternative.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "ompnow/team.hpp"
#include "rse/controller.hpp"
#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

namespace repseq::rse {
namespace {

using ompnow::Ctx;
using ompnow::Schedule;
using ompnow::SeqMode;
using ompnow::Team;

struct World {
  tmk::TmkConfig cfg;
  net::NetConfig ncfg;
  std::unique_ptr<tmk::Cluster> cl;
  std::unique_ptr<RseController> rse;
  std::unique_ptr<Team> team;

  explicit World(std::size_t nodes, SeqMode mode, FlowControl flow = FlowControl::Chained,
                 std::function<void(World&)> tweak = {}) {
    cfg.heap_bytes = 1u << 20;
    if (tweak) tweak(*this);
    cl = std::make_unique<tmk::Cluster>(cfg, ncfg, nodes);
    rse = std::make_unique<RseController>(*cl, flow);
    team = std::make_unique<Team>(*cl, mode, rse.get());
  }
};

TEST(Rse, ReplicatedSectionComputesIdenticalStateEverywhere) {
  World w(4, SeqMode::Replicated);
  auto data = tmk::ShArray<int>::alloc(*w.cl, 512);
  std::vector<int> seen(4, -1);

  w.cl->run([&](tmk::NodeRuntime&) {
    // Parallel phase: each node initializes a stripe.
    w.team->parallel_for(0, 512, Schedule::StaticBlock, [&](const Ctx&, long i) {
      data.store(static_cast<std::size_t>(i), static_cast<int>(i));
    });
    // Replicated sequential section: reads everything (multicast fetch),
    // rewrites everything locally (no propagation needed afterwards).
    w.team->sequential([&](const Ctx&) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data.store(i, data.load(i) * 2);
      }
    });
    // Parallel phase: every node verifies its full local view.
    w.team->parallel([&](const Ctx& ctx) {
      int ok = 1;
      for (std::size_t i = 0; i < data.size(); ++i) {
        if (data.load(i) != static_cast<int>(i) * 2) ok = 0;
      }
      seen[ctx.tid] = ok;
    });
  });

  for (int t = 0; t < 4; ++t) EXPECT_EQ(seen[t], 1) << "thread " << t;
}

TEST(Rse, SectionWritesAreNotPropagatedAfterwards) {
  World w(4, SeqMode::Replicated);
  auto data = tmk::ShArray<int>::alloc(*w.cl, 2048);

  w.cl->run([&](tmk::NodeRuntime&) {
    w.team->sequential([&](const Ctx&) {
      for (std::size_t i = 0; i < data.size(); ++i) data.store(i, 7);
    });
    w.team->parallel([&](const Ctx&) {
      long sum = 0;
      for (std::size_t i = 0; i < data.size(); ++i) sum += data.load(i);
      EXPECT_EQ(sum, 7 * 2048);
    });
  });

  // Reading section-written pages in the parallel phase must not fault:
  // every node already holds the up-to-date copy it computed itself.
  for (net::NodeId n = 0; n < 4; ++n) {
    EXPECT_EQ(w.cl->node(n).stats().par.page_faults, 0u) << "node " << n;
  }
}

TEST(Rse, LockChainedWritersConvergeInsideSection) {
  // Regression for the multicast-round causality hazard: a lock chain
  // before the section leaves causally ordered diffs for the SAME word at
  // different owners.  Round frames arrive in chain (node-id) order, so
  // applying each frame on arrival would let an older diff land on top of
  // the newer data that covers it -- a replica silently reading a stale
  // word and diverging (found by the chk diff-apply-causality oracle).
  // Frames must stage per page and apply in one causal batch.
  for (FlowControl flow : {FlowControl::Chained, FlowControl::Windowed, FlowControl::None}) {
    World w(4, SeqMode::Replicated, flow);
    auto data = tmk::ShArray<int>::alloc(*w.cl, 1024, /*page_aligned=*/true);
    std::vector<int> after(4, -1);

    const auto work = w.cl->register_work([&](tmk::NodeRuntime& rt) {
      for (std::size_t i = rt.id(); i < data.size(); i += rt.node_count()) {
        data.store(i, static_cast<int>(2 * i));
      }
      rt.barrier(1);
      rt.lock_acquire(9);
      data.store(0, data.load(0) + 1);  // 4 causally ordered writers, 1 word
      rt.lock_release(9);
    });
    w.cl->run([&](tmk::NodeRuntime& rt) {
      rt.fork(work);
      w.cl->work(work)(rt);
      rt.join_master();
      w.team->sequential([&](const Ctx&) {
        data.store(0, data.load(0) + 3);
      });
      w.team->parallel([&](const Ctx& ctx) { after[ctx.tid] = data.load(0); });
    });

    // 0 (cyclic) + 4 increments + 3 = 7 on EVERY replica.
    for (int t = 0; t < 4; ++t) {
      EXPECT_EQ(after[t], 7) << "node " << t << " flow " << static_cast<int>(flow);
    }
  }
}

TEST(Rse, LazyDiffHazardYieldsPreSectionDataOnly) {
  // The Section 5.3 scenario: node 1 dirties a page before the section and
  // the diff stays lazy.  Inside the replicated section every node performs
  // a non-idempotent update (+=) on that page.  If the multicast diff
  // leaked node 1's replicated write, other nodes would double-apply it.
  World w(4, SeqMode::Replicated);
  auto cell = tmk::ShArray<int>::alloc(*w.cl, 16);
  std::vector<int> finals(4, -1);

  w.cl->run([&](tmk::NodeRuntime&) {
    w.team->parallel([&](const Ctx& ctx) {
      if (ctx.tid == 1) cell.store(0, 5);  // page dirty at node 1, diff lazy
    });
    w.team->sequential([&](const Ctx&) {
      cell.store(0, cell.load(0) + 10);  // non-idempotent replicated write
    });
    w.team->parallel([&](const Ctx& ctx) { finals[ctx.tid] = cell.load(0); });
  });

  for (int t = 0; t < 4; ++t) EXPECT_EQ(finals[t], 15) << "thread " << t;
}

TEST(Rse, NullAcksFlowOnlyInChainedMode) {
  auto run = [](FlowControl flow) {
    World w(4, SeqMode::Replicated, flow);
    auto data = tmk::ShArray<int>::alloc(*w.cl, 4096);
    w.cl->run([&](tmk::NodeRuntime&) {
      // Only node 1 writes, so the other three nodes hold nothing and must
      // contribute pure null acknowledgments to each chain.
      w.team->parallel([&](const Ctx& ctx) {
        if (ctx.tid == 1) {
          for (std::size_t i = 0; i < data.size(); ++i) data.store(i, static_cast<int>(i));
        }
      });
      w.team->sequential([&](const Ctx&) {
        long sum = 0;
        for (std::size_t i = 0; i < data.size(); ++i) sum += data.load(i);
        EXPECT_EQ(sum, 4095L * 4096 / 2);
      });
    });
    std::uint64_t null_acks = 0;
    for (net::NodeId n = 0; n < 4; ++n) {
      null_acks += w.cl->node(n).stats().seq.null_acks_sent;
    }
    return null_acks;
  };

  EXPECT_GT(run(FlowControl::Chained), 0u);
  EXPECT_EQ(run(FlowControl::Windowed), 0u);
  EXPECT_EQ(run(FlowControl::None), 0u);
}

class FlowControlProperty : public ::testing::TestWithParam<FlowControl> {};

TEST_P(FlowControlProperty, AllPoliciesComputeTheSameResult) {
  World w(5, SeqMode::Replicated, GetParam());
  auto data = tmk::ShArray<long>::alloc(*w.cl, 1500);
  long expect = 0;
  for (int i = 0; i < 1500; ++i) expect += 3L * i + 1;
  std::vector<long> sums(5, -1);

  w.cl->run([&](tmk::NodeRuntime&) {
    for (int iter = 0; iter < 2; ++iter) {
      w.team->parallel_for(0, 1500, Schedule::StaticCyclic, [&](const Ctx&, long i) {
        data.store(static_cast<std::size_t>(i), 3L * i);
      });
      w.team->sequential([&](const Ctx&) {
        for (std::size_t i = 0; i < data.size(); ++i) data.store(i, data.load(i) + 1);
      });
      w.team->parallel([&](const Ctx& ctx) {
        long s = 0;
        for (std::size_t i = 0; i < data.size(); ++i) s += data.load(i);
        sums[ctx.tid] = s;
      });
    }
  });

  for (int t = 0; t < 5; ++t) EXPECT_EQ(sums[t], expect) << "thread " << t;
}

INSTANTIATE_TEST_SUITE_P(Policies, FlowControlProperty,
                         ::testing::Values(FlowControl::Chained, FlowControl::Windowed,
                                           FlowControl::None));

TEST(Rse, NoFlowControlOverrunsTinyReceiveBuffers) {
  // The strawman from Section 5.4: without serialization and acks, bursts
  // of concurrent multicast rounds overrun small receive rings; timeout
  // recovery keeps the run correct anyway, at a cost.
  // Receive handling is made slower than back-to-back frame arrival so a
  // round's reply burst (five concurrent holders on the hub) overruns the
  // four-slot ring -- the asymmetry the paper's flow control guards against.
  World w(6, SeqMode::Replicated, FlowControl::None, [](World& ww) {
    ww.ncfg.recv_buffer_msgs = 3;
    ww.ncfg.recv_overhead = sim::microseconds(150);
    ww.cfg.rse_wait_timeout = sim::milliseconds(30);
  });

  // 64 pages; every node writes one word in each page, so every node holds
  // a tiny diff for every page: one request triggers five instant replies,
  // and 64 rounds fire with no serialization at all.
  constexpr std::size_t kPages = 64;
  constexpr std::size_t kIntsPerPage = 4096 / sizeof(int);
  auto data = tmk::ShArray<int>::alloc(*w.cl, kPages * kIntsPerPage, /*page_aligned=*/true);
  std::vector<long> sums(6, -1);

  w.cl->run([&](tmk::NodeRuntime&) {
    w.team->parallel([&](const Ctx& ctx) {
      for (std::size_t p = 0; p < kPages; ++p) {
        data.store(p * kIntsPerPage + static_cast<std::size_t>(ctx.tid), 1 + ctx.tid);
      }
    });
    w.team->sequential([&](const Ctx&) {
      long s = 0;
      for (std::size_t p = 0; p < kPages; ++p) {
        for (int t = 0; t < 6; ++t) s += data.load(p * kIntsPerPage + static_cast<std::size_t>(t));
      }
      EXPECT_EQ(s, static_cast<long>(kPages) * (1 + 2 + 3 + 4 + 5 + 6));
    });
    w.team->parallel([&](const Ctx& ctx) {
      long s = 0;
      for (std::size_t p = 0; p < kPages; ++p) {
        for (int t = 0; t < 6; ++t) s += data.load(p * kIntsPerPage + static_cast<std::size_t>(t));
      }
      sums[ctx.tid] = s;
    });
  });

  for (int t = 0; t < 6; ++t) {
    EXPECT_EQ(sums[t], static_cast<long>(kPages) * 21) << "thread " << t;
  }
  EXPECT_GT(w.cl->network().total_drops(), 0u);
}

TEST(Rse, EliminatesContentionAfterSequentialSection) {
  // The headline effect: master writes a large block sequentially; all
  // threads then read disjoint parts in parallel.  Replication must cut the
  // parallel-section fault count to zero and with it the response time.
  auto run = [](SeqMode mode) {
    World w(8, mode);
    auto data = tmk::ShArray<int>::alloc(*w.cl, 8 * 1024);
    w.cl->run([&](tmk::NodeRuntime&) {
      w.team->sequential([&](const Ctx&) {
        for (std::size_t i = 0; i < data.size(); ++i) data.store(i, static_cast<int>(i));
      });
      w.team->parallel([&](const Ctx& ctx) {
        const auto r = ompnow::block_range(0, static_cast<long>(data.size()), ctx.tid,
                                           ctx.nthreads);
        long s = 0;
        for (long i = r.lo; i < r.hi; ++i) s += data.load(static_cast<std::size_t>(i));
        EXPECT_GE(s, 0L);
      });
    });
    const tmk::PhaseCounters par = w.cl->total(tmk::Phase::Parallel);
    const tmk::PhaseCounters seq = w.cl->total(tmk::Phase::Sequential);
    struct Out {
      std::uint64_t par_faults, seq_msgs;
      double par_response;
      sim::SimDuration par_time;
    };
    return Out{par.page_faults, seq.msgs_sent, par.response_ms.mean(),
               w.team->parallel_time()};
  };

  const auto base = run(SeqMode::MasterOnly);
  const auto repl = run(SeqMode::Replicated);

  EXPECT_GT(base.par_faults, 0u);
  EXPECT_EQ(repl.par_faults, 0u);               // contention eliminated
  EXPECT_GT(repl.seq_msgs, base.seq_msgs);       // but the section costs more
  EXPECT_LT(repl.par_time, base.par_time);       // and the parallel phase wins
}

TEST(Rse, BroadcastAfterAlternativeAlsoEliminatesFaults) {
  World w(4, SeqMode::BroadcastAfter);
  auto data = tmk::ShArray<int>::alloc(*w.cl, 4096);
  std::vector<long> sums(4, -1);

  w.cl->run([&](tmk::NodeRuntime&) {
    w.team->sequential([&](const Ctx&) {
      for (std::size_t i = 0; i < data.size(); ++i) data.store(i, 2);
    });
    w.team->parallel([&](const Ctx& ctx) {
      long s = 0;
      for (std::size_t i = 0; i < data.size(); ++i) s += data.load(i);
      sums[ctx.tid] = s;
    });
  });

  for (int t = 0; t < 4; ++t) EXPECT_EQ(sums[t], 2L * 4096) << "thread " << t;
  // The push happened in the sequential section; parallel reads are local.
  EXPECT_EQ(w.cl->total(tmk::Phase::Parallel).page_faults, 0u);
}

TEST(Rse, BroadcastAfterEmptySectionSendsNothing) {
  // Edge case: a sequential section that modifies nothing produces an empty
  // since-delta -- no diffs are created and no BcastUpdate may hit the wire
  // (nor the n-1 acks it would solicit).
  World w(4, SeqMode::BroadcastAfter);
  auto data = tmk::ShArray<int>::alloc(*w.cl, 1024);

  w.cl->run([&](tmk::NodeRuntime&) {
    w.team->sequential([&](const Ctx&) {
      long sum = 0;
      for (std::size_t i = 0; i < data.size(); ++i) sum += data.load(i);
      EXPECT_EQ(sum, 0L);  // reads only; nothing dirtied
    });
  });

  EXPECT_EQ(w.cl->network().messages_sent(), 0u);
  EXPECT_EQ(w.team->sequential_sections(), 1u);
}

TEST(Rse, BroadcastAfterBackToBackSectionsWithoutParallelRegion) {
  // Two broadcast sections with no parallel region in between: the second
  // broadcast must carry only the second section's modifications (the
  // master's slave-knowledge bookkeeping already covers the first), every
  // node must still observe both sections' writes locally, and re-running
  // the overlapping page set must not resurrect first-section data.
  World w(4, SeqMode::BroadcastAfter);
  auto data = tmk::ShArray<int>::alloc(*w.cl, 2048);
  std::vector<int> first(4, -1);
  std::vector<int> second(4, -1);

  std::uint64_t msgs_after_first = 0;
  std::uint64_t msgs_after_second = 0;
  w.cl->run([&](tmk::NodeRuntime&) {
    w.team->sequential([&](const Ctx&) {
      for (std::size_t i = 0; i < data.size(); ++i) data.store(i, 1);
    });
    msgs_after_first = w.cl->network().messages_sent();
    w.team->sequential([&](const Ctx&) {
      // Overlap the first section's pages and extend past them.
      for (std::size_t i = 0; i < data.size(); ++i) data.store(i, data.load(i) + 10);
    });
    msgs_after_second = w.cl->network().messages_sent();
    w.team->parallel([&](const Ctx& ctx) {
      first[ctx.tid] = data.load(0);
      second[ctx.tid] = data.load(data.size() - 1);
    });
  });

  for (int t = 0; t < 4; ++t) {
    EXPECT_EQ(first[t], 11) << "thread " << t;
    EXPECT_EQ(second[t], 11) << "thread " << t;
  }
  // Both sections actually broadcast (no silent elision of the second).
  EXPECT_GT(msgs_after_first, 0u);
  EXPECT_GT(msgs_after_second, msgs_after_first);
  // The push already distributed everything: parallel reads are local.
  EXPECT_EQ(w.cl->total(tmk::Phase::Parallel).page_faults, 0u);
}

TEST(Rse, BroadcastDoesNotClobberPagesWithOlderUnpulledNotices) {
  // Regression: the eager BcastUpdate apply used to clobber newer data.
  // Node 1 writes a block in a parallel region; nodes 2/3 never read it, so
  // they still owe that page node 1's write notice when the master's next
  // sequential section rewrites every element and broadcasts.  Applying the
  // master's diff eagerly cleared only the master's notice; the later fault
  // then pulled node 1's *older* diff on top of the master's values,
  // resurrecting the pre-section data.  The broadcast must leave such pages
  // invalid so the pull path applies both diffs causally.
  World w(4, SeqMode::BroadcastAfter, FlowControl::Chained, [](World& ww) {
    ww.cfg.page_bytes = 1024;
  });
  constexpr std::size_t kElems = 512;  // 4 pages of 128 longs
  auto data = tmk::ShArray<long>::alloc(*w.cl, kElems, /*page_aligned=*/true);
  std::vector<long> sums(4, -1);

  w.cl->run([&](tmk::NodeRuntime&) {
    // Block distribution: node 1 owns elements the others never touch.
    w.team->parallel_for(0, kElems, Schedule::StaticBlock, [&](const Ctx&, long i) {
      data.store(static_cast<std::size_t>(i), i);
    });
    w.team->sequential([&](const Ctx&) {
      for (std::size_t i = 0; i < kElems; ++i) data.store(i, data.load(i) + 1000);
    });
    // Cyclic distribution: every node reads elements from node 1's block.
    w.team->parallel([&](const Ctx& ctx) {
      long s = 0;
      for (std::size_t i = static_cast<std::size_t>(ctx.tid); i < kElems;
           i += static_cast<std::size_t>(ctx.nthreads)) {
        s += data.load(i);
      }
      sums[ctx.tid] = s;
    });
  });

  std::vector<long> host(4, 0);
  for (std::size_t i = 0; i < kElems; ++i) host[i % 4] += static_cast<long>(i) + 1000;
  for (int t = 0; t < 4; ++t) EXPECT_EQ(sums[t], host[t]) << "thread " << t;
}

TEST(Rse, ReplicatedModeIsDeterministic) {
  auto run_once = [] {
    World w(4, SeqMode::Replicated);
    auto data = tmk::ShArray<int>::alloc(*w.cl, 3000);
    w.cl->run([&](tmk::NodeRuntime&) {
      w.team->parallel_for(0, 3000, Schedule::StaticBlock, [&](const Ctx&, long i) {
        data.store(static_cast<std::size_t>(i), static_cast<int>(i % 17));
      });
      w.team->sequential([&](const Ctx&) {
        for (std::size_t i = 0; i < data.size(); ++i) data.store(i, data.load(i) + 1);
      });
    });
    return std::pair{w.cl->engine().now().ns, w.cl->engine().events_executed()};
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Rse, MasterGuardedSideEffectsRunOnce) {
  World w(4, SeqMode::Replicated);
  auto data = tmk::ShArray<int>::alloc(*w.cl, 64);
  int io_count = 0;

  w.cl->run([&](tmk::NodeRuntime&) {
    w.team->sequential([&](const Ctx& ctx) {
      data.store(0, 1);
      ctx.master_only([&] { ++io_count; });  // I/O guard, Section 5.2
    });
  });

  EXPECT_EQ(io_count, 1);
}

TEST(TeamSchedules, BlockRangePartitionsExactly) {
  long covered = 0;
  for (int t = 0; t < 7; ++t) {
    const auto r = ompnow::block_range(0, 100, t, 7);
    covered += r.hi - r.lo;
    EXPECT_LE(r.lo, r.hi);
  }
  EXPECT_EQ(covered, 100);
  // First ranges absorb the remainder.
  EXPECT_EQ(ompnow::block_range(0, 100, 0, 7).hi - ompnow::block_range(0, 100, 0, 7).lo, 15);
}

TEST(TeamSchedules, IfClauseRunsInlineWithoutFork) {
  World w(4, SeqMode::MasterOnly);
  auto data = tmk::ShArray<int>::alloc(*w.cl, 32);
  w.cl->run([&](tmk::NodeRuntime&) {
    w.team->parallel_for(0, 32, Schedule::StaticCyclic,
                         [&](const Ctx&, long i) { data.store(static_cast<std::size_t>(i), 1); },
                         /*if_parallel=*/false);
  });
  EXPECT_EQ(w.team->parallel_regions(), 0u);
  EXPECT_EQ(w.cl->network().messages_sent(), 0u);
}

}  // namespace
}  // namespace repseq::rse
