#include "sim/cpu.hpp"

#include "util/check.hpp"

namespace repseq::sim {

void Cpu::compute(SimDuration d) {
  REPSEQ_CHECK(d.ns >= 0, "negative compute");
  FiberRef self = eng_.current_fiber();
  REPSEQ_CHECK(self != nullptr, "compute() must run on a fiber");
  REPSEQ_CHECK(app_fiber_ == nullptr, "nested compute() on one CPU");

  SimDuration remaining = d;
  while (remaining.ns > 0) {
    // Wait until no service is monopolizing the CPU.
    while (service_depth_ > 0) {
      WaitToken tok(eng_);
      cpu_free_waiters_.push_back(&tok);
      tok.wait();
      for (auto it = cpu_free_waiters_.begin(); it != cpu_free_waiters_.end(); ++it) {
        if (*it == &tok) {
          cpu_free_waiters_.erase(it);
          break;
        }
      }
    }
    app_fiber_ = self;
    app_started_ = eng_.now();
    app_interrupted_ = false;
    app_wake_ = eng_.schedule_in(remaining, [this, self] {
      app_wake_ = nullptr;
      eng_.unpark(self);
    });
    eng_.park();
    const SimDuration ran = eng_.now() - app_started_;
    busy_ += ran;
    app_fiber_ = nullptr;
    if (!app_interrupted_) {
      return;  // completed the full leg
    }
    remaining -= ran;
  }
}

void Cpu::service(SimDuration d) {
  REPSEQ_CHECK(d.ns >= 0, "negative service");
  FiberRef self = eng_.current_fiber();
  REPSEQ_CHECK(self != nullptr, "service() must run on a fiber");

  // Interrupt an in-flight application compute leg.
  if (app_fiber_ != nullptr && app_wake_ != nullptr) {
    eng_.cancel(app_wake_);
    app_wake_ = nullptr;
    app_interrupted_ = true;
    eng_.unpark(app_fiber_);  // it will account partial progress and requeue
  }

  ++service_depth_;
  eng_.sleep_for(d);
  serviced_ += d;
  --service_depth_;
  if (service_depth_ == 0) {
    // Wake computing fibers waiting for the CPU.
    for (WaitToken* w : cpu_free_waiters_) {
      w->signal();
    }
  }
}

}  // namespace repseq::sim
