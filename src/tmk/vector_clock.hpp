// Vector timestamps over node (thread) ids.  Entry t of node p's clock is
// the most recent interval of thread t that precedes p's current interval in
// the happens-before partial order (paper Section 5.1).
//
// Storage is lazy: a clock knows its logical size from construction but
// allocates the entry array only on the first write.  An unmaterialized
// clock reads as all-zeros, which is exactly the initial timestamp -- this
// matters because the runtime keeps one clock per page per node
// (O(pages x nodes^2) entries cluster-wide) and the vast majority of pages
// are never invalidated, so their clocks stay at zero forever.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "util/check.hpp"

namespace repseq::tmk {

using NodeId = std::uint32_t;

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t nodes) : size_(nodes) {}

  [[nodiscard]] std::size_t size() const { return size_; }

  [[nodiscard]] std::uint32_t at(NodeId n) const { return v_.empty() ? 0 : v_[n]; }
  void set(NodeId n, std::uint32_t val) {
    materialize();
    v_[n] = val;
  }
  void bump(NodeId n) {
    materialize();
    ++v_[n];
  }

  /// True when this clock already covers interval `index` of `owner`
  /// (i.e. that interval happens-before or equals our knowledge).
  [[nodiscard]] bool covers(NodeId owner, std::uint32_t index) const {
    return at(owner) >= index;
  }

  /// Pairwise maximum (performed by the acquirer after a release message).
  void max_with(const VectorClock& o) {
    REPSEQ_CHECK(o.size() == size(), "vector clock size mismatch");
    if (o.v_.empty()) return;  // all-zero contributes nothing
    materialize();
    for (std::size_t i = 0; i < v_.size(); ++i) v_[i] = std::max(v_[i], o.v_[i]);
  }

  /// Pointwise <=.
  [[nodiscard]] bool dominated_by(const VectorClock& o) const {
    REPSEQ_CHECK(o.size() == size(), "vector clock size mismatch");
    if (v_.empty()) return true;  // all-zero is dominated by everything
    for (std::size_t i = 0; i < v_.size(); ++i) {
      if (v_[i] > (o.v_.empty() ? 0 : o.v_[i])) return false;
    }
    return true;
  }

  /// Scalar Lamport projection: strictly increases along happens-before,
  /// usable to totally order interval records consistently with causality.
  [[nodiscard]] std::uint64_t lamport_sum() const {
    return std::accumulate(v_.begin(), v_.end(), std::uint64_t{0});
  }

  /// Logical value comparison: an unmaterialized clock equals an all-zero
  /// materialized one of the same size.
  [[nodiscard]] bool operator==(const VectorClock& o) const {
    if (size_ != o.size_) return false;
    if (v_.empty() && o.v_.empty()) return true;
    for (std::size_t i = 0; i < size_; ++i) {
      if (at(static_cast<NodeId>(i)) != o.at(static_cast<NodeId>(i))) return false;
    }
    return true;
  }

  /// Serialized size on the wire (4 bytes per entry).
  [[nodiscard]] std::size_t wire_bytes() const { return 4 * size_; }

 private:
  void materialize() {
    if (v_.empty()) v_.assign(size_, 0);
  }

  std::size_t size_ = 0;
  std::vector<std::uint32_t> v_;
};

}  // namespace repseq::tmk
