// The pluggable wire model.  A Transport owns all delivery-time modeling for
// point-to-point and group sends; the Network facade owns everything else
// (message ids, byte accounting, loss injection, taps, NIC inboxes).
//
// Contract: a transport computes, per receiver, the virtual time the frame's
// last byte arrives at that receiver's NIC, and reports it through the
// DeliverFn.  Delivery times are never earlier than the send instant, and a
// group send reports each receiver at most once, in a deterministic order
// (which keeps the loss-injection RNG sequence deterministic per backend).
// The facade decides loss per reported delivery and returns the outcome, so
// store-and-forward backends can model a lost frame cutting off everything
// downstream of it.
//
// Accounting is a callback, not a return value: a store-and-forward backend
// puts frames on the wire from *deferred forwarding events* (an interior
// tree node transmits only after its own copy has arrived), so the frame
// count of a group send is not known when multicast() returns.  A backend
// calls the AccountFn at the virtual instant a frame's transmission is
// committed, reporting both frames and wire bytes: with frame coalescing
// (BatchingTransport, tree piggybacking) a constituent's committed bytes are
// its *share* of a combined frame, not the wire size of a standalone send,
// so bytes can no longer be derived as frames x wire by the caller.
// Single-medium backends account their one frame synchronously.  Hops cut
// off by an upstream loss are never accounted -- they were never
// transmitted.  Conservation invariant: summed over all AccountFn
// invocations of all sends, (frames, bytes) equals exactly what went on the
// wire.
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/net_config.hpp"
#include "net/nic.hpp"
#include "net/switch_fabric.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"

namespace repseq::net {

/// Invoked by a transport once per receiver with the arrival time of the
/// frame's last byte at that receiver's NIC.  Returns false when loss
/// injection consumed the frame (the receiver never saw it).  May be
/// invoked after multicast() returned, from a deferred forwarding event;
/// the facade keeps the callback state alive for the whole propagation.
using DeliverFn = std::function<bool(NodeId dst, sim::SimTime at)>;

/// Invoked by a transport at the virtual instant a transmission is
/// committed (possibly from a deferred forwarding/flush event), with the
/// frames put on the wire and this send's share of their wire bytes.  A
/// coalescing backend splits a combined frame's cost across its
/// constituents (the carrier pays the frame + headers, the riders pay their
/// payload bytes), so per-send charges stay conserved against wire truth.
using AccountFn = std::function<void(std::size_t frames, std::size_t bytes)>;

class Transport {
 public:
  Transport(sim::Engine& eng, const NetConfig& cfg, std::vector<std::unique_ptr<Nic>>& nics)
      : eng_(eng), cfg_(cfg), nics_(nics) {}
  virtual ~Transport() = default;

  Transport(const Transport&) = delete;
  Transport& operator=(const Transport&) = delete;

  /// Models the wire path of one point-to-point frame; calls `deliver`
  /// exactly once, for msg.dst, and `account` with the committed frame
  /// cost.  A coalescing backend may defer both callbacks past this call
  /// (see defers_delivery) and charge this send only its share of a
  /// combined frame.
  virtual void unicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
                       const AccountFn& account) = 0;

  /// Models a group send to every node except msg.src; calls `deliver` at
  /// most once per receiver (a store-and-forward backend skips receivers
  /// cut off by an upstream loss), in a deterministic order, and `account`
  /// once per frame actually put on the wire: 1 for a true multicast
  /// medium (the paper counts "each multicast message as a single
  /// message"); unicast-composed backends pay per edge transmitted.  Both
  /// callbacks may fire after this call returns, from deferred forwarding
  /// events (event-driven store-and-forward backends).
  virtual void multicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
                         const AccountFn& account) = 0;

  /// True when this backend may invoke a send's callbacks *after*
  /// unicast()/multicast() returns (event-driven store-and-forward, or a
  /// coalescing window).  The facade keeps callback state on the stack for
  /// synchronous backends and only promotes it to shared ownership when the
  /// backend defers.
  [[nodiscard]] virtual bool defers_delivery() const { return false; }

  /// Frames the *source node itself* transmits for one group send -- what
  /// its CPU is charged send overhead for.  1 on a multicast medium; the
  /// fan-out strawman pays per receiver; a forwarding tree's root pays per
  /// child (descendant forwarding costs are modeled as wire time only).
  [[nodiscard]] virtual std::size_t sender_frames(std::size_t receivers) const {
    (void)receivers;
    return 1;
  }

  /// Number of independent multicast serialization domains this backend
  /// exposes.  1 for every single-medium or unicast-composed backend; the
  /// sharded hub reports its shard count.  Upper layers size their
  /// per-shard round tables off this.
  [[nodiscard]] virtual std::size_t shard_count() const { return 1; }

  /// Total time shard `s` of the multicast medium was busy transmitting
  /// (hub occupancy).  The forwarding tree has no shared medium but still
  /// reports its aggregate forwarding-uplink transmit time here, so
  /// occupancy conservation can be checked per backend; the fan-out
  /// strawman reports zero (its cost is already fully visible as source
  /// uplink serialization).
  [[nodiscard]] virtual sim::SimDuration shard_busy(std::size_t s) const {
    (void)s;
    return {};
  }

 protected:
  sim::Engine& eng_;
  const NetConfig& cfg_;
  std::vector<std::unique_ptr<Nic>>& nics_;
};

/// Common unicast path shared by every backend: the frame serializes on the
/// source uplink, crosses the switch, and serializes again on the
/// destination port (SwitchFabric).
class SwitchedTransport : public Transport {
 public:
  SwitchedTransport(sim::Engine& eng, const NetConfig& cfg,
                    std::vector<std::unique_ptr<Nic>>& nics)
      : Transport(eng, cfg, nics), switch_(eng, cfg, nics.size()) {}

  void unicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
               const AccountFn& account) override {
    account(1, wire_bytes);
    deliver(msg.dst, forward_hop(msg.src, msg.dst, wire_bytes, eng_.now()));
  }

 protected:
  /// One switched src->dst hop whose uplink transmission may not start
  /// before `ready` (used by forwarding hops of software multicast).
  sim::SimTime forward_hop(NodeId src, NodeId dst, std::size_t wire_bytes, sim::SimTime ready) {
    const sim::SimTime at_switch =
        nics_[src]->reserve_uplink(wire_bytes, ready) + cfg_.hop_latency;
    return switch_.forward(dst, wire_bytes, at_switch);
  }

  SwitchFabric switch_;
};

/// Instantiates the backend selected by `cfg.transport`.
std::unique_ptr<Transport> make_transport(sim::Engine& eng, const NetConfig& cfg,
                                          std::vector<std::unique_ptr<Nic>>& nics);

}  // namespace repseq::net
