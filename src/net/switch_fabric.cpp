#include "net/switch_fabric.hpp"

#include "util/check.hpp"

namespace repseq::net {

sim::SimTime SwitchFabric::forward(NodeId dst, std::size_t wire_bytes, sim::SimTime arrival) {
  REPSEQ_CHECK(dst < port_free_.size(), "switch port out of range");
  const sim::SimTime start = std::max(arrival, port_free_[dst]);
  const auto tx_ns = static_cast<std::int64_t>(
      static_cast<double>(wire_bytes) / cfg_.link_bytes_per_sec * 1e9);
  port_free_[dst] = start + sim::SimDuration{tx_ns};
  return port_free_[dst] + cfg_.hop_latency;
}

}  // namespace repseq::net
