// Regenerates paper Table 3: Ilink execution times on 32 nodes.
//
// The paper ran the real Ilink on the CLP pedigree (180 iterations); this
// harness runs the structurally-equivalent synthetic linkage workload (see
// DESIGN.md Section 1).  Shape to check: the optimized system's win is much
// larger than for Barnes-Hut (paper: speedup 1.9 -> 5.5, +189%), because
// the base system's parallel sections are almost pure contention.
#include "bench_common.hpp"

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  using apps::harness::Mode;

  const auto cfg = ilink_config();
  print_header("Table 3: Ilink execution times",
               "PPoPP'01 Table 3 (CLP input, 180 iterations, 32 nodes)",
               (std::string("this run: ") + std::to_string(cfg.families) + " families, " +
                std::to_string(cfg.genotypes) + " genotypes, " +
                std::to_string(cfg.iterations) + " iterations, " +
                std::to_string(bench_nodes()) + " nodes (simulated)")
                   .c_str());

  const auto seq = apps::harness::run_ilink(options_for(Mode::Sequential), cfg);
  const auto orig = apps::harness::run_ilink(options_for(Mode::Original), cfg);
  const auto opt = apps::harness::run_ilink(options_for(Mode::Optimized), cfg);

  if (seq.checksum != orig.checksum || seq.checksum != opt.checksum) {
    std::printf("ERROR: likelihood diverges across modes\n");
    return 1;
  }

  util::Table t({"", "Sequential", "Original", "Optimized", "paper Seq", "paper Orig",
                 "paper Opt"});
  t.add_row({"Total time (sec.)", fmt1(seq.total_s), fmt1(orig.total_s), fmt1(opt.total_s),
             "99.0", "53.6", "18.0"});
  t.add_row({"Total Speedup", "N/A", fmt1(seq.total_s / orig.total_s),
             fmt1(seq.total_s / opt.total_s), "N/A", "1.9", "5.5"});
  t.add_row({"Sequential time (sec.)", fmt1(seq.seq_s), fmt1(orig.seq_s), fmt1(opt.seq_s),
             "2.2", "5.5", "9.2"});
  t.add_row({"Parallel time (sec.)", fmt1(seq.par_s), fmt1(orig.par_s), fmt1(opt.par_s),
             "96.8", "48.1", "8.8"});
  t.add_row({"Parallel speedup", "N/A", fmt1(seq.par_s / orig.par_s),
             fmt1(seq.par_s / opt.par_s), "N/A", "2.0", "11.0"});
  std::printf("%s", t.render().c_str());

  std::printf("\nShape checks:\n");
  std::printf("  optimized beats original overall: %s (%.1fs vs %.1fs; paper +189%%, here %s)\n",
              opt.total_s < orig.total_s ? "yes" : "NO", opt.total_s, orig.total_s,
              util::fmt_pct_change(seq.total_s / orig.total_s, seq.total_s / opt.total_s).c_str());
  std::printf("  replication slows the sequential sections: %s (%.2fs vs %.2fs)\n",
              opt.seq_s > orig.seq_s ? "yes" : "NO", opt.seq_s, orig.seq_s);
  std::printf("  parallel sections collapse: %s (%.2fs vs %.2fs; paper 48.1 -> 8.8)\n",
              opt.par_s < orig.par_s ? "yes" : "NO", opt.par_s, orig.par_s);
  return 0;
}
