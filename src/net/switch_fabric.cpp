#include "net/switch_fabric.hpp"

#include "util/check.hpp"

namespace repseq::net {

sim::SimTime SwitchFabric::forward(NodeId dst, std::size_t wire_bytes, sim::SimTime arrival) {
  REPSEQ_CHECK(dst < port_free_.size(), "switch port out of range");
  const sim::SimTime start = std::max(arrival, port_free_[dst]);
  port_free_[dst] = start + cfg_.link_tx_time(wire_bytes);
  return port_free_[dst] + cfg_.hop_latency;
}

}  // namespace repseq::net
