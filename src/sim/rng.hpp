// Deterministic pseudo-random numbers for workload generation and loss
// injection.  SplitMix64: tiny state, good statistical quality, and the
// sequence is fixed by the seed alone -- two simulation runs with the same
// seed produce bit-identical event streams.
#pragma once

#include <cstdint>

namespace repseq::sim {

class Rng {
 public:
  explicit constexpr Rng(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform in [0, bound).  `bound` must be > 0.
  constexpr std::uint64_t next_below(std::uint64_t bound) { return next_u64() % bound; }

  /// Uniform double in [0, 1).
  constexpr double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  constexpr double uniform(double lo, double hi) { return lo + next_double() * (hi - lo); }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) { return next_double() < p; }

  /// Derives an independent stream (for per-component RNGs).
  [[nodiscard]] constexpr Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::uint64_t state_;
};

}  // namespace repseq::sim
