// perf_sim: the simulator's own performance trajectory.
//
// Unlike the table_* benches (which reproduce the paper's *simulated*
// numbers), this harness measures the simulator as a program: host
// wall-clock, executed events per second, peak live events and allocator
// traffic, over a pinned sweep of cluster sizes on the two paper workloads.
// Everything that could move the numbers is pinned here -- workload sizes,
// seeds, transport, flow control, heap size -- so runs are comparable
// across commits; results are emitted machine-readably to BENCH_sim.json
// for CI's regression gate (see .github/workflows/ci.yml and
// scripts/check_perf_regression.py).
//
// REPSEQ_NODES caps the sweep (e.g. REPSEQ_NODES=256 keeps {32,64,128,256})
// so CI can bound its budget; the full default sweep reaches 1024 nodes.
#include <cstdio>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "apps/harness/run_modes.hpp"
#include "bench_common.hpp"

// ---------------------------------------------------------------------------
// Allocation counting: global operator new/delete overrides local to this
// binary.  The simulator is single-threaded, so plain counters suffice.
// ---------------------------------------------------------------------------

namespace {
std::uint64_t g_allocs = 0;
std::uint64_t g_alloc_bytes = 0;
}  // namespace

void* operator new(std::size_t n) {
  ++g_allocs;
  g_alloc_bytes += n;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++g_allocs;
  g_alloc_bytes += n;
  void* p = std::aligned_alloc(static_cast<std::size_t>(al),
                               (n + static_cast<std::size_t>(al) - 1) &
                                   ~(static_cast<std::size_t>(al) - 1));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace repseq::bench {
namespace {

using apps::harness::Mode;
using apps::harness::RunOptions;
using apps::harness::RunReport;

/// The pinned run configuration.  Nothing here reads the usual REPSEQ_*
/// workload axes on purpose: a perf trajectory is only meaningful against
/// fixed inputs.
RunOptions pinned_options(std::size_t nodes) {
  RunOptions o;
  o.mode = Mode::Optimized;
  o.nodes = nodes;
  o.flow = rse::FlowControl::Chained;
  o.net = net::NetConfig{};  // hub switch, default timing
  o.tmk.heap_bytes = 24u << 20;
  // One diff server fields O(N) queued requests for a hot page; the
  // retransmit timeout must cover that service backlog at large N or the
  // protocol spends the run re-requesting (and eventually aborts).
  if (nodes > 256) {
    o.tmk.request_timeout = sim::milliseconds(static_cast<std::int64_t>(nodes));
  }
  return o;
}

struct PerfRow {
  const char* app;
  std::size_t nodes;
  double wall_s;
  std::uint64_t sim_events;
  double events_per_sec;
  std::size_t peak_live;
  std::uint64_t allocs;
  std::uint64_t alloc_bytes;
  double checksum;
  std::uint64_t msgs;
};

PerfRow measure(const char* app, std::size_t nodes, const RunReport& r,
                std::uint64_t allocs, std::uint64_t alloc_bytes) {
  PerfRow row;
  row.app = app;
  row.nodes = nodes;
  row.wall_s = r.host_wall_s;
  row.sim_events = r.sim_events;
  row.events_per_sec = r.host_wall_s > 0 ? static_cast<double>(r.sim_events) / r.host_wall_s : 0;
  row.peak_live = r.peak_live_events;
  row.allocs = allocs;
  row.alloc_bytes = alloc_bytes;
  row.checksum = r.checksum;
  row.msgs = r.total_msgs;
  return row;
}

/// Pre-PR reference for the headline comparison: the same pinned 256-node
/// Barnes-Hut run measured on the shared_ptr/std::function engine before
/// this optimization pass (ucontext fibers, per-event heap allocations,
/// eager page metadata).  The event count is engine-independent -- the
/// virtual-time schedule is identical -- so events/sec follows from the
/// recorded wall time.
constexpr double kPrePrBh256WallS = 60.48;

}  // namespace
}  // namespace repseq::bench

int main() {
  using namespace repseq;
  using namespace repseq::bench;

  const std::size_t cap = static_cast<std::size_t>(env_long("NODES", 1024));
  std::vector<std::size_t> node_counts;
  for (std::size_t n : {32, 64, 128, 256, 512, 1024}) {
    if (n <= cap) node_counts.push_back(n);
  }
  if (node_counts.empty()) node_counts.push_back(32);

  print_header("perf_sim: simulator host-performance sweep",
               "engineering telemetry (no paper table)",
               "pinned workloads; REPSEQ_NODES caps the sweep");

  apps::bh::BhConfig bh;
  bh.bodies = 2048;
  bh.steps = 2;

  apps::ilink::IlinkConfig il;  // pinned at struct defaults, seed included
  il.iterations = 4;

  std::vector<PerfRow> rows;
  std::printf("%-11s %6s %10s %12s %14s %10s %12s\n", "app", "nodes", "wall_s", "events",
              "events/sec", "peak_live", "allocs");
  for (std::size_t n : node_counts) {
    {
      const std::uint64_t a0 = g_allocs;
      const std::uint64_t b0 = g_alloc_bytes;
      RunReport r = run_barnes_hut(pinned_options(n), bh);
      rows.push_back(measure("barnes_hut", n, r, g_allocs - a0, g_alloc_bytes - b0));
    }
    {
      const std::uint64_t a0 = g_allocs;
      const std::uint64_t b0 = g_alloc_bytes;
      RunReport r = run_ilink(pinned_options(n), il);
      rows.push_back(measure("ilink", n, r, g_allocs - a0, g_alloc_bytes - b0));
    }
    for (std::size_t i = rows.size() - 2; i < rows.size(); ++i) {
      const PerfRow& row = rows[i];
      std::printf("%-11s %6zu %10.3f %12llu %14.0f %10zu %12llu\n", row.app, row.nodes,
                  row.wall_s, static_cast<unsigned long long>(row.sim_events),
                  row.events_per_sec, row.peak_live,
                  static_cast<unsigned long long>(row.allocs));
    }
  }

  // Headline: 256-node Barnes-Hut vs the recorded pre-PR engine.
  double headline_eps = 0;
  std::uint64_t headline_events = 0;
  for (const PerfRow& row : rows) {
    if (std::string(row.app) == "barnes_hut" && row.nodes == 256) {
      headline_eps = row.events_per_sec;
      headline_events = row.sim_events;
    }
  }

  std::FILE* f = std::fopen("BENCH_sim.json", "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot write BENCH_sim.json\n");
    return 1;
  }
  std::fprintf(f, "{\n  \"bench\": \"perf_sim\",\n");
  std::fprintf(f,
               "  \"pinned\": {\"mode\": \"Optimized\", \"transport\": \"hub\", "
               "\"flow\": \"chained\", \"heap_mb\": 24, \"bh_bodies\": 2048, "
               "\"bh_steps\": 2, \"ilink_iterations\": 4},\n");
  std::fprintf(f, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PerfRow& row = rows[i];
    std::fprintf(f,
                 "    {\"app\": \"%s\", \"nodes\": %zu, \"wall_s\": %.4f, "
                 "\"sim_events\": %llu, \"events_per_sec\": %.1f, "
                 "\"peak_live_events\": %zu, \"allocations\": %llu, "
                 "\"alloc_bytes\": %llu, \"checksum\": %.6f, \"msgs\": %llu}%s\n",
                 row.app, row.nodes, row.wall_s,
                 static_cast<unsigned long long>(row.sim_events), row.events_per_sec,
                 row.peak_live, static_cast<unsigned long long>(row.allocs),
                 static_cast<unsigned long long>(row.alloc_bytes), row.checksum,
                 static_cast<unsigned long long>(row.msgs),
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  if (headline_events > 0) {
    const double pre_eps = static_cast<double>(headline_events) / kPrePrBh256WallS;
    std::fprintf(f,
                 "  \"headline\": {\"workload\": \"barnes_hut_n256\", "
                 "\"events_per_sec\": %.1f, \"pre_pr_wall_s\": %.2f, "
                 "\"pre_pr_events_per_sec\": %.1f, \"speedup\": %.2f}\n",
                 headline_eps, kPrePrBh256WallS, pre_eps, headline_eps / pre_eps);
    std::printf("\nheadline: barnes_hut n=256  %.0f events/sec  (pre-PR %.0f; %.1fx)\n",
                headline_eps, pre_eps, headline_eps / pre_eps);
  } else {
    std::fprintf(f, "  \"headline\": null\n");
  }
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote BENCH_sim.json (%zu runs)\n", rows.size());
  return 0;
}
