// Adaptive per-section replication policy engine.
//
// The engine sits beside rse::RseController and decides, at every
// sequential-section entry, how *that* section executes: master-only (the
// base system), replicated (the paper's optimization), or
// execute-then-broadcast (the Section 4.2 alternative).  The master makes
// the decision from per-site telemetry and multicasts it in a
// PolicySectionOpen message -- its own message kind, registered through the
// tmk::ProtocolEngine dispatch registry exactly like the RSE flow-control
// handler sets -- so every node records the same agreed decision sequence.
//
// Telemetry discipline: the decision function consumes only protocol-level
// counts (pages written, stale pages read, post-section faults), which are
// identical across transport backends and shard counts; wall-clock section
// times and multicast byte counters are transport-dependent and are kept as
// reporting fields on the decision log only.  In a real system the counter
// deltas the master reads here would piggyback on the join/barrier messages
// that already bracket every section at zero extra frames; the simulation
// reads them from tmk::Stats directly.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <vector>

#include "rse/policy/cost_model.hpp"
#include "rse/policy/policy.hpp"
#include "tmk/runtime.hpp"

namespace repseq::rse::policy {

class PolicyEngine {
 public:
  /// Registers the PolicySectionOpen handler with the cluster's dispatch
  /// registry; constructing two engines on one cluster is a wiring bug and
  /// aborts (duplicate registration).
  explicit PolicyEngine(tmk::Cluster& cluster, PolicyConfig cfg = {});

  PolicyEngine(const PolicyEngine&) = delete;
  PolicyEngine& operator=(const PolicyEngine&) = delete;

  /// Master application fiber, at section entry: finalizes the previous
  /// section's aftermath window, decides this section's strategy, multicasts
  /// the decision, and opens the during-section measurement window.
  [[nodiscard]] SectionStrategy open_section(tmk::NodeRuntime& master, std::uint32_t site);

  /// Master application fiber, immediately after the strategy's execution
  /// bracket completes: folds the during-section telemetry into the site
  /// profile and opens the aftermath (post-section contention) window.
  void close_section(tmk::NodeRuntime& master);

  [[nodiscard]] const PolicyConfig& config() const { return cfg_; }
  [[nodiscard]] const CostModel& model() const { return model_; }

  /// The master's decision log (decision + close-time reporting telemetry).
  [[nodiscard]] const std::vector<Decision>& decisions() const { return log_[0]; }
  /// Per-node copy of the agreed decision sequence, built from the
  /// section-open multicasts (master-side fields are zero on slave copies).
  [[nodiscard]] const std::vector<Decision>& node_log(net::NodeId n) const { return log_[n]; }

  [[nodiscard]] std::uint64_t sections() const { return log_[0].size(); }
  [[nodiscard]] std::uint64_t switches() const { return switches_; }
  [[nodiscard]] const std::array<std::uint64_t, kStrategyCount>& strategy_counts() const {
    return counts_;
  }
  /// Telemetry profile of one section site (nullptr before its first run).
  [[nodiscard]] const SectionProfile* profile(std::uint32_t site) const;

 private:
  struct SiteState {
    SectionProfile profile;
    SectionStrategy current = SectionStrategy::Replicated;
    std::uint64_t last_switch_run = 0;
  };

  [[nodiscard]] SectionStrategy decide(const SiteState& st) const;
  void finalize_aftermath();
  [[nodiscard]] double ewma(double prev, double sample, bool first) const;

  // Cluster-wide counter sums (the values a real master would piggyback on
  // the bracketing synchronization messages).
  [[nodiscard]] std::uint64_t master_par_diff_msgs() const;
  [[nodiscard]] std::uint64_t master_par_diff_bytes() const;
  [[nodiscard]] std::uint64_t total_seq_fwd_requests() const;
  [[nodiscard]] std::uint64_t total_seq_mcast_bytes() const;

  tmk::Cluster& cluster_;
  PolicyConfig cfg_;
  CostModel model_;

  std::map<std::uint32_t, SiteState> sites_;
  std::vector<std::vector<Decision>> log_;  // [node] -> agreed sequence
  std::array<std::uint64_t, kStrategyCount> counts_{};
  std::uint64_t switches_ = 0;
  std::uint64_t next_seq_ = 1;

  // During-section window (master side).
  bool section_open_ = false;
  std::uint32_t open_site_ = 0;
  SectionStrategy open_strategy_ = SectionStrategy::Replicated;
  sim::SimTime open_t0_{};
  std::uint64_t snap_master_seq_faults_ = 0;
  std::uint64_t snap_fwd_requests_ = 0;
  std::uint64_t snap_mcast_bytes_ = 0;
  std::uint32_t snap_master_vc0_ = 0;

  // Aftermath window: close -> next open, attributed to the closed section.
  bool aftermath_pending_ = false;
  std::uint32_t aftermath_site_ = 0;
  SectionStrategy aftermath_strategy_ = SectionStrategy::Replicated;
  std::uint64_t snap_master_par_diffs_ = 0;
  std::uint64_t snap_master_par_bytes_ = 0;
};

}  // namespace repseq::rse::policy
