#include "sim/engine.hpp"

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace repseq::sim {

FiberRef Engine::spawn(std::string name, std::function<void()> fn, std::size_t stack_bytes) {
  fibers_.push_back(std::make_unique<Fiber>(std::move(name), std::move(fn), stack_bytes));
  FiberRef f = fibers_.back().get();
  make_runnable(f);
  return f;
}

void Engine::make_runnable(FiberRef f) {
  REPSEQ_CHECK(!f->finished(), "cannot schedule finished fiber " + f->name());
  runnable_.push_back(f);
}

void Engine::drain_runnable() {
  while (!runnable_.empty()) {
    FiberRef f = runnable_.front();
    runnable_.pop_front();
    if (f->finished()) continue;  // duplicate wake after completion
    if (obs::enabled(obs::Cat::Sim)) [[unlikely]] {
      obs::tracer().instant(obs::Cat::Sim, now_, f->trace_pid(), "sched",
                            obs::tracer().intern(f->name()));
    }
    f->resume();
    if (f->finished()) {
      f->rethrow_if_failed();
    }
  }
}

void Engine::run() {
  REPSEQ_CHECK(!running_, "Engine::run is not reentrant");
  running_ = true;
  drain_runnable();
  while (!events_.empty()) {
    EventQueue::Popped e = events_.pop();
    REPSEQ_CHECK(e.time >= now_, "event scheduled in the past");
    now_ = e.time;
    ++events_executed_;
    if (obs::enabled(obs::Cat::Sim)) [[unlikely]] {
      // Sampled, not per-event: the depth curve matters, not every step.
      if ((events_executed_ & 255u) == 0) {
        obs::tracer().counter(obs::Cat::Sim, now_, 0, "eventq-depth",
                              static_cast<double>(events_.live_count()));
      }
    }
    e.fn();
    drain_runnable();
  }
  running_ = false;
}

void Engine::sleep_for(SimDuration d) {
  REPSEQ_CHECK(d.ns >= 0, "negative sleep");
  FiberRef self = current_fiber();
  REPSEQ_CHECK(self != nullptr, "sleep_for must be called from a fiber");
  schedule_in(d, [this, self] { unpark(self); });
  Fiber::yield();
}

void Engine::park() {
  FiberRef self = current_fiber();
  REPSEQ_CHECK(self != nullptr, "park must be called from a fiber");
  Fiber::yield();
}

void Engine::unpark(FiberRef f) {
  REPSEQ_CHECK(f != nullptr, "unpark(nullptr)");
  make_runnable(f);
}

bool WaitToken::signal() {
  if (done_ || signalled_) return false;
  signalled_ = true;
  eng_.unpark(fiber_);
  return true;
}

bool WaitToken::wait(SimDuration timeout) {
  REPSEQ_CHECK(eng_.current_fiber() == fiber_, "WaitToken::wait from wrong fiber");
  EventQueue::Handle timer;
  if (timeout.ns >= 0) {
    timer = eng_.schedule_in(timeout, [this] {
      if (!done_ && !signalled_) {
        done_ = true;  // timed out: mark resolved so a late signal() is a no-op
        eng_.unpark(fiber_);
      }
    });
  }
  while (!signalled_ && !done_) {
    eng_.park();
  }
  if (timer) eng_.cancel(timer);
  const bool ok = signalled_;
  done_ = true;
  return ok;
}

}  // namespace repseq::sim
