// The transport-level message unit.  The network layer is deliberately
// payload-agnostic: upper layers (the DSM protocol) attach a typed payload
// object plus an explicit wire-size so byte accounting matches what a real
// serialization would have produced.  Since the whole cluster lives in one
// address space there is no reason to actually serialize.
#pragma once

#include <cstdint>

#include "util/pool_ptr.hpp"

namespace repseq::net {

using NodeId = std::uint32_t;

/// Destination value meaning "the single IP-multicast group" (every node
/// joins it at program start, paper Section 5.4).
inline constexpr NodeId kMulticastDst = 0xffffffffu;

struct Message {
  NodeId src = 0;
  NodeId dst = 0;
  /// Protocol-defined discriminator (net layer treats it as opaque).
  std::uint32_t kind = 0;
  /// Multicast group key: the sharded-hub medium hashes it to pick the
  /// shard carrying this frame (see net::shard_of).  Ignored by unicast and
  /// by single-medium backends.  The DSM layer keys round traffic by page.
  std::uint64_t mcast_group = 0;
  /// Payload bytes as they would appear on the wire (excluding headers).
  std::size_t payload_bytes = 0;
  /// The typed payload, cast back by the protocol layer.  Pool-backed and
  /// non-atomically counted: multicast delivery copies this handle once per
  /// receiver, which must not be a locked RMW storm at 1024 nodes.
  util::PoolPtr<const void> payload{};
  /// Unique per-simulation id (assigned by Network::send) for tracing.
  std::uint64_t id = 0;

  template <typename T>
  [[nodiscard]] const T& as() const {
    return *static_cast<const T*>(payload.get());
  }
};

}  // namespace repseq::net
