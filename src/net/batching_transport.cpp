#include "net/batching_transport.hpp"

#include <utility>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace repseq::net {

BatchingTransport::BatchingTransport(sim::Engine& eng, const NetConfig& cfg,
                                     std::vector<std::unique_ptr<Nic>>& nics,
                                     std::unique_ptr<Transport> inner)
    : Transport(eng, cfg, nics), inner_(std::move(inner)) {
  REPSEQ_CHECK(cfg.batch_window.ns > 0, "BatchingTransport needs a nonzero window");
}

void BatchingTransport::unicast(const Message& msg, std::size_t wire_bytes,
                                const DeliverFn& deliver, const AccountFn& account) {
  (void)wire_bytes;  // recomputed for the combined payload at flush
  enqueue(unicast_key(msg.src, msg.dst), /*is_multicast=*/false, msg, deliver, account);
}

void BatchingTransport::multicast(const Message& msg, std::size_t wire_bytes,
                                  const DeliverFn& deliver, const AccountFn& account) {
  if (inner_->defers_delivery()) {
    // The forwarding tree's frames leave hop by hop from interior nodes;
    // it piggybacks per interior edge itself (tree_multicast_transport).
    inner_->multicast(msg, wire_bytes, deliver, account);
    return;
  }
  enqueue(multicast_key(msg.src, shard_of(msg.mcast_group, inner_->shard_count())),
          /*is_multicast=*/true, msg, deliver, account);
}

void BatchingTransport::enqueue(std::uint64_t key, bool is_multicast, const Message& msg,
                                const DeliverFn& deliver, const AccountFn& account) {
  Queue& q = queues_[key];
  if (q.window_open) {
    q.q.push_back(Pending{msg, deliver, account});
    return;
  }
  // Idle destination: the frame leaves at once and opens the window behind
  // it, so the first frame of a burst -- and every step of a chained round
  // -- pays no coalescing delay; only the pile-up does.
  q.window_open = true;
  if (obs::enabled(obs::Cat::Net)) [[unlikely]] {
    obs::tracer().instant(obs::Cat::Net, eng_.now(), static_cast<std::int32_t>(msg.src) + 1,
                          "net-batch", "window-open",
                          {{"key", static_cast<double>(key)},
                           {"window_ns", static_cast<double>(cfg_.batch_window.ns)}});
  }
  eng_.schedule_in(cfg_.batch_window, [this, key, is_multicast] { flush(key, is_multicast); });
  transmit(is_multicast, {Pending{msg, deliver, account}});
}

void BatchingTransport::flush(std::uint64_t key, bool is_multicast) {
  Queue& q = queues_[key];
  if (q.q.empty()) {
    // Nothing arrived while the window was open: the destination goes idle
    // and the next send will again leave immediately.
    q.window_open = false;
    return;
  }
  const std::vector<Pending> batch = std::move(q.q);
  q.q.clear();
  // Traffic is still flowing to this destination: re-arm the window so a
  // sustained stream keeps leaving as one combined frame per window.
  eng_.schedule_in(cfg_.batch_window, [this, key, is_multicast] { flush(key, is_multicast); });
  transmit(is_multicast, batch);
}

void BatchingTransport::transmit(bool is_multicast, const std::vector<Pending>& batch) {
  // The combined frame: concatenated payloads under one set of headers.
  // Group identity (src, dst/mcast_group, kind) is taken from the carrier;
  // every constituent in this queue shares the delivery set by key
  // construction, and the inner backend never reads the payload.
  Message combined = batch.front().msg;
  std::size_t payload_total = 0;
  for (const Pending& p : batch) payload_total += p.msg.payload_bytes;
  combined.payload_bytes = payload_total;
  const std::size_t combined_wire = cfg_.wire_bytes(payload_total);
  if (obs::enabled(obs::Cat::Net)) [[unlikely]] {
    obs::tracer().instant(obs::Cat::Net, eng_.now(),
                          static_cast<std::int32_t>(combined.src) + 1, "net-batch",
                          "batch-commit",
                          {{"coalesced", static_cast<double>(batch.size())},
                           {"wire_bytes", static_cast<double>(combined_wire)},
                           {"mcast", is_multicast ? 1.0 : 0.0}});
  }

  // The inner backend is synchronous on this path (unicast everywhere;
  // multicast only for non-deferring backends), so the committed totals are
  // complete when the call returns and can be split across constituents.
  std::size_t frames_total = 0;
  std::size_t bytes_total = 0;
  const auto deliver_all = [&](NodeId dst, sim::SimTime at) {
    bool any = false;
    for (const Pending& p : batch) {
      if (p.deliver(dst, at)) any = true;  // per-constituent loss draw
    }
    return any;
  };
  const auto account_total = [&](std::size_t frames, std::size_t bytes) {
    frames_total += frames;
    bytes_total += bytes;
  };
  if (is_multicast) {
    inner_->multicast(combined, combined_wire, deliver_all, account_total);
  } else {
    inner_->unicast(combined, combined_wire, deliver_all, account_total);
  }

  // Carrier/rider split (see transport.hpp): riders pay their payload
  // bytes, the carrier pays the rest (frames, headers, fan-out).
  std::size_t rider_bytes = 0;
  for (std::size_t i = 1; i < batch.size(); ++i) {
    rider_bytes += batch[i].msg.payload_bytes;
    batch[i].account(0, batch[i].msg.payload_bytes);
  }
  REPSEQ_CHECK(bytes_total >= rider_bytes, "combined frame smaller than its riders");
  batch.front().account(frames_total, bytes_total - rider_bytes);
}

}  // namespace repseq::net
