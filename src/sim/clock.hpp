// Virtual time for the discrete-event cluster simulation.
//
// All latencies, bandwidth delays and CPU costs in the reproduction are
// expressed in virtual nanoseconds.  Strong types keep wall-clock time (which
// is meaningless here) out of the measurement path.
#pragma once

#include <compare>
#include <cstdint>

namespace repseq::sim {

/// A span of virtual time, in nanoseconds.
struct SimDuration {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const SimDuration&) const = default;
  constexpr SimDuration operator+(SimDuration o) const { return {ns + o.ns}; }
  constexpr SimDuration operator-(SimDuration o) const { return {ns - o.ns}; }
  constexpr SimDuration& operator+=(SimDuration o) {
    ns += o.ns;
    return *this;
  }
  constexpr SimDuration& operator-=(SimDuration o) {
    ns -= o.ns;
    return *this;
  }
  constexpr SimDuration operator*(std::int64_t k) const { return {ns * k}; }

  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns) * 1e-6; }
  [[nodiscard]] constexpr double micros() const { return static_cast<double>(ns) * 1e-3; }
};

constexpr SimDuration nanoseconds(std::int64_t v) { return {v}; }
constexpr SimDuration microseconds(std::int64_t v) { return {v * 1000}; }
constexpr SimDuration milliseconds(std::int64_t v) { return {v * 1'000'000}; }
constexpr SimDuration seconds_d(double v) {
  return {static_cast<std::int64_t>(v * 1e9)};
}

/// An instant of virtual time since simulation start.
struct SimTime {
  std::int64_t ns = 0;

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimDuration d) const { return {ns + d.ns}; }
  constexpr SimDuration operator-(SimTime o) const { return {ns - o.ns}; }

  [[nodiscard]] constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
  [[nodiscard]] constexpr double millis() const { return static_cast<double>(ns) * 1e-6; }
};

}  // namespace repseq::sim
