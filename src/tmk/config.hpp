// DSM runtime configuration and CPU cost model.
//
// CPU costs are calibrated to the paper's 800 MHz Athlon / FreeBSD testbed.
// They matter only through ratios (computation vs communication); the
// benchmark harness reports shape, not absolute seconds.
#pragma once

#include <cstdint>

#include "sim/clock.hpp"

namespace repseq::tmk {

struct TmkConfig {
  /// Shared page size.  TreadMarks used the VM page size (4 KB).
  std::size_t page_bytes = 4096;

  /// Shared heap capacity.
  std::size_t heap_bytes = 8u << 20;

  /// CPU cost of a page-protection trap + handler entry (the cost of a
  /// page fault that TreadMarks takes via SIGSEGV).
  sim::SimDuration fault_overhead = sim::microseconds(25);

  /// CPU cost per byte of diff creation (twin comparison + encode).
  double diff_create_ns_per_byte = 1.5;
  /// Fixed CPU cost per diff creation.
  sim::SimDuration diff_create_fixed = sim::microseconds(15);

  /// CPU cost per byte of diff application.
  double diff_apply_ns_per_byte = 1.0;
  /// Fixed CPU cost per diff applied.
  sim::SimDuration diff_apply_fixed = sim::microseconds(10);

  /// CPU cost of twin creation (page copy), per byte.
  double twin_ns_per_byte = 0.4;

  /// Request retransmission timeout (TreadMarks retries lost UDP requests).
  sim::SimDuration request_timeout = sim::milliseconds(40);
  /// Abort after this many retransmissions of the same request.
  int max_retries = 25;

  /// Timeout before a faulting thread inside a replicated sequential
  /// section falls back to direct recovery (paper Section 5.4.2: "rather
  /// expensive ... almost never invoked").  Deliberately generous: rounds
  /// serialize at the master, so a legitimate wait spans many rounds.
  sim::SimDuration rse_wait_timeout = sim::milliseconds(2000);

  /// Quantum for accrued application compute (see sim::Cpu).
  sim::SimDuration compute_quantum = sim::microseconds(50);
};

}  // namespace repseq::tmk
