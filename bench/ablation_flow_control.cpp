// Ablation A3 (paper Sections 5.4.3 and 8): the cost of the conservative
// chained-ack flow control, the projected benefit of a windowed scheme that
// "allows more concurrency in message delivery", and the strawman with no
// flow control at all (which overruns receive buffers and falls back to
// timeout recovery).  An Adaptive row rides along so the table also carries
// the per-site policy decision telemetry from the metrics registry.
#include "bench_common.hpp"

namespace {

/// Formats a RunReport's registry-sourced per-site policy telemetry as
/// "site:decisions/switches/final ..." ("-" for non-adaptive rows).
std::string site_policy_cell(const repseq::apps::harness::RunReport& r) {
  std::string out;
  for (const auto& sp : r.site_policy) {
    if (!out.empty()) out += ' ';
    out += std::to_string(sp.site) + ':' + std::to_string(sp.decisions) + '/' +
           std::to_string(sp.switches) + '/' + sp.final_strategy;
  }
  return out.empty() ? "-" : out;
}

}  // namespace

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  using apps::harness::Mode;
  using rse::FlowControl;

  apps::bh::BhConfig cfg = bh_config();
  print_header("Ablation: multicast flow-control policies (Barnes-Hut, Optimized)",
               "PPoPP'01 Sections 5.4.3 / 8 (chained acks are the paper's protocol)",
               (std::string("this run: ") + std::to_string(cfg.bodies) + " bodies, " +
                std::to_string(cfg.steps) + " steps, " + std::to_string(bench_nodes()) +
                " nodes (simulated)")
                   .c_str());

  struct Row {
    const char* name;
    Mode mode;
    FlowControl flow;
    std::size_t recv_buffer;
  };
  const Row rows[] = {
      {"Chained (paper)", Mode::Optimized, FlowControl::Chained, 64},
      {"Windowed (future work)", Mode::Optimized, FlowControl::Windowed, 64},
      {"None (strawman)", Mode::Optimized, FlowControl::None, 16},
      {"Adaptive (chained)", Mode::Adaptive, FlowControl::Chained, 64},
  };

  util::Table t({"policy", "seq time (s)", "total (s)", "seq msgs", "null acks", "drops",
                 "recoveries", "decisions", "switches", "site:dec/sw/final"});
  double chained_seq = 0;
  double windowed_seq = 0;
  for (const Row& row : rows) {
    auto opt = options_for(row.mode);
    opt.flow = row.flow;
    opt.net.recv_buffer_msgs = row.recv_buffer;
    const auto r = apps::harness::run_barnes_hut(opt, cfg);
    if (row.mode == Mode::Optimized && row.flow == FlowControl::Chained) chained_seq = r.seq_s;
    if (row.flow == FlowControl::Windowed) windowed_seq = r.seq_s;
    t.add_row({row.name, fmt2(r.seq_s), fmt2(r.total_s), util::fmt_count(r.seq_msgs),
               util::fmt_count(r.seq_null_acks), util::fmt_count(r.drops),
               util::fmt_count(r.recoveries),
               r.mode == Mode::Adaptive ? util::fmt_count(r.sections) : "-",
               r.mode == Mode::Adaptive ? util::fmt_count(r.policy_switches) : "-",
               site_policy_cell(r)});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\nShape checks:\n");
  std::printf("  windowed delivery shortens the replicated sections: %s (%.2fs -> %.2fs)\n",
              windowed_seq < chained_seq ? "yes" : "NO", chained_seq, windowed_seq);
  std::printf("  (the paper anticipates exactly this: \"strategies ... will substantially\n"
              "   improve our results\", Section 8)\n");
  std::printf("  site:dec/sw/final is registry-sourced per-site decision telemetry\n"
              "  (sections decided / switch points / settled strategy).\n");
  return 0;
}
