#include "net/hub_switch_transport.hpp"

namespace repseq::net {

void HubSwitchTransport::multicast(const Message& msg, std::size_t wire_bytes,
                                   const DeliverFn& deliver, const AccountFn& account) {
  // One frame occupies the shared medium; all receivers see it at the same
  // instant once it has fully propagated.
  const sim::SimTime done = hub_.transmit(wire_bytes, eng_.now());
  account(1, wire_bytes);
  for (NodeId n = 0; n < nics_.size(); ++n) {
    if (n == msg.src) continue;  // the sender consumes its own data locally
    deliver(n, done);
  }
}

}  // namespace repseq::net
