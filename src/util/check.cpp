#include "util/check.hpp"

#include <cstdio>
#include <cstdlib>

namespace repseq::util {

void check_failed(const char* expr, const std::string& msg, std::source_location loc) {
  std::fprintf(stderr, "REPSEQ_CHECK failed: %s\n  at %s:%u in %s\n  %s\n", expr,
               loc.file_name(), loc.line(), loc.function_name(), msg.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace repseq::util
