// The cluster network facade: assigns message ids, keeps byte/message
// accounting, injects loss, and lands deliveries in per-node NIC inboxes.
// All wire-time modeling lives in the pluggable Transport backend selected
// by NetConfig::transport; CPU costs (send/receive software overheads) are
// charged by the protocol layer against the node CPUs so that they interact
// correctly with the interrupt model.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/message.hpp"
#include "net/net_config.hpp"
#include "net/nic.hpp"
#include "net/transport.hpp"
#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace repseq::net {

class Network {
 public:
  Network(sim::Engine& eng, NetConfig cfg, std::size_t nodes);

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  /// Per-send wire accounting, invoked once per batch of frames the
  /// transport commits to the wire -- possibly *after* the send call
  /// returned, from a deferred forwarding or coalescing-window flush event.
  /// Under frame coalescing (NetConfig::batch_window) a send's committed
  /// bytes are its *share* of a combined frame, and frames may be zero for
  /// a send that rode another send's frame.  Callers that charge the
  /// committed cost to per-phase/per-shard counters must capture stable
  /// references: the callback outlives the send call.
  using SendAccount = std::function<void(std::size_t frames, std::size_t bytes)>;

  /// Sends point-to-point.  Returns the assigned message id.
  /// Must be called from a fiber of the source node (timing uses `now`).
  /// `account` (when set) observes the committed wire cost -- deferred to
  /// the window flush when the backend coalesces.
  std::uint64_t unicast(Message msg, SendAccount account = {});

  /// Sends to every *other* node (single multicast group).  Frame/byte
  /// accounting is backend-dependent and may be deferred; `account` (when
  /// set) observes every frame as it is committed.
  std::uint64_t multicast(Message msg, SendAccount account = {});

  [[nodiscard]] Nic& nic(NodeId n) { return *nics_[n]; }
  [[nodiscard]] std::size_t node_count() const { return nics_.size(); }
  [[nodiscard]] const NetConfig& config() const { return cfg_; }

  /// Frames the source node itself transmits for one group send.
  [[nodiscard]] std::size_t multicast_sender_frames() const {
    return nics_.size() > 1 ? transport_->sender_frames(nics_.size() - 1) : 1;
  }

  /// Multicast serialization domains of the active backend (1 everywhere
  /// except the sharded hub); upper layers size per-shard round tables and
  /// per-shard traffic accounting off this.
  [[nodiscard]] std::size_t hub_shards() const { return transport_->shard_count(); }

  /// Time shard `s` of the multicast medium spent transmitting.
  [[nodiscard]] sim::SimDuration hub_busy(std::size_t s) const {
    return transport_->shard_busy(s);
  }

  /// The shard a multicast group maps to on the active backend.
  [[nodiscard]] std::size_t shard_of_group(std::uint64_t group) const {
    return shard_of(group, transport_->shard_count());
  }

  /// Observability for tests and the benchmark harness.
  [[nodiscard]] std::uint64_t messages_sent() const { return messages_sent_; }
  [[nodiscard]] std::uint64_t bytes_sent() const { return bytes_sent_; }
  [[nodiscard]] std::uint64_t deliveries() const { return deliveries_; }
  [[nodiscard]] std::uint64_t losses_injected() const { return losses_injected_; }
  [[nodiscard]] std::uint64_t total_drops() const;

  /// Optional tap invoked for every send (protocol-layer accounting).
  using SendTap = std::function<void(const Message&, std::size_t wire_bytes, bool is_multicast)>;
  void set_send_tap(SendTap tap) { tap_ = std::move(tap); }

  /// Restricts loss injection to messages for which the filter returns
  /// true.  The DSM layer exempts synchronization traffic, whose transport
  /// retries are not the behaviour under study; the diff/multicast paths
  /// carry their own timeout recovery (paper Section 5.4.2).
  using LossFilter = std::function<bool(const Message&)>;
  void set_loss_filter(LossFilter f) { lossable_ = std::move(f); }

  /// Same classification for receive-ring overflow (see
  /// Nic::set_drop_filter): installed on every NIC.
  void set_drop_filter(Nic::DropFilter f) {
    for (auto& nic : nics_) nic->set_drop_filter(f);
  }

 private:
  /// Schedules delivery unless loss injection consumes the frame; returns
  /// whether the frame survives (transports use this to prune forwarding
  /// downstream of a lost frame).
  bool deliver_at(sim::SimTime t, NodeId dst, const Message& msg);

  /// The per-delivery loss decision (honoring the loss filter); consumes
  /// one RNG draw per lossable delivery and counts injected losses.
  bool lose_frame(const Message& msg);

  /// Schedules batched inbox deliveries: one simulation event per run of
  /// equal arrival times in `sched`.
  void flush_group_schedule(const std::vector<std::pair<sim::SimTime, NodeId>>& sched,
                            const Message& msg);

  sim::Engine& eng_;
  NetConfig cfg_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::unique_ptr<Transport> transport_;
  sim::Rng loss_rng_;
  SendTap tap_{};
  LossFilter lossable_{};

  std::uint64_t next_id_ = 1;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t deliveries_ = 0;
  std::uint64_t losses_injected_ = 0;
};

}  // namespace repseq::net
