// Unit tests for the passive DSM data structures: diffs, vector clocks,
// interval logs, the shared heap and page bookkeeping.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <vector>

#include "sim/rng.hpp"
#include "tmk/diff.hpp"
#include "tmk/gaddr.hpp"
#include "tmk/interval.hpp"
#include "tmk/shared_heap.hpp"
#include "tmk/vector_clock.hpp"

namespace repseq::tmk {
namespace {

std::vector<std::byte> make_page(std::size_t n, std::uint8_t fill) {
  return std::vector<std::byte>(n, std::byte{fill});
}

TEST(Diff, EmptyWhenIdentical) {
  auto a = make_page(256, 7);
  Diff d = Diff::create(a, a);
  EXPECT_TRUE(d.empty());
  EXPECT_EQ(d.word_count(), 0u);
}

TEST(Diff, CapturesSingleWordChange) {
  auto twin = make_page(256, 0);
  auto cur = twin;
  cur[100] = std::byte{0xff};
  Diff d = Diff::create(twin, cur);
  ASSERT_EQ(d.runs().size(), 1u);
  EXPECT_EQ(d.runs()[0].word_index, 25u);  // byte 100 -> word 25
  EXPECT_EQ(d.word_count(), 1u);
}

TEST(Diff, CoalescesAdjacentChangesIntoRuns) {
  auto twin = make_page(256, 0);
  auto cur = twin;
  for (int b = 16; b < 32; ++b) cur[b] = std::byte{1};  // words 4..7
  for (int b = 64; b < 72; ++b) cur[b] = std::byte{2};  // words 16..17
  Diff d = Diff::create(twin, cur);
  ASSERT_EQ(d.runs().size(), 2u);
  EXPECT_EQ(d.runs()[0].word_index, 4u);
  EXPECT_EQ(d.runs()[0].values.size(), 4u);
  EXPECT_EQ(d.runs()[1].word_index, 16u);
  EXPECT_EQ(d.runs()[1].values.size(), 2u);
}

TEST(Diff, ApplyReconstructsModifiedPage) {
  sim::Rng rng(2024);
  auto twin = make_page(4096, 0);
  for (auto& b : twin) b = static_cast<std::byte>(rng.next_below(256));
  auto cur = twin;
  for (int i = 0; i < 200; ++i) {
    cur[rng.next_below(4096)] = static_cast<std::byte>(rng.next_below(256));
  }
  Diff d = Diff::create(twin, cur);
  auto rebuilt = twin;
  d.apply(rebuilt);
  EXPECT_EQ(std::memcmp(rebuilt.data(), cur.data(), cur.size()), 0);
}

// Property sweep: random twin/current pairs with varying density round-trip
// exactly, and the encoding never exceeds page + header bounds.
class DiffProperty : public ::testing::TestWithParam<int> {};

TEST_P(DiffProperty, RoundTripAndSizeBounds) {
  const int density_pct = GetParam();
  sim::Rng rng(77 + density_pct);
  for (int trial = 0; trial < 20; ++trial) {
    auto twin = make_page(1024, 0);
    for (auto& b : twin) b = static_cast<std::byte>(rng.next_below(256));
    auto cur = twin;
    for (std::size_t i = 0; i < cur.size(); ++i) {
      if (rng.next_below(100) < static_cast<std::uint64_t>(density_pct)) {
        cur[i] = static_cast<std::byte>(rng.next_below(256));
      }
    }
    Diff d = Diff::create(twin, cur);
    auto rebuilt = twin;
    d.apply(rebuilt);
    ASSERT_EQ(std::memcmp(rebuilt.data(), cur.data(), cur.size()), 0)
        << "density " << density_pct << " trial " << trial;
    // Wire size bound: header + one run descriptor per run + payload.
    EXPECT_LE(d.wire_bytes(), 12 + 8 * d.runs().size() + 1024 + 4);
    // Runs are sorted, non-empty and non-adjacent.
    for (std::size_t r = 0; r < d.runs().size(); ++r) {
      EXPECT_FALSE(d.runs()[r].values.empty());
      if (r > 0) {
        EXPECT_GT(d.runs()[r].word_index,
                  d.runs()[r - 1].word_index + d.runs()[r - 1].values.size());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Densities, DiffProperty, ::testing::Values(0, 1, 5, 25, 60, 100));

TEST(VectorClock, CoversAndMax) {
  VectorClock a(4);
  a.set(1, 5);
  EXPECT_TRUE(a.covers(1, 5));
  EXPECT_TRUE(a.covers(1, 4));
  EXPECT_FALSE(a.covers(1, 6));
  EXPECT_TRUE(a.covers(2, 0));

  VectorClock b(4);
  b.set(1, 3);
  b.set(2, 9);
  a.max_with(b);
  EXPECT_EQ(a.at(1), 5u);
  EXPECT_EQ(a.at(2), 9u);
}

TEST(VectorClock, DominatedByIsPartialOrder) {
  VectorClock a(3);
  VectorClock b(3);
  b.set(0, 1);
  EXPECT_TRUE(a.dominated_by(b));
  EXPECT_FALSE(b.dominated_by(a));
  VectorClock c(3);
  c.set(1, 1);
  EXPECT_FALSE(b.dominated_by(c));
  EXPECT_FALSE(c.dominated_by(b));  // concurrent
}

TEST(VectorClock, LamportSumRespectsHappensBefore) {
  VectorClock a(3);
  a.set(0, 2);
  VectorClock b = a;
  b.set(1, 4);  // b strictly after a
  EXPECT_LT(a.lamport_sum(), b.lamport_sum());
}

TEST(IntervalLog, InsertsInOrderAndIgnoresDuplicates) {
  IntervalLog log(2);
  auto rec = [&](NodeId o, std::uint32_t i) {
    auto r = util::make_pooled<IntervalRecord>();
    r->owner = o;
    r->index = i;
    r->vc = VectorClock(2);
    r->vc.set(o, i);
    return r;
  };
  log.insert(rec(0, 1));
  log.insert(rec(0, 2));
  log.insert(rec(0, 1));  // duplicate ignored
  EXPECT_EQ(log.known(0), 2u);
  EXPECT_EQ(log.known(1), 0u);
  EXPECT_EQ(log.get(0, 2).index, 2u);
}

TEST(IntervalLog, RecordsAfterReturnsExactlyTheGap) {
  IntervalLog log(2);
  for (std::uint32_t i = 1; i <= 5; ++i) {
    auto r = util::make_pooled<IntervalRecord>();
    r->owner = 1;
    r->index = i;
    r->vc = VectorClock(2);
    r->vc.set(1, i);
    log.insert(r);
  }
  VectorClock vc(2);
  vc.set(1, 3);
  auto gap = log.records_after(vc);
  ASSERT_EQ(gap.size(), 2u);
  EXPECT_EQ(gap[0]->index, 4u);
  EXPECT_EQ(gap[1]->index, 5u);
}

TEST(SharedHeap, BumpAllocationWithAlignment) {
  SharedHeap heap(4096);
  GAddr a = heap.alloc(10, 8);
  GAddr b = heap.alloc(10, 8);
  EXPECT_EQ(a.off, 0u);
  EXPECT_EQ(b.off, 16u);
  GAddr c = heap.alloc(1, 256);
  EXPECT_EQ(c.off % 256, 0u);
  EXPECT_EQ(heap.allocations(), 3u);
}

TEST(SharedHeap, ExhaustionAborts) {
  SharedHeap heap(64);
  (void)heap.alloc(64);
  EXPECT_DEATH((void)heap.alloc(1), "shared heap exhausted");
}

TEST(GAddrPages, PageArithmetic) {
  EXPECT_EQ(page_of(GAddr{0}, 4096), 0u);
  EXPECT_EQ(page_of(GAddr{4095}, 4096), 0u);
  EXPECT_EQ(page_of(GAddr{4096}, 4096), 1u);
  EXPECT_EQ(page_offset(GAddr{4097}, 4096), 1u);
  EXPECT_TRUE(GAddr::null().is_null());
  EXPECT_FALSE(GAddr{0}.is_null());
}

}  // namespace
}  // namespace repseq::tmk
