// Sharded multicast medium: S independent half-duplex hubs, one of which
// carries any given group send.  The shard is chosen by hashing the frame's
// multicast group (net::shard_of), so traffic for disjoint groups -- e.g.
// RSE rounds for different pages -- never serializes on the same medium.
// This removes the single hub as the serialization bottleneck for
// concurrent rounds; with S = 1 the backend is frame-for-frame identical to
// HubSwitchTransport.  Unicast still rides the switch.
#pragma once

#include <vector>

#include "net/hub.hpp"
#include "net/transport.hpp"

namespace repseq::net {

class ShardedHubTransport final : public SwitchedTransport {
 public:
  ShardedHubTransport(sim::Engine& eng, const NetConfig& cfg,
                      std::vector<std::unique_ptr<Nic>>& nics);

  void multicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
                 const AccountFn& account) override;

  [[nodiscard]] std::size_t shard_count() const override { return hubs_.size(); }
  [[nodiscard]] sim::SimDuration shard_busy(std::size_t s) const override {
    return s < hubs_.size() ? hubs_[s].busy_total() : sim::SimDuration{};
  }

 private:
  std::vector<Hub> hubs_;
};

}  // namespace repseq::net
