#include "rse/policy/policy_engine.hpp"

#include <set>
#include <string>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace repseq::rse::policy {

const char* strategy_name(SectionStrategy s) {
  switch (s) {
    case SectionStrategy::MasterOnly:
      return "master-only";
    case SectionStrategy::Replicated:
      return "replicated";
    case SectionStrategy::BroadcastAfter:
      return "broadcast";
  }
  return "?";
}

const char* policy_name(PolicyKind k) {
  switch (k) {
    case PolicyKind::Static:
      return "static";
    case PolicyKind::Greedy:
      return "greedy";
    case PolicyKind::Hysteresis:
      return "hysteresis";
  }
  return "?";
}

std::optional<PolicyKind> parse_policy(std::string_view s) {
  if (s == "static") return PolicyKind::Static;
  if (s == "greedy") return PolicyKind::Greedy;
  if (s == "hysteresis" || s == "hyst") return PolicyKind::Hysteresis;
  return std::nullopt;
}

std::optional<SectionStrategy> parse_strategy(std::string_view s) {
  if (s == "master-only" || s == "master") return SectionStrategy::MasterOnly;
  if (s == "replicated") return SectionStrategy::Replicated;
  if (s == "broadcast") return SectionStrategy::BroadcastAfter;
  return std::nullopt;
}

std::optional<std::map<std::uint32_t, SectionStrategy>> parse_pin_sites(std::string_view s) {
  std::map<std::uint32_t, SectionStrategy> pins;
  if (s.empty()) return pins;
  while (true) {
    const std::size_t comma = s.find(',');
    const std::string_view entry = s.substr(0, comma);
    const std::size_t eq = entry.find('=');
    if (eq == std::string_view::npos || eq == 0) return std::nullopt;
    std::uint64_t site = 0;
    for (const char ch : entry.substr(0, eq)) {
      if (ch < '0' || ch > '9') return std::nullopt;
      site = site * 10 + static_cast<std::uint64_t>(ch - '0');
      if (site > 0xffffffffull) return std::nullopt;  // would wrap the site id
    }
    const auto strat = parse_strategy(entry.substr(eq + 1));
    if (!strat) return std::nullopt;
    // A duplicate site is a contradictory pin list, not a tiebreak.
    if (!pins.emplace(static_cast<std::uint32_t>(site), *strat).second) return std::nullopt;
    if (comma == std::string_view::npos) break;
    s = s.substr(comma + 1);
    if (s.empty()) return std::nullopt;  // trailing comma
  }
  return pins;
}

PolicyEngine::PolicyEngine(tmk::Cluster& cluster, PolicyConfig cfg)
    : cluster_(cluster),
      cfg_(cfg),
      model_(cluster.config(), cluster.network().config(), cluster.node_count()),
      log_(cluster.node_count()) {
  cluster_.protocol().on(
      tmk::MsgKind::PolicySectionOpen, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
        const auto& p = msg.as<tmk::PolicySectionOpenP>();
        Decision d;
        d.seq = p.seq;
        d.site = p.site;
        d.strategy = static_cast<SectionStrategy>(p.strategy);
        d.switched = p.switched != 0;
        log_[rt.id()].push_back(d);
      });
}

double PolicyEngine::ewma(double prev, double sample, bool first) const {
  return first ? sample : (1.0 - cfg_.alpha) * prev + cfg_.alpha * sample;
}

std::uint64_t PolicyEngine::master_par_diff_msgs() const {
  return cluster_.node(0).stats().par.diff_msgs_sent;
}

std::uint64_t PolicyEngine::master_par_diff_bytes() const {
  return cluster_.node(0).stats().par.diff_bytes_sent;
}

std::uint64_t PolicyEngine::total_seq_fwd_requests() const {
  std::uint64_t sum = 0;
  for (net::NodeId n = 0; n < cluster_.node_count(); ++n) {
    sum += cluster_.node(n).stats().seq.fwd_requests;
  }
  return sum;
}

std::uint64_t PolicyEngine::total_seq_mcast_bytes() const {
  std::uint64_t sum = 0;
  for (net::NodeId n = 0; n < cluster_.node_count(); ++n) {
    for (const tmk::ShardCounters& s : cluster_.node(n).stats().seq.shard_traffic) {
      sum += s.mcast_bytes;
    }
  }
  return sum;
}

const SectionProfile* PolicyEngine::profile(std::uint32_t site) const {
  auto it = sites_.find(site);
  return it == sites_.end() ? nullptr : &it->second.profile;
}

SectionStrategy PolicyEngine::decide(const SiteState& st) const {
  if (cfg_.kind == PolicyKind::Static) return cfg_.static_strategy;
  if (st.profile.runs == 0) return cfg_.bootstrap;

  double cost[kStrategyCount];
  std::size_t best = 0;
  for (std::size_t s = 0; s < kStrategyCount; ++s) {
    cost[s] = model_.cost(static_cast<SectionStrategy>(s), st.profile);
    if (cost[s] < cost[best]) best = s;  // strict <: ties keep enum order
  }
  const auto challenger = static_cast<SectionStrategy>(best);
  if (cfg_.kind == PolicyKind::Greedy) return challenger;

  // Hysteresis: the incumbent survives unless the challenger undercuts it
  // by the margin and the site has dwelt long enough since its last switch.
  if (challenger == st.current) return st.current;
  if (st.profile.runs - st.last_switch_run < cfg_.min_dwell) return st.current;
  const double incumbent = cost[static_cast<std::size_t>(st.current)];
  if (cost[best] < incumbent * (1.0 - cfg_.switch_margin)) return challenger;
  return st.current;
}

void PolicyEngine::finalize_aftermath() {
  if (!aftermath_pending_) return;
  aftermath_pending_ = false;
  SectionProfile& p = sites_[aftermath_site_].profile;
  const auto i = static_cast<std::size_t>(aftermath_strategy_);
  const auto msgs = static_cast<double>(master_par_diff_msgs() - snap_master_par_diffs_);
  const auto bytes = static_cast<double>(master_par_diff_bytes() - snap_master_par_bytes_);
  p.after_msgs[i] = ewma(p.after_msgs[i], msgs, p.tried[i] == 0);
  p.after_bytes[i] = ewma(p.after_bytes[i], bytes, p.tried[i] == 0);
  ++p.tried[i];
}

SectionStrategy PolicyEngine::open_section(tmk::NodeRuntime& master, std::uint32_t site) {
  REPSEQ_CHECK(master.is_master(), "policy decisions are made on the master");
  REPSEQ_CHECK(!section_open_, "policy section opened twice");
  finalize_aftermath();

  auto [it, inserted] = sites_.try_emplace(site);
  SiteState& st = it->second;
  // A pinned site bypasses the decision procedure entirely -- on its first
  // occurrence too, which would otherwise run the execute-and-broadcast
  // bootstrap probe: an A/B pin must never leak probe traffic into the
  // measurement it exists for.  Telemetry still accumulates normally.
  const auto pin = cfg_.pins.find(site);
  const SectionStrategy chosen = pin != cfg_.pins.end() ? pin->second : decide(st);
  const bool switched = st.profile.runs > 0 && chosen != st.current;
  if (switched) {
    ++switches_;
    st.last_switch_run = st.profile.runs;
  }
  st.current = chosen;
  ++counts_[static_cast<std::size_t>(chosen)];

  Decision d;
  d.seq = next_seq_++;
  d.site = site;
  d.strategy = chosen;
  d.switched = switched;
  log_[0].push_back(d);

  // Registry: the per-site decision telemetry the sweep tables consume.
  {
    obs::Registry& m = cluster_.metrics();
    const std::string site_label = std::to_string(site);
    m.counter("policy_decisions", {{"site", site_label}, {"strategy", strategy_name(chosen)}})
        .inc();
    if (switched) m.counter("policy_switches", {{"site", site_label}}).inc();
    m.gauge("policy_final_strategy", {{"site", site_label}})
        .set(static_cast<double>(static_cast<std::size_t>(chosen)));
  }
  if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
    // The decision with its full cost-model inputs: the profile the costs
    // were computed from plus the per-strategy costs themselves (recomputed
    // here -- decide() keeps them internal -- and meaningful once the site
    // has a measured profile).
    const bool modeled = cfg_.kind != PolicyKind::Static && st.profile.runs > 0;
    obs::tracer().instant(
        obs::Cat::Rse, cluster_.engine().now(), 1, "policy", "decision",
        {{"seq", static_cast<double>(d.seq)},
         {"site", static_cast<double>(site)},
         {"strategy", static_cast<double>(static_cast<std::size_t>(chosen))},
         {"switched", switched ? 1.0 : 0.0},
         {"pinned", pin != cfg_.pins.end() ? 1.0 : 0.0},
         {"runs", static_cast<double>(st.profile.runs)},
         {"pages_written", st.profile.pages_written},
         {"faults_in", st.profile.faults_in},
         {"cost_master_only",
          modeled ? model_.cost(SectionStrategy::MasterOnly, st.profile) : 0.0},
         {"cost_replicated",
          modeled ? model_.cost(SectionStrategy::Replicated, st.profile) : 0.0},
         {"cost_broadcast",
          modeled ? model_.cost(SectionStrategy::BroadcastAfter, st.profile) : 0.0}});
  }
  if (cluster_.node_count() > 1) {
    master.send_multicast(tmk::MsgKind::PolicySectionOpen,
                          tmk::PolicySectionOpenP{d.seq, site,
                                                  static_cast<std::uint8_t>(chosen),
                                                  static_cast<std::uint8_t>(switched)},
                          /*on_server=*/false);
  }

  section_open_ = true;
  open_site_ = site;
  open_strategy_ = chosen;
  open_t0_ = cluster_.engine().now();
  snap_master_seq_faults_ = master.stats().seq.page_faults;
  snap_fwd_requests_ = total_seq_fwd_requests();
  snap_mcast_bytes_ = total_seq_mcast_bytes();
  if (chosen != SectionStrategy::Replicated) {
    // Close the master's open interval so the write-set measurement sees a
    // clean dirty-page slate: a page dirtied by an *earlier* section and
    // re-written here would otherwise go uncounted (dirty_in_current never
    // toggles twice within one interval).  The BroadcastAfter bracket does
    // this anyway; for MasterOnly it merely makes the master's intervals
    // section-granular, which the lazy-diff machinery merges regardless.
    master.end_interval();
  }
  snap_master_vc0_ = master.vc().at(0);
  return chosen;
}

void PolicyEngine::close_section(tmk::NodeRuntime& master) {
  REPSEQ_CHECK(section_open_, "policy section closed without open");
  section_open_ = false;
  SectionProfile& p = sites_[open_site_].profile;

  const std::uint64_t faults_in =
      (master.stats().seq.page_faults - snap_master_seq_faults_) +
      (total_seq_fwd_requests() - snap_fwd_requests_);

  const bool first = p.runs == 0;
  if (open_strategy_ != SectionStrategy::Replicated) {
    // Write set: pages dirtied in the master's still-open interval (exact --
    // open_section closed the previous interval) plus the pages of intervals
    // closed during the bracket (the BroadcastAfter path closes one; section
    // bodies with internal synchronization may close more).  Replicated
    // execution leaves no write trace by design (Section 5.2), so the site's
    // last measured value carries and the scan is skipped entirely.
    std::set<tmk::PageId> wrote;
    for (tmk::PageId pg = 0; pg < master.page_count(); ++pg) {
      if (master.page(pg).dirty_in_current) wrote.insert(pg);
    }
    for (std::uint32_t i = snap_master_vc0_ + 1; i <= master.vc().at(0); ++i) {
      for (tmk::PageId pg : master.log().get(0, i).pages) wrote.insert(pg);
    }
    p.pages_written = ewma(p.pages_written, static_cast<double>(wrote.size()), first);
  }
  p.faults_in = ewma(p.faults_in, static_cast<double>(faults_in), first);
  ++p.runs;

  Decision& d = log_[0].back();
  d.section_s = (cluster_.engine().now() - open_t0_).seconds();
  d.mcast_kb = static_cast<double>(total_seq_mcast_bytes() - snap_mcast_bytes_) / 1024.0;
  cluster_.metrics()
      .histogram("section_seconds", {{"site", std::to_string(open_site_)},
                                     {"strategy", strategy_name(open_strategy_)}})
      .observe(d.section_s);

  aftermath_pending_ = true;
  aftermath_site_ = open_site_;
  aftermath_strategy_ = open_strategy_;
  snap_master_par_diffs_ = master_par_diff_msgs();
  snap_master_par_bytes_ = master_par_diff_bytes();
}

}  // namespace repseq::rse::policy
