// Experiment harness: builds a cluster in one of the paper's three system
// configurations (plus the broadcast ablation and the adaptive policy
// engine), runs an application, and extracts exactly the measurements
// reported in Tables 1-4 plus the per-section policy accounting.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "apps/barnes_hut/bh.hpp"
#include "apps/ilink/ilink.hpp"
#include "net/net_config.hpp"
#include "rse/controller.hpp"
#include "rse/policy/policy.hpp"
#include "tmk/config.hpp"

namespace repseq::apps::harness {

enum class Mode {
  Sequential,    // one node, no parallel directives (the speedup baseline)
  Original,      // base OpenMP/TreadMarks: sequential sections on the master
  Optimized,     // replicated sequential execution with multicast (the paper)
  BroadcastSeq,  // master executes, then multicasts all modified data
                 // (Section 4.2 alternative / Section 6.1.2 hand insertion)
  Adaptive,      // rse::policy picks one of the three above per section
};

[[nodiscard]] const char* mode_name(Mode m);
[[nodiscard]] const char* flow_name(rse::FlowControl f);

/// CLI/env parsing for the harness axes, shared by the benches and examples
/// (the transport axis lives next to its enum: net::parse_transport).
[[nodiscard]] std::optional<Mode> parse_mode(std::string_view s);
[[nodiscard]] std::optional<rse::FlowControl> parse_flow(std::string_view s);

struct RunOptions {
  std::size_t nodes = 32;
  Mode mode = Mode::Original;
  rse::FlowControl flow = rse::FlowControl::Chained;
  tmk::TmkConfig tmk;
  net::NetConfig net;           // net.transport selects the wire backend
  rse::policy::PolicyConfig policy;  // Mode::Adaptive decision procedure
};

/// One row set for the paper's statistics tables.
struct RunReport {
  Mode mode = Mode::Original;
  std::size_t nodes = 0;
  std::string transport;  // wire backend the run used (owned; reports must
                          // outlive reconfigured NetConfig temporaries)
  std::string policy;     // decision procedure ("-" outside Mode::Adaptive)

  double total_s = 0;  // Table 1/3 "Total time"
  double seq_s = 0;    // "Sequential time"
  double par_s = 0;    // "Parallel time"

  std::uint64_t total_msgs = 0;   // Table 2/4 "Total messages"
  std::uint64_t total_kb = 0;     // "data (KB)"
  std::uint64_t seq_msgs = 0;     // messages during sequential sections
  std::uint64_t seq_kb = 0;
  std::uint64_t seq_requests = 0;  // "diff requests" (max-faulting thread)
  double seq_response_ms = 0;      // "avg response time (ms)"
  std::uint64_t seq_null_acks = 0;
  std::uint64_t seq_fwd_requests = 0;
  std::uint64_t par_msgs = 0;
  std::uint64_t par_kb = 0;
  double par_requests_avg = 0;  // "avg diff requests" per thread
  double par_response_ms = 0;
  double par_fault_wait_max_s = 0;  // slowest thread's diff-request time
  std::uint64_t recoveries = 0;
  std::uint64_t drops = 0;

  // Multicast-medium occupancy: how many serialization domains the backend
  // exposed and the busiest one's transmit time.  On the sharded hub the
  // max-per-shard busy dropping below the single hub's busy is exactly the
  // contention-removal the backend exists for.
  std::size_t hub_shards = 1;
  double hub_busy_max_s = 0;    // busiest shard's transmit time
  double hub_busy_total_s = 0;  // summed over shards

  // Per-section policy accounting (Mode::Adaptive; zero otherwise).
  std::uint64_t sections = 0;
  /// Sections executed per strategy, indexed by rse::policy::SectionStrategy.
  std::array<std::uint64_t, rse::policy::kStrategyCount> sections_by_strategy{};
  std::uint64_t policy_switches = 0;  // switch points across all sites
  /// The master's full decision log (site, strategy, switch flag, and the
  /// close-time reporting telemetry).
  std::vector<rse::policy::Decision> decisions;

  /// Per-site decision telemetry, sourced from the cluster's metrics
  /// registry (obs::Registry) rather than PhaseCounters: one row per
  /// decision site, numerically ordered.  Empty outside Mode::Adaptive.
  struct SitePolicy {
    std::uint32_t site = 0;
    std::uint64_t decisions = 0;    // sections decided at this site
    std::uint64_t switches = 0;     // switch points at this site
    std::string final_strategy;     // the strategy the site settled on
  };
  std::vector<SitePolicy> site_policy;

  double checksum = 0;  // application result for cross-mode verification
  std::uint64_t aux = 0;

  // Host-side performance telemetry (the simulator's own speed, not the
  // simulated cluster's): total events the engine executed, the high-water
  // mark of simultaneously scheduled events, and the host wall-clock the
  // run took.  events/sec = sim_events / host_wall_s is the headline number
  // tracked by bench/perf_sim.
  std::uint64_t sim_events = 0;
  std::size_t peak_live_events = 0;
  double host_wall_s = 0;

  // Correctness-checker telemetry (the chk layer; zero when REPSEQ_CHECK is
  // off).  Nonzero only when a run survived a violation, i.e. under a
  // test's no-abort config -- production checking aborts on the first one.
  std::uint64_t check_violations = 0;
  std::vector<std::pair<std::string, std::uint64_t>> check_violations_by_checker;
};

RunReport run_barnes_hut(const RunOptions& opt, const bh::BhConfig& cfg);
RunReport run_ilink(const RunOptions& opt, const ilink::IlinkConfig& cfg);

}  // namespace repseq::apps::harness
