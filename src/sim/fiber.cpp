#include "sim/fiber.hpp"

#include <cstdint>

#include "util/check.hpp"

namespace repseq::sim {

namespace {
// The fiber being switched into; set immediately before the context switch
// so the trampoline can find its Fiber object.  Single-threaded by design.
thread_local Fiber* g_current = nullptr;
#if !REPSEQ_FIBER_FAST_SWITCH
thread_local Fiber* g_trampoline_arg = nullptr;
#endif
}  // namespace

#if REPSEQ_FIBER_FAST_SWITCH

void fiber_trampoline(Fiber* self);

// repseq_ctx_swap(void** save_sp, void* to_sp): pushes the SysV callee-saved
// registers plus the FPU/SSE control words onto the current stack, parks the
// resulting stack pointer in *save_sp, switches to to_sp and unwinds the
// same frame there.  Everything caller-saved is dead across the call by the
// ABI, so this is a complete context switch -- without the two
// rt_sigprocmask syscalls swapcontext performs.
//
// repseq_ctx_entry is the ret target of a freshly initialized frame: it
// moves the Fiber* (planted in the r12 slot) into the argument register,
// realigns the stack and enters the C++ trampoline, which never returns.
asm(R"(
.text
.globl repseq_ctx_swap
.type repseq_ctx_swap,@function
.align 16
repseq_ctx_swap:
    pushq %rbp
    pushq %rbx
    pushq %r12
    pushq %r13
    pushq %r14
    pushq %r15
    subq  $8, %rsp
    stmxcsr 4(%rsp)
    fnstcw  (%rsp)
    movq  %rsp, (%rdi)
    movq  %rsi, %rsp
    fldcw   (%rsp)
    ldmxcsr 4(%rsp)
    addq  $8, %rsp
    popq  %r15
    popq  %r14
    popq  %r13
    popq  %r12
    popq  %rbx
    popq  %rbp
    retq
.size repseq_ctx_swap,.-repseq_ctx_swap

.globl repseq_ctx_entry
.type repseq_ctx_entry,@function
.align 16
repseq_ctx_entry:
    movq  %r12, %rdi
    andq  $-16, %rsp
    callq repseq_fiber_trampoline
    ud2
.size repseq_ctx_entry,.-repseq_ctx_entry
)");

extern "C" {
void repseq_ctx_swap(void** save_sp, void* to_sp);
void repseq_ctx_entry();

void repseq_fiber_trampoline(repseq::sim::Fiber* self) { fiber_trampoline(self); }
}

void fiber_trampoline(Fiber* self) {
  try {
    self->fn_();
  } catch (...) {
    self->failure_ = std::current_exception();
  }
  self->finished_ = true;
  // Final switch back to the engine; this frame is abandoned.
#if REPSEQ_FIBER_TSAN
  __tsan_switch_to_fiber(self->tsan_return_fiber_, 0);
#endif
  void* dead = nullptr;
  repseq_ctx_swap(&dead, self->return_sp_);
  REPSEQ_CHECK(false, "finished fiber resumed");
}

void Fiber::init_context() {
  // Frame layout consumed by repseq_ctx_swap's restore path, from the
  // switch stack pointer upward: [fcw|mxcsr] r15 r14 r13 r12 rbx rbp ret.
  auto top =
      reinterpret_cast<std::uintptr_t>(stack_.get() + stack_bytes_) & ~std::uintptr_t{15};
  auto* frame = reinterpret_cast<std::uintptr_t*>(top) - 8;
  std::uint32_t mxcsr;
  std::uint16_t fcw;
  asm volatile("stmxcsr %0\n\tfnstcw %1" : "=m"(mxcsr), "=m"(fcw));
  frame[0] = static_cast<std::uintptr_t>(fcw) | (static_cast<std::uintptr_t>(mxcsr) << 32);
  frame[1] = 0;                                      // r15
  frame[2] = 0;                                      // r14
  frame[3] = 0;                                      // r13
  frame[4] = reinterpret_cast<std::uintptr_t>(this); // r12 -> trampoline argument
  frame[5] = 0;                                      // rbx
  frame[6] = 0;                                      // rbp
  frame[7] = reinterpret_cast<std::uintptr_t>(&repseq_ctx_entry);
  switch_sp_ = frame;
}

#endif  // REPSEQ_FIBER_FAST_SWITCH

Fiber::Fiber(std::string name, Fn fn, std::size_t stack_bytes)
    : name_(std::move(name)),
      fn_(std::move(fn)),
      stack_(new char[stack_bytes]),
      stack_bytes_(stack_bytes) {
  REPSEQ_CHECK(fn_ != nullptr, "fiber requires a body");
}

Fiber::~Fiber() {
  // A fiber destroyed while suspended simply abandons its stack; the engine
  // only does this after `run()` has drained, so no cleanup runs mid-flight.
#if REPSEQ_FIBER_TSAN
  if (tsan_fiber_ != nullptr) __tsan_destroy_fiber(tsan_fiber_);
#endif
}

Fiber* Fiber::current() { return g_current; }

#if REPSEQ_FIBER_FAST_SWITCH

void Fiber::resume() {
  REPSEQ_CHECK(g_current == nullptr, "resume() must be called from the engine context");
  REPSEQ_CHECK(!finished_, "cannot resume a finished fiber: " + name_);
  if (!started_) {
    started_ = true;
    init_context();
  }
  g_current = this;
#if REPSEQ_FIBER_TSAN
  if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
  tsan_return_fiber_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  repseq_ctx_swap(&return_sp_, switch_sp_);
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  REPSEQ_CHECK(self != nullptr, "yield() must be called from inside a fiber");
  g_current = nullptr;
#if REPSEQ_FIBER_TSAN
  __tsan_switch_to_fiber(self->tsan_return_fiber_, 0);
#endif
  repseq_ctx_swap(&self->switch_sp_, self->return_sp_);
  g_current = self;
}

#else  // !REPSEQ_FIBER_FAST_SWITCH

void Fiber::trampoline() {
  Fiber* self = g_trampoline_arg;
  try {
    self->fn_();
  } catch (...) {
    self->failure_ = std::current_exception();
  }
  self->finished_ = true;
  // Fall through: returning from the makecontext entry point resumes
  // uc_link, which we point at the engine's context.
#if REPSEQ_FIBER_TSAN
  __tsan_switch_to_fiber(self->tsan_return_fiber_, 0);
#endif
}

void Fiber::resume() {
  REPSEQ_CHECK(g_current == nullptr, "resume() must be called from the engine context");
  REPSEQ_CHECK(!finished_, "cannot resume a finished fiber: " + name_);
  if (!started_) {
    started_ = true;
    REPSEQ_CHECK(getcontext(&context_) == 0, "getcontext failed");
    context_.uc_stack.ss_sp = stack_.get();
    context_.uc_stack.ss_size = stack_bytes_;
    context_.uc_link = &return_context_;
    g_trampoline_arg = this;
    makecontext(&context_, reinterpret_cast<void (*)()>(&Fiber::trampoline), 0);
  }
  g_current = this;
#if REPSEQ_FIBER_TSAN
  if (tsan_fiber_ == nullptr) tsan_fiber_ = __tsan_create_fiber(0);
  tsan_return_fiber_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
  REPSEQ_CHECK(swapcontext(&return_context_, &context_) == 0, "swapcontext failed");
  g_current = nullptr;
}

void Fiber::yield() {
  Fiber* self = g_current;
  REPSEQ_CHECK(self != nullptr, "yield() must be called from inside a fiber");
  g_current = nullptr;
#if REPSEQ_FIBER_TSAN
  __tsan_switch_to_fiber(self->tsan_return_fiber_, 0);
#endif
  REPSEQ_CHECK(swapcontext(&self->context_, &self->return_context_) == 0, "swapcontext failed");
  g_current = self;
}

#endif  // REPSEQ_FIBER_FAST_SWITCH

void Fiber::rethrow_if_failed() {
  if (failure_) {
    std::exception_ptr e = failure_;
    failure_ = nullptr;
    std::rethrow_exception(e);
  }
}

}  // namespace repseq::sim
