// Minimal micro-benchmark runner: ns/op, ops/s, MB/s and allocator traffic
// per operation, with no external benchmark-library dependency.
//
// Include from exactly ONE translation unit per binary: this header defines
// the global operator new/delete replacements that feed the allocation
// counters (definitions, not declarations, so two includes in one binary
// would violate the one-definition rule).
#pragma once

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <new>

namespace repseq::microbench {

inline std::uint64_t g_allocs = 0;
inline std::uint64_t g_alloc_bytes = 0;

}  // namespace repseq::microbench

void* operator new(std::size_t n) {
  ++repseq::microbench::g_allocs;
  repseq::microbench::g_alloc_bytes += n;
  void* p = std::malloc(n == 0 ? 1 : n);
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n) { return ::operator new(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  ++repseq::microbench::g_allocs;
  repseq::microbench::g_alloc_bytes += n;
  const std::size_t a = static_cast<std::size_t>(al);
  void* p = std::aligned_alloc(a, (n + a - 1) & ~(a - 1));
  if (p == nullptr) throw std::bad_alloc{};
  return p;
}
void* operator new[](std::size_t n, std::align_val_t al) { return ::operator new(n, al); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

namespace repseq::microbench {

/// Prevents the optimizer from discarding a computed value.
template <typename T>
inline void do_not_optimize(const T& v) {
  asm volatile("" : : "g"(&v) : "memory");
}

inline void print_header() {
  std::printf("%-36s %12s %14s %12s %14s\n", "benchmark", "ns/op", "ops/s", "allocs/op",
              "alloc B/op");
}

/// Runs `fn` (one operation per call) until ~0.2 s of measured time after a
/// warmup pass, then reports per-op cost and allocator traffic.
template <typename F>
void bench(const char* name, F&& fn) {
  using clock = std::chrono::steady_clock;
  // Warmup + calibration: find an iteration count worth ~200 ms.
  std::uint64_t iters = 1;
  for (;;) {
    const auto t0 = clock::now();
    for (std::uint64_t i = 0; i < iters; ++i) fn();
    const double s = std::chrono::duration<double>(clock::now() - t0).count();
    if (s >= 0.05 || iters >= (1ull << 30)) {
      iters = s > 0 ? static_cast<std::uint64_t>(static_cast<double>(iters) * 0.2 / s) + 1 : iters;
      break;
    }
    iters *= 4;
  }
  const std::uint64_t a0 = g_allocs;
  const std::uint64_t b0 = g_alloc_bytes;
  const auto t0 = clock::now();
  for (std::uint64_t i = 0; i < iters; ++i) fn();
  const double s = std::chrono::duration<double>(clock::now() - t0).count();
  const double ns_per_op = s * 1e9 / static_cast<double>(iters);
  const double allocs_per_op = static_cast<double>(g_allocs - a0) / static_cast<double>(iters);
  const double bytes_per_op =
      static_cast<double>(g_alloc_bytes - b0) / static_cast<double>(iters);
  std::printf("%-36s %12.1f %14.0f %12.2f %14.1f\n", name, ns_per_op,
              static_cast<double>(iters) / s, allocs_per_op, bytes_per_op);
}

}  // namespace repseq::microbench
