#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "apps/harness/run_modes.hpp"
#include "net/network.hpp"
#include "sim/engine.hpp"

namespace repseq::net {
namespace {

constexpr TransportKind kAllTransports[] = {
    TransportKind::HubSwitch, TransportKind::TreeMulticast, TransportKind::DirectAll};

Message make_msg(NodeId src, NodeId dst, std::size_t bytes, std::uint32_t kind = 0) {
  Message m;
  m.src = src;
  m.dst = dst;
  m.kind = kind;
  m.payload_bytes = bytes;
  return m;
}

TEST(NetConfig, WireBytesAddsPerFragmentHeaders) {
  NetConfig cfg;
  cfg.mtu_bytes = 1500;
  cfg.header_bytes = 42;
  EXPECT_EQ(cfg.wire_bytes(0), 42u);          // control message: one header
  EXPECT_EQ(cfg.wire_bytes(100), 142u);       // one fragment
  EXPECT_EQ(cfg.wire_bytes(1458), 1500u);     // exactly one full fragment
  EXPECT_EQ(cfg.wire_bytes(1459), 1459u + 84u);  // two fragments
}

TEST(Network, UnicastDeliversWithLatency) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 4);
  sim::SimTime got{};
  eng.spawn("rx", [&] {
    (void)nw.nic(1).inbox().pop();
    got = eng.now();
  });
  eng.spawn("tx", [&] { nw.unicast(make_msg(0, 1, 1000)); });
  eng.run();
  // Two serialization legs (uplink + downlink) plus two hop latencies:
  // 1042B / 12.5MB/s = 83.36us per leg, 5us per hop.
  EXPECT_GT(got.ns, 0);
  EXPECT_NEAR(static_cast<double>(got.ns), 2 * 83'360 + 2 * 5'000, 200.0);
}

TEST(Network, BackToBackUnicastsSerializeOnUplink) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 4);
  std::vector<sim::SimTime> arrivals;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 2; ++i) {
      (void)nw.nic(1).inbox().pop();
      arrivals.push_back(eng.now());
    }
  });
  eng.spawn("tx", [&] {
    nw.unicast(make_msg(0, 1, 10000));
    nw.unicast(make_msg(0, 1, 10000));
  });
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  // Second frame's last byte leaves one full serialization later.
  const double leg = (10000 + 7 * 42) / 12.5e6 * 1e9;
  EXPECT_NEAR(static_cast<double>((arrivals[1] - arrivals[0]).ns), leg, 1000.0);
}

TEST(Network, ResponsesFromDistinctSendersContendOnDestinationPort) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 8);
  std::vector<sim::SimTime> arrivals;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 4; ++i) {
      (void)nw.nic(0).inbox().pop();
      arrivals.push_back(eng.now());
    }
  });
  for (NodeId s = 1; s <= 4; ++s) {
    eng.spawn("tx" + std::to_string(s), [&nw, s] { nw.unicast(make_msg(s, 0, 20000)); });
  }
  eng.run();
  ASSERT_EQ(arrivals.size(), 4u);
  // All four senders transmit in parallel on their own uplinks, but the
  // switch's port to node 0 serializes them: arrivals are spaced by one
  // serialization time each.
  const double leg = (20000.0 + 14 * 42) / 12.5e6 * 1e9;
  for (int i = 1; i < 4; ++i) {
    EXPECT_NEAR(static_cast<double>((arrivals[i] - arrivals[i - 1]).ns), leg, 2000.0) << i;
  }
}

TEST(Network, MulticastReachesAllButSender) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 5);
  int received = 0;
  for (NodeId n = 1; n < 5; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &received, n] {
      (void)nw.nic(n).inbox().pop();
      ++received;
    });
  }
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 500)); });
  eng.run();
  EXPECT_EQ(received, 4);
  EXPECT_EQ(nw.messages_sent(), 1u);  // one message on the wire
}

TEST(Network, MulticastsSerializeOnHub) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 4);
  std::vector<sim::SimTime> arrivals;
  eng.spawn("rx", [&] {
    for (int i = 0; i < 2; ++i) {
      (void)nw.nic(3).inbox().pop();
      arrivals.push_back(eng.now());
    }
  });
  eng.spawn("tx0", [&] { nw.multicast(make_msg(0, kMulticastDst, 10000)); });
  eng.spawn("tx1", [&] { nw.multicast(make_msg(1, kMulticastDst, 10000)); });
  eng.run();
  ASSERT_EQ(arrivals.size(), 2u);
  const double leg = (10000 + 7 * 42) / 12.5e6 * 1e9;
  EXPECT_NEAR(static_cast<double>((arrivals[1] - arrivals[0]).ns), leg, 1000.0);
}

TEST(Network, ReceiveBufferOverflowDrops) {
  sim::Engine eng;
  NetConfig cfg;
  cfg.recv_buffer_msgs = 4;
  Network nw(eng, cfg, 3);
  // Nobody drains node 2's inbox; flood it.
  eng.spawn("tx", [&] {
    for (int i = 0; i < 10; ++i) nw.unicast(make_msg(0, 2, 100));
  });
  eng.run();
  EXPECT_EQ(nw.nic(2).drops(), 6u);
  EXPECT_EQ(nw.nic(2).backlog(), 4u);
  EXPECT_EQ(nw.total_drops(), 6u);
}

TEST(Network, LossInjectionDropsSomeDeliveries) {
  sim::Engine eng;
  NetConfig cfg;
  cfg.loss_probability = 0.5;
  cfg.loss_seed = 42;
  Network nw(eng, cfg, 2);
  eng.spawn("tx", [&] {
    for (int i = 0; i < 200; ++i) nw.unicast(make_msg(0, 1, 10));
  });
  eng.spawn("rx", [&] {
    // Drain whatever arrives; rely on run() terminating when idle.
    while (true) {
      auto m = nw.nic(1).inbox().pop_with_timeout(sim::milliseconds(100));
      if (!m) break;
    }
  });
  eng.run();
  EXPECT_GT(nw.losses_injected(), 50u);
  EXPECT_LT(nw.losses_injected(), 150u);
  EXPECT_EQ(nw.deliveries() + nw.losses_injected(), 200u);
}

TEST(Network, SendTapObservesTraffic) {
  sim::Engine eng;
  Network nw(eng, NetConfig{}, 3);
  std::uint64_t tapped_bytes = 0;
  int tapped_mcast = 0;
  nw.set_send_tap([&](const Message&, std::size_t wire, bool mc) {
    tapped_bytes += wire;
    tapped_mcast += mc ? 1 : 0;
  });
  eng.spawn("drain1", [&] { (void)nw.nic(1).inbox().pop(); });
  eng.spawn("drain2", [&] { (void)nw.nic(2).inbox().pop(); });
  eng.spawn("tx", [&] {
    nw.unicast(make_msg(0, 1, 100));
    nw.multicast(make_msg(0, kMulticastDst, 200));
  });
  eng.run();
  EXPECT_EQ(tapped_bytes, nw.bytes_sent());
  EXPECT_EQ(tapped_mcast, 1);
}

TEST(Transport, ParseAndNameRoundTrip) {
  for (TransportKind k : kAllTransports) {
    const auto parsed = parse_transport(transport_name(k));
    ASSERT_TRUE(parsed.has_value()) << transport_name(k);
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_EQ(parse_transport("hub"), TransportKind::HubSwitch);
  EXPECT_EQ(parse_transport("tree"), TransportKind::TreeMulticast);
  EXPECT_EQ(parse_transport("direct"), TransportKind::DirectAll);
  EXPECT_FALSE(parse_transport("carrier-pigeon").has_value());
}

TEST(Transport, MulticastDeliverySetIdenticalAcrossBackends) {
  constexpr std::size_t kNodes = 8;
  constexpr NodeId kSrc = 2;
  for (TransportKind k : kAllTransports) {
    sim::Engine eng;
    NetConfig cfg;
    cfg.transport = k;
    Network nw(eng, cfg, kNodes);
    std::set<NodeId> got;
    for (NodeId n = 0; n < kNodes; ++n) {
      if (n == kSrc) continue;
      eng.spawn("rx" + std::to_string(n), [&nw, &got, n] {
        (void)nw.nic(n).inbox().pop();
        got.insert(n);
      });
    }
    eng.spawn("tx", [&] { nw.multicast(make_msg(kSrc, kMulticastDst, 4000)); });
    eng.run();
    std::set<NodeId> expect;
    for (NodeId n = 0; n < kNodes; ++n) {
      if (n != kSrc) expect.insert(n);
    }
    EXPECT_EQ(got, expect) << transport_name(k);
    // Wire accounting: one frame on the hub medium, one frame per edge on
    // the unicast-composed backends.
    const std::uint64_t frames = k == TransportKind::HubSwitch ? 1 : kNodes - 1;
    EXPECT_EQ(nw.messages_sent(), frames) << transport_name(k);
    EXPECT_EQ(nw.deliveries(), kNodes - 1) << transport_name(k);
  }
}

TEST(Transport, MulticastDeliveryTimesMonotonePerReceiver) {
  // Successive group sends must arrive at every receiver in send order, at
  // strictly increasing times, never before the send instant -- on every
  // backend.
  constexpr std::size_t kNodes = 6;
  constexpr int kFrames = 3;
  for (TransportKind k : kAllTransports) {
    sim::Engine eng;
    NetConfig cfg;
    cfg.transport = k;
    Network nw(eng, cfg, kNodes);
    std::map<NodeId, std::vector<sim::SimTime>> arrivals;
    sim::SimTime last_send{};
    for (NodeId n = 1; n < kNodes; ++n) {
      eng.spawn("rx" + std::to_string(n), [&nw, &arrivals, &eng, n] {
        for (int i = 0; i < kFrames; ++i) {
          (void)nw.nic(n).inbox().pop();
          arrivals[n].push_back(eng.now());
        }
      });
    }
    eng.spawn("tx", [&] {
      for (int i = 0; i < kFrames; ++i) {
        nw.multicast(make_msg(0, kMulticastDst, 3000));
        last_send = eng.now();
      }
    });
    eng.run();
    for (NodeId n = 1; n < kNodes; ++n) {
      ASSERT_EQ(arrivals[n].size(), static_cast<std::size_t>(kFrames)) << transport_name(k);
      EXPECT_GE(arrivals[n].front(), last_send) << transport_name(k);
      for (int i = 1; i < kFrames; ++i) {
        EXPECT_LT(arrivals[n][i - 1], arrivals[n][i])
            << transport_name(k) << " receiver " << n << " frame " << i;
      }
    }
  }
}

TEST(Transport, TreeMulticastForwardsThroughInteriorNodes) {
  // Fanout 2, sender 0, 8 nodes: node 1 and 2 are root children; nodes 3-6
  // hang off 1 and 2; node 7 is a third-level leaf.  Arrival times must
  // strictly increase with tree depth (per-hop latency accumulates).
  sim::Engine eng;
  NetConfig cfg;
  cfg.transport = TransportKind::TreeMulticast;
  cfg.mcast_tree_fanout = 2;
  Network nw(eng, cfg, 8);
  std::map<NodeId, sim::SimTime> at;
  for (NodeId n = 1; n < 8; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &at, &eng, n] {
      (void)nw.nic(n).inbox().pop();
      at[n] = eng.now();
    });
  }
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 4000)); });
  eng.run();
  ASSERT_EQ(at.size(), 7u);
  EXPECT_LT(at[1], at[3]);  // root child before its own child
  EXPECT_LT(at[1], at[4]);
  EXPECT_LT(at[2], at[5]);
  EXPECT_LT(at[2], at[6]);
  EXPECT_LT(at[3], at[7]);  // depth 2 before depth 3
}

TEST(Transport, DirectAllSerializesFanOutOnSourceUplink) {
  constexpr std::size_t kNodes = 5;
  sim::Engine eng;
  NetConfig cfg;
  cfg.transport = TransportKind::DirectAll;
  Network nw(eng, cfg, kNodes);
  std::vector<std::pair<sim::SimTime, NodeId>> order;
  for (NodeId n = 1; n < kNodes; ++n) {
    eng.spawn("rx" + std::to_string(n), [&nw, &order, &eng, n] {
      (void)nw.nic(n).inbox().pop();
      order.emplace_back(eng.now(), n);
    });
  }
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 10000)); });
  eng.run();
  ASSERT_EQ(order.size(), kNodes - 1);
  // Frames leave in ascending destination order and serialize on the source
  // uplink: arrivals are spaced by one full serialization each.
  const double leg = (10000 + 7 * 42) / 12.5e6 * 1e9;
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1].first, order[i].first);
    EXPECT_EQ(order[i].second, order[i - 1].second + 1);
    EXPECT_NEAR(static_cast<double>((order[i].first - order[i - 1].first).ns), leg, 2000.0);
  }
}

TEST(Transport, TreeMulticastLossCutsOffSubtrees) {
  // Store-and-forward semantics: an interior node that lost the frame has
  // nothing to forward.  With loss_probability = 1 only the root's own
  // transmissions (its k children) are ever attempted; the rest of the
  // tree is cut off without consuming loss-RNG draws.
  sim::Engine eng;
  NetConfig cfg;
  cfg.transport = TransportKind::TreeMulticast;
  cfg.mcast_tree_fanout = 2;
  cfg.loss_probability = 1.0;
  Network nw(eng, cfg, 8);
  eng.spawn("tx", [&] { nw.multicast(make_msg(0, kMulticastDst, 1000)); });
  eng.run();
  EXPECT_EQ(nw.deliveries(), 0u);
  EXPECT_EQ(nw.losses_injected(), 2u);   // the root's two children only
  EXPECT_EQ(nw.messages_sent(), 2u);     // only those frames hit the wire
}

TEST(Transport, UnicastPathIdenticalAcrossBackends) {
  // Point-to-point always rides the switch; the backend choice must not
  // perturb unicast delivery times.
  std::vector<std::int64_t> finish;
  for (TransportKind k : kAllTransports) {
    sim::Engine eng;
    NetConfig cfg;
    cfg.transport = k;
    Network nw(eng, cfg, 4);
    eng.spawn("rx", [&] {
      for (int i = 0; i < 3; ++i) (void)nw.nic(1).inbox().pop();
    });
    eng.spawn("tx", [&] {
      for (int i = 0; i < 3; ++i) nw.unicast(make_msg(0, 1, 5000));
    });
    eng.run();
    finish.push_back(eng.now().ns);
  }
  EXPECT_EQ(finish[0], finish[1]);
  EXPECT_EQ(finish[0], finish[2]);
}

TEST(Network, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine eng;
    Network nw(eng, NetConfig{}, 6);
    for (NodeId n = 1; n < 6; ++n) {
      eng.spawn("rx" + std::to_string(n), [&nw, n] {
        for (int i = 0; i < 5; ++i) (void)nw.nic(n).inbox().pop();
      });
    }
    eng.spawn("tx", [&] {
      for (int i = 0; i < 5; ++i) {
        for (NodeId n = 1; n < 6; ++n) nw.unicast(make_msg(0, n, 1000 + 100 * n));
      }
    });
    eng.run();
    return eng.now().ns;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(TransportProtocolMatrix, ChecksumsIdenticalAcrossModesFlowsAndTransports) {
  // Every run Mode and every RSE FlowControl variant must compute the same
  // application result on every transport backend: the wire model may only
  // change timing and traffic, never data.
  using apps::harness::Mode;
  apps::bh::BhConfig bh;
  bh.bodies = 256;
  bh.steps = 1;
  const auto checksum_of = [&](Mode m, TransportKind k, rse::FlowControl f) {
    apps::harness::RunOptions o;
    o.mode = m;
    o.nodes = 4;
    o.flow = f;
    o.net.transport = k;
    const auto report = apps::harness::run_barnes_hut(o, bh);
    EXPECT_STREQ(report.transport, transport_name(k));
    return report.checksum;
  };

  const double ref =
      checksum_of(Mode::Sequential, TransportKind::HubSwitch, rse::FlowControl::Chained);
  for (TransportKind k : kAllTransports) {
    for (Mode m : {Mode::Original, Mode::Optimized, Mode::BroadcastSeq}) {
      EXPECT_EQ(checksum_of(m, k, rse::FlowControl::Chained), ref)
          << apps::harness::mode_name(m) << " on " << transport_name(k);
    }
    for (rse::FlowControl f : {rse::FlowControl::Windowed, rse::FlowControl::None}) {
      EXPECT_EQ(checksum_of(Mode::Optimized, k, f), ref)
          << "Optimized/" << apps::harness::flow_name(f) << " on " << transport_name(k);
    }
  }
}

}  // namespace
}  // namespace repseq::net
