// Execution statistics matching the paper's Tables 1-4 row for row.
//
// Counters are split by execution phase (sequential vs parallel section);
// the phase is a cluster-global property toggled by the OpenMP layer at
// fork/join boundaries, which are global synchronizations.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/clock.hpp"
#include "util/stats_accum.hpp"

namespace repseq::tmk {

enum class Phase : std::uint8_t {
  Sequential,  // between a join and the next fork (includes program init)
  Parallel,    // between a fork and its join
};

/// Multicast wire traffic charged to one shard of the multicast medium
/// (one entry per serialization domain; single-medium backends have one).
struct ShardCounters {
  std::uint64_t mcast_msgs = 0;
  std::uint64_t mcast_bytes = 0;

  void merge(const ShardCounters& o) {
    mcast_msgs += o.mcast_msgs;
    mcast_bytes += o.mcast_bytes;
  }
};

/// One shard's aggregate occupancy over a whole run: the frames/bytes the
/// protocol layer put on it plus the time the medium spent transmitting
/// (busy cycles).  Benches report max-per-shard busy to show whether the
/// medium -- not the protocol -- is the serialization bottleneck.
struct HubOccupancy {
  std::uint64_t mcast_msgs = 0;
  std::uint64_t mcast_bytes = 0;
  sim::SimDuration busy{};
};

/// Counters for one node within one phase class.
struct PhaseCounters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t diff_msgs_sent = 0;
  std::uint64_t diff_bytes_sent = 0;

  std::uint64_t page_faults = 0;      // faults taken by this node
  std::uint64_t diff_requests = 0;    // fault-driven request rounds issued
  std::uint64_t null_acks_sent = 0;   // RSE flow-control null acknowledgments
  std::uint64_t fwd_requests = 0;     // RSE requests forwarded via master
  std::uint64_t recoveries = 0;       // timeout recovery rounds

  /// Round-trip per diff request round, milliseconds.
  util::Accumulator response_ms;
  /// Total time this node spent blocked in fault handling.
  sim::SimDuration fault_wait{};

  /// Multicast frames/bytes by medium shard (index = shard id; grown on
  /// demand to the active backend's shard count).  Only the charge path
  /// grows it -- read-side consumers must use shard_peek (or iterate the
  /// vector) so a lookup of a never-charged shard cannot fabricate a
  /// phantom empty entry.
  std::vector<ShardCounters> shard_traffic;

  /// Mutating accessor for the charge/merge path: grows the vector to
  /// cover shard `s`.
  ShardCounters& shard_mut(std::size_t s) {
    if (shard_traffic.size() <= s) shard_traffic.resize(s + 1);
    return shard_traffic[s];
  }

  /// Const peek for read-side consumers: a never-charged shard reads as
  /// zero counters without allocating an entry.
  [[nodiscard]] ShardCounters shard_peek(std::size_t s) const {
    return s < shard_traffic.size() ? shard_traffic[s] : ShardCounters{};
  }

  void merge(const PhaseCounters& o) {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    diff_msgs_sent += o.diff_msgs_sent;
    diff_bytes_sent += o.diff_bytes_sent;
    page_faults += o.page_faults;
    diff_requests += o.diff_requests;
    null_acks_sent += o.null_acks_sent;
    fwd_requests += o.fwd_requests;
    recoveries += o.recoveries;
    response_ms.merge(o.response_ms);
    fault_wait += o.fault_wait;
    for (std::size_t s = 0; s < o.shard_traffic.size(); ++s) {
      shard_mut(s).merge(o.shard_traffic[s]);
    }
  }
};

struct NodeStats {
  PhaseCounters seq;
  PhaseCounters par;

  PhaseCounters& for_phase(Phase p) { return p == Phase::Sequential ? seq : par; }
  [[nodiscard]] const PhaseCounters& for_phase(Phase p) const {
    return p == Phase::Sequential ? seq : par;
  }
};

/// Wall (virtual) time breakdown measured at the master, matching the rows
/// of Tables 1 and 3.
struct TimeBreakdown {
  sim::SimDuration total{};
  sim::SimDuration sequential{};  // time in sequential sections
  sim::SimDuration parallel{};    // time in parallel sections
};

}  // namespace repseq::tmk
