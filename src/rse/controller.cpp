#include "rse/controller.hpp"

#include <algorithm>
#include <set>
#include <string>

#include "chk/checker.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace repseq::rse {

namespace {
constexpr std::uint32_t kEntryBarrier = 0xFFFF0001u;
constexpr std::uint32_t kExitBarrier = 0xFFFF0002u;
/// CPU cost per valid-notice entry scanned/serialized during the exchange.
constexpr sim::SimDuration kPerEntryCost{120};

using tmk::MsgKind;
using tmk::PageId;
using tmk::PageProt;

/// Track carrying one shard's master rounds: round_in_flight serializes
/// them, so B/E pairs on it always alternate and nest trivially.
const char* shard_track(std::size_t shard) {
  return obs::tracer().intern("rse-round-shard" + std::to_string(shard));
}
}  // namespace

RseController::RseController(tmk::Cluster& cluster, FlowControl flow)
    : cluster_(cluster),
      flow_(flow),
      shards_(cluster.network().hub_shards()),
      state_(cluster.node_count()) {
  for (NodeState& st : state_) st.rounds.resize(shards_);
  state_[0].shards.resize(shards_);
  cluster_.set_rse_hooks(this);  // registers this variant's handler set
}

RseController::RoundState& RseController::round_state(tmk::NodeRuntime& rt, std::size_t shard) {
  return state_[rt.id()].rounds[shard];
}

RseController::MasterShard& RseController::master_shard(std::size_t shard) {
  return state_[0].shards[shard];
}

void RseController::begin_round(tmk::NodeRuntime& rt, const tmk::McastDiffRequestP& req,
                                bool on_server) {
  if (flow_ == FlowControl::Chained) {
    chain_begin_chained(rt, req, on_server);
  } else {
    begin_concurrent(rt, req, on_server);
  }
}

tmk::ValidNoticesP RseController::local_valid_notices(tmk::NodeRuntime& rt) const {
  tmk::ValidNoticesP out;
  for (PageId p = 0; p < rt.page_count(); ++p) {
    const tmk::PageState& ps = rt.page(p);
    if (!ps.pending.empty()) {
      out.entries.emplace_back(p, ps.valid_vc);
    }
  }
  return out;
}

void RseController::enter(tmk::NodeRuntime& rt) {
  if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
    obs::tracer().begin(obs::Cat::Rse, cluster_.engine().now(),
                        static_cast<std::int32_t>(rt.id()) + 1, "app", "rse-bracket");
  }
  // "A join before a replicated sequential section behaves like a barrier"
  // (Section 5.2): all threads align and receive the usual consistency
  // information.
  rt.barrier(kEntryBarrier);

  NodeState& st = state_[rt.id()];
  const std::size_t n = cluster_.node_count();
  const sim::SimTime t0 = cluster_.engine().now();

  if (n > 1) {
    tmk::ValidNoticesP mine = local_valid_notices(rt);
    rt.charge(kPerEntryCost * static_cast<std::int64_t>(mine.entries.size() + 1));

    if (rt.is_master()) {
      if (st.gathering.size() != n) st.gathering.resize(n);
      st.gathering[0] = mine;
      while (st.notices_collected != n - 1) {
        sim::WaitToken tok(cluster_.engine());
        st.master_gather_waiter = &tok;
        tok.wait();
        st.master_gather_waiter = nullptr;
      }
      auto table = std::make_shared<const std::vector<tmk::ValidNoticesP>>(
          std::move(st.gathering));
      st.gathering.clear();
      st.notices_collected = 0;
      rt.send_multicast(MsgKind::ValidTable, tmk::ValidTableP{table}, /*on_server=*/false);
      st.table = table;
    } else {
      rt.send_unicast(MsgKind::ValidNotices, 0, std::move(mine), /*on_server=*/false);
      while (!st.table) {
        sim::WaitToken tok(cluster_.engine());
        st.table_waiter = &tok;
        tok.wait();
        st.table_waiter = nullptr;
      }
    }

    // Index the table for O(log) per-fault lookups.
    st.table_index.assign(n, {});
    for (std::size_t t = 0; t < n; ++t) {
      for (const auto& [page, vc] : (*st.table)[t].entries) {
        st.table_index[t].emplace(page, &vc);
      }
      rt.charge(kPerEntryCost * static_cast<std::int64_t>((*st.table)[t].entries.size()));
    }
    rt.cpu().flush();
  }
  valid_notice_time_ += cluster_.engine().now() - t0;

  // Write-protect dirty pages so that pre-section modifications are flushed
  // into diffs at the first replicated write (the lazy-diff hazard fix of
  // Section 5.3).
  for (PageId p = 0; p < rt.page_count(); ++p) {
    if (rt.page(p).has_twin()) {
      rt.page(p).rse_write_protected = true;
    }
  }

  st.active = true;
  rt.set_in_replicated_section(true);
  if (chk::Checker* c = cluster_.checker()) [[unlikely]] {
    c->on_section_enter(rt, rt.current_site());
  }
}

void RseController::exit(tmk::NodeRuntime& rt) {
  NodeState& st = state_[rt.id()];
  REPSEQ_CHECK(st.active, "RSE exit without enter");
  // Digest the section's write set before any post-section state is
  // touched: every replica must have produced identical bytes.
  if (chk::Checker* c = cluster_.checker()) [[unlikely]] {
    c->on_section_exit(rt);
  }

  // Remaining write-protected dirty pages return to their normal state
  // (Section 5.3); their twins still hold the pre-section modifications.
  for (PageId p = 0; p < rt.page_count(); ++p) {
    rt.page(p).rse_write_protected = false;
  }
  st.active = false;
  st.table = nullptr;
  st.table_index.clear();
  // Frames of rounds that never completed (watchdog-abandoned; the page was
  // then validated by recovery's own complete batch) must not survive into
  // the next section, whose pending sets they say nothing about.
  st.staged.clear();
  rt.set_in_replicated_section(false);

  // "At the fork at the end of a sequential section, threads wait until all
  // other threads have finished...  No memory coherence information is
  // exchanged" (Section 5.2).  No intervals closed during the section, so
  // this barrier carries no notices.
  rt.barrier(kExitBarrier);
  if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
    obs::tracer().end(obs::Cat::Rse, cluster_.engine().now(),
                      static_cast<std::int32_t>(rt.id()) + 1, "app");
  }
}

std::optional<net::NodeId> RseController::elected_requester(const NodeState& st,
                                                            PageId page) const {
  for (net::NodeId t = 0; t < st.table_index.size(); ++t) {
    if (st.table_index[t].contains(page)) return t;
  }
  return std::nullopt;
}

tmk::WantedByOwner RseController::union_missing(tmk::NodeRuntime& rt, const NodeState& st,
                                                PageId page) const {
  std::map<net::NodeId, std::set<std::uint32_t>> want;
  const auto& notices = rt.page_notices(page);
  for (net::NodeId t = 0; t < st.table_index.size(); ++t) {
    auto it = st.table_index[t].find(page);
    if (it == st.table_index[t].end()) continue;  // t holds a valid copy
    const tmk::VectorClock& valid = *it->second;
    for (const tmk::IntervalRecordPtr& rec : notices) {
      if (rec->owner == t) continue;  // own writes are never missing
      if (!valid.covers(rec->owner, rec->index)) {
        want[rec->owner].insert(rec->index);
      }
    }
  }
  tmk::WantedByOwner out;
  out.reserve(want.size());
  for (auto& [owner, ivs] : want) {
    out.emplace_back(owner, std::vector<std::uint32_t>(ivs.begin(), ivs.end()));
  }
  return out;
}

void RseController::on_fault(tmk::NodeRuntime& rt, PageId page) {
  NodeState& st = state_[rt.id()];
  REPSEQ_CHECK(st.active, "RSE fault outside a replicated section");
  tmk::PhaseCounters& c = rt.stats().for_phase(cluster_.phase());
  ++c.page_faults;
  rt.charge(rt.config().fault_overhead);
  rt.cpu().flush();
  const sim::SimTime t0 = cluster_.engine().now();
  if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
    obs::tracer().begin(obs::Cat::Rse, t0, static_cast<std::int32_t>(rt.id()) + 1, "app",
                        "rse-fault", {{"page", static_cast<double>(page)}});
  }

  const auto requester = elected_requester(st, page);
  const bool i_request = requester.has_value() && *requester == rt.id();
  if (i_request) {
    tmk::WantedByOwner wanted = union_missing(rt, st, page);
    REPSEQ_CHECK(!wanted.empty(), "requester elected with nothing to request");
    ++c.fwd_requests;
    if (flow_ == FlowControl::None) {
      // Strawman: the faulting node multicasts its request directly; no
      // serialization at the master, holders reply immediately.
      tmk::McastDiffRequestP req{0, page, rt.id(), std::move(wanted)};
      rt.send_multicast(MsgKind::McastDiffRequest, req, /*on_server=*/false, /*group=*/page);
      begin_round(rt, req, /*on_server=*/false);
    } else {
      tmk::McastRequestFwdP fwd{page, rt.id(), std::move(wanted)};
      if (rt.is_master()) {
        master_enqueue(rt, std::move(fwd), /*on_server=*/false);
      } else {
        rt.send_unicast(MsgKind::McastRequestFwd, 0, std::move(fwd), /*on_server=*/false);
      }
    }
  }

  // Everyone missing the page -- the requester included -- blocks until the
  // multicast replies make the local copy valid.  The retry interval backs
  // off exponentially: every waiter that times out asks every owner, and
  // every owner answers with a full multicast, so fixed-interval retries on
  // a slow transport (the serialized forwarding tree above all) inject
  // recovery traffic faster than the wire can drain it -- each salvo delays
  // the very replies the waiters are timing out on, and the storm feeds
  // itself until the retry budget is exhausted.  Doubling the wait lets the
  // backlog drain between salvos while keeping the first retry prompt.
  int attempts = 0;
  sim::SimDuration wait = rt.config().rse_wait_timeout;
  const sim::SimDuration wait_cap{rt.config().rse_wait_timeout.ns * 64};
  while (!rt.wait_page_valid(page, wait)) {
    ++attempts;
    ++c.recoveries;
    if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
      // Backoff level = attempts; wait_ns is the doubled interval the next
      // wait will use -- exactly the retry-storm signature of PR 6.
      obs::tracer().instant(obs::Cat::Rse, cluster_.engine().now(),
                            static_cast<std::int32_t>(rt.id()) + 1, "app", "recovery-retry",
                            {{"page", static_cast<double>(page)},
                             {"attempt", static_cast<double>(attempts)},
                             {"wait_ns", static_cast<double>(wait.ns)}});
    }
    REPSEQ_CHECK(attempts <= rt.config().max_retries,
                 "RSE recovery retries exhausted for page " + std::to_string(page));
    recover(rt, page);
    wait = std::min(sim::SimDuration{wait.ns * 2}, wait_cap);
  }
  if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
    obs::tracer().end(obs::Cat::Rse, cluster_.engine().now(),
                      static_cast<std::int32_t>(rt.id()) + 1, "app");
  }
  rt.record_fault_round(t0, /*counted_as_request=*/i_request);
}

void RseController::recover(tmk::NodeRuntime& rt, PageId page) {
  // Section 5.4.2: on timeout a thread requests its own missing diffs
  // directly, ignoring the election; the replies are still multicast.
  const tmk::WantedByOwner wanted = rt.wanted_for_page(page);
  for (const auto& [owner, ivs] : wanted) {
    rt.send_unicast(MsgKind::RecoverRequest, owner, tmk::RecoverRequestP{rt.next_req_id(), page, ivs},
                    /*on_server=*/false);
  }
}

void RseController::master_enqueue(tmk::NodeRuntime& master, tmk::McastRequestFwdP fwd,
                                   bool on_server) {
  const std::size_t shard = shard_for(fwd.page);
  MasterShard& ms = master_shard(shard);
  ms.queue.push_back(tmk::McastDiffRequestP{0, fwd.page, fwd.requester, std::move(fwd.wanted)});
  if (!ms.round_in_flight) master_start_next(master, shard, on_server);
}

void RseController::master_start_next(tmk::NodeRuntime& master, std::size_t shard,
                                      bool on_server) {
  MasterShard& ms = master_shard(shard);
  if (ms.queue.empty()) {
    ms.round_in_flight = false;
    return;
  }
  ms.round_in_flight = true;
  tmk::McastDiffRequestP req = std::move(ms.queue.front());
  ms.queue.pop_front();
  req.round = ms.next_round_no++;
  ms.active_round = req.round;
  if (chk::Checker* c = cluster_.checker()) [[unlikely]] {
    c->on_round_start(shard, req.round);
  }
  if (flow_ == FlowControl::Windowed) {
    ms.awaiting_replies.clear();
    for (const auto& [owner, _] : req.wanted) ms.awaiting_replies.push_back(owner);
  }
  if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
    obs::tracer().begin(obs::Cat::Rse, cluster_.engine().now(), 1, shard_track(shard),
                        "round",
                        {{"round", static_cast<double>(req.round)},
                         {"page", static_cast<double>(req.page)},
                         {"requester", static_cast<double>(req.requester)},
                         {"queued", static_cast<double>(ms.queue.size())}});
  }
  master.send_multicast(MsgKind::McastDiffRequest, req, on_server, /*group=*/req.page);
  begin_round(master, req, on_server);  // the master never receives its own frame

  // Watchdog: a lost frame stalls the ack chain (and with it this shard's
  // round queue) indefinitely.  If this round is still in flight when the
  // tick lands, the master abandons it -- the faulters repair themselves
  // through the direct-recovery path of Section 5.4.2.
  const std::uint64_t round_no = req.round;
  ms.round_watchdog =
      cluster_.engine().schedule_in(master.config().rse_wait_timeout, [this, round_no, shard] {
        MasterShard& m = master_shard(shard);
        if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
          obs::tracer().instant(obs::Cat::Rse, cluster_.engine().now(), 1, "watchdog",
                                "watchdog-tick",
                                {{"round", static_cast<double>(round_no)},
                                 {"shard", static_cast<double>(shard)},
                                 {"fires", m.round_in_flight && m.active_round == round_no
                                               ? 1.0
                                               : 0.0}});
        }
        if (m.round_in_flight && m.active_round == round_no) {
          cluster_.network().nic(0).inbox().push(tmk::make_message(
              MsgKind::RseRoundTick, 0, 0,
              tmk::RseRoundTickP{round_no, static_cast<std::uint32_t>(shard)}));
        }
      });
}

void RseController::master_round_finished(tmk::NodeRuntime& master, std::size_t shard,
                                          bool on_server) {
  MasterShard& ms = master_shard(shard);
  REPSEQ_CHECK(ms.round_in_flight, "round finish without a round");
  // Every round ending -- normal chain/window completion AND watchdog
  // abandonment -- funnels through here, so this one hook closes the
  // at-most-one-in-flight oracle's bracket.
  if (chk::Checker* c = cluster_.checker()) [[unlikely]] {
    c->on_round_finish(shard, ms.active_round);
  }
  if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
    obs::tracer().end(obs::Cat::Rse, cluster_.engine().now(), 1, shard_track(shard));
  }
  ms.round_in_flight = false;
  if (ms.round_watchdog) {
    cluster_.engine().cancel(ms.round_watchdog);
    ms.round_watchdog = nullptr;
  }
  master_start_next(master, shard, on_server);
}

void RseController::chain_begin_chained(tmk::NodeRuntime& rt, const tmk::McastDiffRequestP& req,
                                        bool on_server) {
  const std::size_t shard = shard_for(req.page);
  RoundState& st = round_state(rt, shard);
  st.round = req.round;
  st.round_page = req.page;
  st.round_wanted = req.wanted;
  st.next_sender = 0;
  // Frames of this round that overtook its request on a non-FIFO transport
  // were parked in early_frames; replay them after the round state is set
  // up.  Everything at or below this round number is settled either way.
  std::set<net::NodeId> replay;
  if (auto it = st.early_frames.find(req.round); it != st.early_frames.end()) {
    replay = std::move(it->second);
  }
  st.early_frames.erase(st.early_frames.begin(), st.early_frames.upper_bound(req.round));
  while (st.next_sender == rt.id()) {
    chain_send_own(rt, shard, on_server);
  }
  for (net::NodeId s : replay) {
    chain_observe(rt, shard, s, on_server);
  }
  chain_maybe_finish(rt, shard, on_server);
}

void RseController::begin_concurrent(tmk::NodeRuntime& rt, const tmk::McastDiffRequestP& req,
                                     bool on_server) {
  // Concurrent replies: every holder answers immediately.
  const std::size_t shard = shard_for(req.page);
  RoundState& st = round_state(rt, shard);
  st.round = req.round;
  st.round_page = req.page;
  st.round_wanted = req.wanted;
  const bool i_hold = std::any_of(req.wanted.begin(), req.wanted.end(),
                                  [&](const auto& w) { return w.first == rt.id(); });
  if (i_hold) {
    send_own_frame(rt, shard, on_server);
    if (flow_ == FlowControl::Windowed && rt.is_master()) {
      window_retire(rt, shard, rt.id(), req.round, on_server);
    }
  }
}

void RseController::send_own_frame(tmk::NodeRuntime& rt, std::size_t shard, bool on_server) {
  RoundState& st = round_state(rt, shard);
  auto it = std::find_if(st.round_wanted.begin(), st.round_wanted.end(),
                         [&](const auto& w) { return w.first == rt.id(); });
  if (it != st.round_wanted.end()) {
    std::vector<tmk::DiffPacket> packets = rt.collect_diffs(st.round_page, it->second, on_server);
    rt.send_multicast(MsgKind::McastDiffReply,
                      tmk::McastDiffReplyP{st.round, st.round_page, rt.id(), std::move(packets)},
                      on_server, /*group=*/st.round_page);
  } else {
    // "otherwise a null acknowledgment message is sent" (Section 5.4.2).
    rt.send_multicast(MsgKind::McastNullAck,
                      tmk::McastNullAckP{st.round, st.round_page, rt.id()}, on_server,
                      /*group=*/st.round_page);
  }
}

void RseController::chain_send_own(tmk::NodeRuntime& rt, std::size_t shard, bool on_server) {
  send_own_frame(rt, shard, on_server);
  ++round_state(rt, shard).next_sender;
}

void RseController::chain_observe(tmk::NodeRuntime& rt, std::size_t shard, net::NodeId sender,
                                  bool on_server) {
  RoundState& st = round_state(rt, shard);
  // On the FIFO hub, frames arrive strictly in thread-id order without
  // loss.  A gap means a lost frame (skip over it; the requester's timeout
  // recovery repairs any missing diffs) or, on a non-FIFO transport such as
  // the multicast tree, frames overtaking each other on paths of different
  // depth.  Either way this node's own slot may be jumped: send its frame
  // late so holders' diffs still reach the group.
  if (sender < st.next_sender) return;  // duplicate or stale
  const bool own_turn_skipped = st.next_sender <= rt.id() && rt.id() < sender;
  st.next_sender = sender + 1;
  if (own_turn_skipped) {
    send_own_frame(rt, shard, on_server);
  }
  while (st.next_sender == rt.id()) {
    chain_send_own(rt, shard, on_server);
  }
  chain_maybe_finish(rt, shard, on_server);
}

void RseController::chain_maybe_finish(tmk::NodeRuntime& rt, std::size_t shard, bool on_server) {
  if (!rt.is_master()) return;
  const RoundState& st = round_state(rt, shard);
  if (st.next_sender < cluster_.node_count()) return;
  // The chain completing is only this round's completion if the master
  // still has it in flight: the watchdog may have abandoned it (and moved
  // on to a successor round, or gone idle) while its late frames were still
  // trickling in -- their diffs apply, but they must not finish someone
  // else's round.
  const MasterShard& ms = master_shard(shard);
  if (ms.round_in_flight && ms.active_round == st.round) {
    master_round_finished(rt, shard, on_server);
  }
}

void RseController::window_retire(tmk::NodeRuntime& rt, std::size_t shard, net::NodeId sender,
                                  std::uint64_t round, bool on_server) {
  MasterShard& ms = master_shard(shard);
  // A reply from a watchdog-abandoned round must not shrink the successor
  // round's window.
  if (!ms.round_in_flight || round != ms.active_round) return;
  std::erase(ms.awaiting_replies, sender);
  if (ms.awaiting_replies.empty()) master_round_finished(rt, shard, on_server);
}

void RseController::apply_mcast_packets(tmk::NodeRuntime& rt,
                                        const std::vector<tmk::DiffPacket>& pkts,
                                        bool on_server) {
  // Frames of one round arrive in chain (node-id) order, not causal order.
  // With causally ordered same-page writers -- a lock chain before the
  // section -- applying each frame on arrival would let an older diff land
  // on top of the newer data that covers it: silent replica divergence (the
  // same hazard the BcastUpdate handler guards; the diff-apply-causality
  // oracle caught this path missing it).  So frames are staged per page and
  // applied in ONE causal batch only once every pending notice is covered.
  //
  // Completeness is tracked incrementally: the page's pending set is
  // snapshotted into `needed` when staging begins (pending only ever shrinks
  // to empty mid-section, via the pull path, which drops the entry below)
  // and arriving covers tick entries off -- no per-arrival rescan.
  NodeState& st = state_[rt.id()];
  for (const tmk::DiffPacket& pkt : pkts) {
    const auto& pending = rt.page(pkt.page).pending;
    // Never touch a page this node already holds valid: its replicated
    // writes may have moved it past the pre-section image these diffs carry.
    if (pending.empty()) {
      st.staged.erase(pkt.page);  // the pull path validated it first
      continue;
    }
    auto [it, inserted] = st.staged.try_emplace(pkt.page);
    NodeState::StagedPage& sp = it->second;
    if (inserted) {
      sp.needed.reserve(pending.size());
      for (const tmk::IntervalRecordPtr& r : pending) sp.needed.emplace_back(r->owner, r->index);
      std::sort(sp.needed.begin(), sp.needed.end());
    }
    const std::pair<net::NodeId, std::uint64_t> key{pkt.owner, pkt.seq};
    const auto sit = std::lower_bound(sp.seen.begin(), sp.seen.end(), key);
    if (sit != sp.seen.end() && *sit == key) continue;  // duplicate frame
    sp.seen.insert(sit, key);
    sp.frames.push_back(pkt);
    for (std::uint32_t i : pkt.covers) {
      const std::pair<net::NodeId, std::uint32_t> notice{pkt.owner, i};
      const auto nit = std::lower_bound(sp.needed.begin(), sp.needed.end(), notice);
      if (nit != sp.needed.end() && *nit == notice) sp.needed.erase(nit);
    }
    if (sp.needed.empty()) {
      std::vector<tmk::DiffPacket> batch = std::move(sp.frames);
      st.staged.erase(it);
      rt.apply_packets_causally(std::move(batch), on_server);
    }
  }
}

void RseController::register_handlers(tmk::ProtocolEngine& engine) {
  // ---- handlers common to every flow-control variant ----

  engine.on(MsgKind::ValidNotices, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
    REPSEQ_CHECK(rt.is_master(), "valid notices routed to non-master");
    NodeState& ms = state_[0];
    if (ms.gathering.size() != cluster_.node_count()) {
      ms.gathering.resize(cluster_.node_count());
    }
    ms.gathering[msg.src] = msg.as<tmk::ValidNoticesP>();
    ++ms.notices_collected;
    if (ms.notices_collected == cluster_.node_count() - 1 && ms.master_gather_waiter != nullptr) {
      ms.master_gather_waiter->signal();
    }
  });
  engine.on(MsgKind::ValidTable, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
    NodeState& st = state_[rt.id()];
    st.table = msg.as<tmk::ValidTableP>().per_node;
    if (st.table_waiter != nullptr) st.table_waiter->signal();
  });
  engine.on(MsgKind::McastDiffRequest, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
    begin_round(rt, msg.as<tmk::McastDiffRequestP>(), /*on_server=*/true);
  });
  engine.on(MsgKind::RecoverRequest, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
    const auto& r = msg.as<tmk::RecoverRequestP>();
    std::vector<tmk::DiffPacket> packets = rt.collect_diffs(r.page, r.intervals,
                                                            /*on_server=*/true);
    rt.send_multicast(MsgKind::McastDiffReply,
                      tmk::McastDiffReplyP{0, r.page, rt.id(), std::move(packets)},
                      /*on_server=*/true, /*group=*/r.page);
  });

  // ---- per-variant handler sets ----

  switch (flow_) {
    case FlowControl::Chained:
      engine.on(MsgKind::McastDiffReply, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
        const auto& r = msg.as<tmk::McastDiffReplyP>();
        apply_mcast_packets(rt, r.packets, /*on_server=*/true);
        if (r.round != 0) {
          const std::size_t shard = shard_for(r.page);
          RoundState& st = round_state(rt, shard);
          if (r.round == st.round) {
            chain_observe(rt, shard, r.sender, /*on_server=*/true);
          } else if (r.round > st.round) {
            // Overtook its own round's request (non-FIFO transport); park
            // for replay when that request arrives.
            st.early_frames[r.round].insert(r.sender);
          }
        }
      });
      engine.on(MsgKind::McastNullAck, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
        const auto& a = msg.as<tmk::McastNullAckP>();
        const std::size_t shard = shard_for(a.page);
        RoundState& st = round_state(rt, shard);
        if (a.round == st.round) {
          chain_observe(rt, shard, a.sender, /*on_server=*/true);
        } else if (a.round > st.round) {
          st.early_frames[a.round].insert(a.sender);
        }
      });
      break;
    case FlowControl::Windowed:
      engine.on(MsgKind::McastDiffReply, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
        const auto& r = msg.as<tmk::McastDiffReplyP>();
        apply_mcast_packets(rt, r.packets, /*on_server=*/true);
        if (r.round != 0 && rt.is_master()) {
          window_retire(rt, shard_for(r.page), r.sender, r.round, /*on_server=*/true);
        }
      });
      break;
    case FlowControl::None:
      // No rounds, no acks: replies carry diffs and nothing else.
      engine.on(MsgKind::McastDiffReply, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
        apply_mcast_packets(rt, msg.as<tmk::McastDiffReplyP>().packets, /*on_server=*/true);
      });
      break;
  }

  // Round serialization at the master exists only for the variants that
  // forward requests there (Section 5.4.2's protocol and its windowed
  // relaxation); the None strawman multicasts requests directly.
  if (flow_ != FlowControl::None) {
    engine.on(MsgKind::McastRequestFwd, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
      REPSEQ_CHECK(rt.is_master(), "forwarded request routed to non-master");
      master_enqueue(rt, msg.as<tmk::McastRequestFwdP>(), /*on_server=*/true);
    });
    engine.on(MsgKind::RseRoundTick, [this](tmk::NodeRuntime& rt, const net::Message& msg) {
      REPSEQ_CHECK(rt.is_master(), "round tick on non-master");
      const auto& tick = msg.as<tmk::RseRoundTickP>();
      MasterShard& ms = master_shard(tick.shard);
      if (ms.round_in_flight && ms.active_round == tick.round) {
        if (obs::enabled(obs::Cat::Rse)) [[unlikely]] {
          obs::tracer().instant(obs::Cat::Rse, cluster_.engine().now(), 1, "watchdog",
                                "round-abandon",
                                {{"round", static_cast<double>(tick.round)},
                                 {"shard", static_cast<double>(tick.shard)}});
        }
        master_round_finished(rt, tick.shard, /*on_server=*/true);
      }
    });
  }
}

}  // namespace repseq::rse
