// Tests for the adaptive per-section replication policy engine
// (rse::policy): decision determinism and transport invariance, cluster-wide
// decision agreement via the section-open multicast, correctness of
// mixed-strategy runs, and the headline competitiveness claim -- adaptive
// within a few percent of the best static mode on both applications.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "apps/harness/run_modes.hpp"
#include "ompnow/team.hpp"
#include "rse/policy/policy_engine.hpp"
#include "tmk/access.hpp"

namespace repseq::rse::policy {
namespace {

using apps::harness::Mode;
using apps::harness::RunOptions;
using apps::harness::RunReport;

RunOptions opts(Mode mode, std::size_t nodes, PolicyKind kind = PolicyKind::Hysteresis) {
  RunOptions o;
  o.mode = mode;
  o.nodes = nodes;
  o.tmk.heap_bytes = 24u << 20;
  o.policy.kind = kind;
  return o;
}

apps::ilink::IlinkConfig small_ilink() {
  apps::ilink::IlinkConfig cfg;
  cfg.families = 2;
  cfg.children = 2;
  cfg.genotypes = 1024;
  cfg.iterations = 2;
  cfg.min_nonzero = 64;
  cfg.max_nonzero = 256;
  cfg.threshold = 96;
  return cfg;
}

std::vector<Decision> sorted_by_seq(std::vector<Decision> v) {
  std::sort(v.begin(), v.end(),
            [](const Decision& a, const Decision& b) { return a.seq < b.seq; });
  return v;
}

void expect_same_choices(const std::vector<Decision>& a, const std::vector<Decision>& b,
                         const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_TRUE(a[i].same_choice(b[i]))
        << what << ": decision " << i << " differs: site " << a[i].site << " vs " << b[i].site
        << ", strategy " << strategy_name(a[i].strategy) << " vs "
        << strategy_name(b[i].strategy);
  }
}

TEST(PolicyParsing, StrategyAndPinListRoundTrip) {
  for (SectionStrategy s : {SectionStrategy::MasterOnly, SectionStrategy::Replicated,
                            SectionStrategy::BroadcastAfter}) {
    const auto parsed = parse_strategy(strategy_name(s));
    ASSERT_TRUE(parsed.has_value()) << strategy_name(s);
    EXPECT_EQ(*parsed, s);
  }
  EXPECT_EQ(parse_strategy("master"), SectionStrategy::MasterOnly);
  EXPECT_FALSE(parse_strategy("bogus").has_value());

  const auto pins = parse_pin_sites("1=broadcast,3=master-only");
  ASSERT_TRUE(pins.has_value());
  ASSERT_EQ(pins->size(), 2u);
  EXPECT_EQ(pins->at(1), SectionStrategy::BroadcastAfter);
  EXPECT_EQ(pins->at(3), SectionStrategy::MasterOnly);
  const auto single = parse_pin_sites("2=replicated");
  ASSERT_TRUE(single.has_value());
  EXPECT_EQ(single->at(2), SectionStrategy::Replicated);

  // Malformed pin lists are rejected outright (the env reader exits with
  // the offending value) -- never half-parsed.
  EXPECT_FALSE(parse_pin_sites("1").has_value());
  EXPECT_FALSE(parse_pin_sites("=broadcast").has_value());
  EXPECT_FALSE(parse_pin_sites("x=broadcast").has_value());
  EXPECT_FALSE(parse_pin_sites("1=bogus").has_value());
  EXPECT_FALSE(parse_pin_sites("1=broadcast,,2=master").has_value());
  EXPECT_FALSE(parse_pin_sites("1=broadcast,").has_value());
  EXPECT_FALSE(parse_pin_sites("1=broadcast,1=master-only").has_value());
  // A site id past uint32 must fail, not silently wrap onto another site.
  EXPECT_FALSE(parse_pin_sites("4294967297=broadcast").has_value());
  EXPECT_TRUE(parse_pin_sites("4294967295=broadcast").has_value());
}

TEST(Policy, PinnedSiteSkipsProbeAndHoldsItsStrategy) {
  // REPSEQ_PIN_SITE semantics: a pinned site executes the pinned strategy
  // on EVERY occurrence -- including the first, which for an unpinned site
  // would run the execute-and-broadcast bootstrap probe -- while unpinned
  // sites adapt normally.  Results must stay bit-identical.
  const auto cfg = small_ilink();
  const RunReport free_run = run_ilink(opts(Mode::Adaptive, 6), cfg);

  RunOptions pinned = opts(Mode::Adaptive, 6);
  pinned.policy.pins[apps::ilink::kSectionSumContrib] = SectionStrategy::MasterOnly;
  const RunReport pin_run = run_ilink(pinned, cfg);

  EXPECT_EQ(pin_run.checksum, free_run.checksum);
  ASSERT_FALSE(pin_run.decisions.empty());

  bool saw_pinned = false;
  bool first_of_pinned = true;
  std::vector<std::uint32_t> seen;
  for (const Decision& d : pin_run.decisions) {
    const bool first = std::find(seen.begin(), seen.end(), d.site) == seen.end();
    if (first) seen.push_back(d.site);
    if (d.site == apps::ilink::kSectionSumContrib) {
      saw_pinned = true;
      EXPECT_EQ(d.strategy, SectionStrategy::MasterOnly)
          << "pinned site deviated at seq " << d.seq;
      if (first_of_pinned) {
        // The probe-bracket fix: no broadcast probe on a pinned site's
        // first occurrence.
        EXPECT_FALSE(d.switched);
        first_of_pinned = false;
      }
    } else if (first) {
      // Unpinned sites still bootstrap with the broadcast probe.
      EXPECT_EQ(d.strategy, SectionStrategy::BroadcastAfter)
          << "unpinned site " << d.site << " lost its bootstrap probe";
    }
  }
  EXPECT_TRUE(saw_pinned);
}

TEST(PolicyParsing, NamesRoundTrip) {
  for (PolicyKind k : {PolicyKind::Static, PolicyKind::Greedy, PolicyKind::Hysteresis}) {
    const auto parsed = parse_policy(policy_name(k));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, k);
  }
  EXPECT_FALSE(parse_policy("bogus").has_value());

  using apps::harness::parse_mode;
  EXPECT_EQ(parse_mode("adaptive"), Mode::Adaptive);
  EXPECT_EQ(parse_mode("base"), Mode::Original);
  EXPECT_EQ(parse_mode("replicated"), Mode::Optimized);
  EXPECT_EQ(parse_mode("broadcast"), Mode::BroadcastSeq);
  EXPECT_FALSE(parse_mode("bogus").has_value());
  EXPECT_EQ(apps::harness::parse_flow("windowed"), rse::FlowControl::Windowed);
  EXPECT_FALSE(apps::harness::parse_flow("bogus").has_value());
}

TEST(Policy, DecisionSequenceIsDeterministicAcrossReruns) {
  const auto cfg = small_ilink();
  const RunReport a = run_ilink(opts(Mode::Adaptive, 8), cfg);
  const RunReport b = run_ilink(opts(Mode::Adaptive, 8), cfg);
  expect_same_choices(a.decisions, b.decisions, "rerun");
  EXPECT_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.checksum, b.checksum);
  EXPECT_EQ(a.policy_switches, b.policy_switches);
}

// The acceptance pin: same seed + same telemetry => identical per-section
// decision sequences across every transport backend, including shard counts
// S in {1, 4}.  The decision function consumes only protocol-level counts,
// so the wire model underneath must not leak into the choices.
TEST(Policy, DecisionSequenceIsTransportInvariant) {
  const auto cfg = small_ilink();

  auto run_with = [&](net::TransportKind kind, std::size_t shards) {
    RunOptions o = opts(Mode::Adaptive, 8);
    o.net.transport = kind;
    o.net.hub_shards = shards;
    return run_ilink(o, cfg);
  };

  const RunReport hub = run_with(net::TransportKind::HubSwitch, 1);
  ASSERT_FALSE(hub.decisions.empty());

  const RunReport sharded1 = run_with(net::TransportKind::ShardedHub, 1);
  const RunReport sharded4 = run_with(net::TransportKind::ShardedHub, 4);
  const RunReport tree = run_with(net::TransportKind::TreeMulticast, 1);

  expect_same_choices(hub.decisions, sharded1.decisions, "sharded S=1");
  expect_same_choices(hub.decisions, sharded4.decisions, "sharded S=4");
  expect_same_choices(hub.decisions, tree.decisions, "tree-multicast");
  EXPECT_EQ(hub.checksum, sharded1.checksum);
  EXPECT_EQ(hub.checksum, sharded4.checksum);
  EXPECT_EQ(hub.checksum, tree.checksum);
}

// Every node's policy log -- rebuilt from the PolicySectionOpen multicasts
// the master sends at each entry -- must agree with the master's decision
// sequence: the cluster-wide strategy agreement the section-open message
// exists for.
TEST(Policy, AllNodesAgreeOnTheDecisionSequence) {
  constexpr std::size_t kNodes = 6;
  tmk::TmkConfig tc;
  tc.heap_bytes = 24u << 20;
  net::NetConfig nc;
  tmk::Cluster cl(tc, nc, kNodes);
  RseController rse(cl, FlowControl::Chained);
  PolicyEngine policy(cl);
  ompnow::Team team(cl, ompnow::SeqMode::Adaptive, &rse, &policy);

  const auto cfg = small_ilink();
  apps::ilink::IlinkWorld w = apps::ilink::setup_world(cl, cfg);
  cl.run([&](tmk::NodeRuntime&) { (void)apps::ilink::run_program(cl, team, w, cfg); });

  ASSERT_GT(policy.sections(), 0u);
  for (net::NodeId n = 1; n < kNodes; ++n) {
    expect_same_choices(sorted_by_seq(policy.decisions()), sorted_by_seq(policy.node_log(n)),
                        "slave log");
  }
}

TEST(Policy, StaticPolicyMatchesOptimizedPlusOneOpenFramePerSection) {
  // REPSEQ_POLICY=static + static_strategy=Replicated must execute exactly
  // like Mode::Optimized; the only extra traffic is the one section-open
  // multicast frame per section (HubSwitch: one frame per send).
  apps::bh::BhConfig cfg;
  cfg.bodies = 512;
  cfg.steps = 2;
  RunOptions stat = opts(Mode::Adaptive, 4, PolicyKind::Static);
  stat.policy.static_strategy = SectionStrategy::Replicated;
  const RunReport a = run_barnes_hut(stat, cfg);
  const RunReport o = run_barnes_hut(opts(Mode::Optimized, 4), cfg);

  EXPECT_EQ(a.checksum, o.checksum);
  EXPECT_EQ(a.sections_by_strategy[static_cast<std::size_t>(SectionStrategy::Replicated)],
            a.sections);
  EXPECT_EQ(a.policy_switches, 0u);
  EXPECT_EQ(a.total_msgs, o.total_msgs + a.sections);
}

TEST(Policy, MixedStrategiesPreserveResultsAcrossFlowControls) {
  // The adaptive engine interleaves master-only, replicated, and broadcast
  // sections within one run; results must stay bit-identical to the
  // sequential baseline under every RSE flow-control variant.
  const auto cfg = small_ilink();
  const RunReport seq = run_ilink(opts(Mode::Sequential, 1), cfg);
  for (FlowControl f : {FlowControl::Chained, FlowControl::Windowed}) {
    RunOptions o = opts(Mode::Adaptive, 6, PolicyKind::Greedy);
    o.flow = f;
    const RunReport r = run_ilink(o, cfg);
    EXPECT_EQ(r.checksum, seq.checksum) << apps::harness::flow_name(f);
    EXPECT_EQ(r.aux, seq.aux) << apps::harness::flow_name(f);
  }
}

TEST(Policy, BootstrapProbesEverySiteThenSettles) {
  const auto cfg = small_ilink();
  const RunReport r = run_ilink(opts(Mode::Adaptive, 8), cfg);
  ASSERT_GT(r.sections, 0u);

  // First occurrence of every site is the BroadcastAfter measurement probe.
  std::vector<std::uint32_t> seen;
  for (const Decision& d : r.decisions) {
    if (std::find(seen.begin(), seen.end(), d.site) == seen.end()) {
      seen.push_back(d.site);
      EXPECT_EQ(d.strategy, SectionStrategy::BroadcastAfter)
          << "site " << d.site << " did not bootstrap with the broadcast probe";
      EXPECT_FALSE(d.switched);
    }
  }
  EXPECT_GE(seen.size(), 2u);  // ilink stamps distinct sites

  // Decisions settle rather than flap: a handful of switches overall and a
  // stable tail (the hysteresis margin exists exactly for this).
  EXPECT_LE(r.policy_switches, r.sections / 4);
  const std::size_t tail = r.decisions.size() - r.decisions.size() / 4;
  for (std::size_t i = tail; i < r.decisions.size(); ++i) {
    EXPECT_FALSE(r.decisions[i].switched)
        << "late switch at section " << r.decisions[i].seq;
  }
}

// The headline acceptance claim, at the paper's 32-node scale: adaptive
// lands within 5% of the best static mode for each application, strictly
// beats the worst, reproduces the exact checksums, and the two applications
// settle on different strategies for at least one section.
TEST(Policy, AdaptiveCompetitiveWithBestStaticAt32Nodes) {
  apps::bh::BhConfig bh;
  bh.bodies = 2048;
  bh.steps = 8;
  const RunReport bh_orig = run_barnes_hut(opts(Mode::Original, 32), bh);
  const RunReport bh_opt = run_barnes_hut(opts(Mode::Optimized, 32), bh);
  const RunReport bh_bc = run_barnes_hut(opts(Mode::BroadcastSeq, 32), bh);
  const RunReport bh_ad = run_barnes_hut(opts(Mode::Adaptive, 32), bh);

  apps::ilink::IlinkConfig il;
  il.iterations = 3;
  const RunReport il_orig = run_ilink(opts(Mode::Original, 32), il);
  const RunReport il_opt = run_ilink(opts(Mode::Optimized, 32), il);
  const RunReport il_bc = run_ilink(opts(Mode::BroadcastSeq, 32), il);
  const RunReport il_ad = run_ilink(opts(Mode::Adaptive, 32), il);

  auto check = [](const RunReport& ad, const RunReport& a, const RunReport& b,
                  const RunReport& c, const char* app) {
    const double best = std::min({a.total_s, b.total_s, c.total_s});
    const double worst = std::max({a.total_s, b.total_s, c.total_s});
    EXPECT_LE(ad.total_s, best * 1.05)
        << app << ": adaptive " << ad.total_s << " vs best static " << best;
    EXPECT_LT(ad.total_s, worst) << app;
    EXPECT_EQ(ad.checksum, a.checksum) << app;
    EXPECT_EQ(ad.checksum, b.checksum) << app;
    EXPECT_EQ(ad.checksum, c.checksum) << app;
  };
  check(bh_ad, bh_orig, bh_opt, bh_bc, "barnes-hut");
  check(il_ad, il_orig, il_opt, il_bc, "ilink");

  // The per-app decision logs must disagree somewhere: Barnes-Hut's
  // tree-build settles on replication while Ilink's sections lean on the
  // broadcast alternative (or vice versa) -- the reason a per-section
  // policy beats any single static mode.
  auto settled = [](const RunReport& r) {
    return r.decisions.back().strategy;
  };
  EXPECT_NE(settled(bh_ad), settled(il_ad))
      << "both applications settled on " << strategy_name(settled(bh_ad));
}

}  // namespace
}  // namespace repseq::rse::policy
