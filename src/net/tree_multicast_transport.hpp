// Software multicast over the switch: the sender is the root of a k-ary
// forwarding tree; every interior node re-transmits the frame to each of its
// children as an ordinary switched unicast (uplink serialization + per-hop
// latency).  This is the hand-inserted tree broadcast of paper Section 6.1.2
// expressed as a transport, so any protocol can run over it.
//
// Tree layout: positions are assigned breadth-first (heap order), position 0
// is the root, and position p maps to node (root + p) mod N.  Without a
// coalescing window the root is the sender -- every sender gets the same
// tree shape over a rotated node ordering, so no fixed node is always a
// leaf.
//
// Forwarding is event-driven: an interior node's transmissions to its
// children are scheduled from the event at which its own copy of the frame
// arrives, so its uplink serializes forwards with whatever *other* traffic
// it sends, in true arrival order.  Frame accounting is therefore deferred:
// each hop reports itself through the AccountFn at the instant it is
// committed, and a hop downstream of a lost frame is never charged.
//
// Piggybacking (NetConfig::batch_window > 0): a node with several group
// forwards queued on the same (parent, child) edge coalesces them into ONE
// combined wire frame -- the event-driven per-hop scheduling makes the set
// of concurrent in-flight forwards visible exactly here.  Two design points
// make the coalescing actually bite on round traffic:
//
//   * Group-affine trees.  Per-sender rotation minimizes edge sharing (a
//     directed pair (a, b) is an edge of exactly two of the N rotated
//     trees), capping piggybacking's merge factor near 1.  With a window,
//     every multicast of a group instead rides ONE tree, rooted at the
//     group's first sender (in round protocols, the section owner whose
//     write notices dominate the group's traffic) -- all of a round's
//     sends traverse the same N-1 edges and pile up in the same queues,
//     and the dominant sender pays no injection at all.  A sender that is
//     not the root injects its frame with one
//     ordinary switched unicast to the root (charged to the flight like
//     any hop; a lost injection prunes the descent).  The sender's own
//     subtree never waits for -- or pays -- that round trip: holding the
//     payload natively, the sender forwards its children at send time and
//     the descent wave flows around its position without transmitting the
//     edge into it.
//
//   * First-frame-immediate windows.  An edge with no window open
//     transmits a lone frame at once and opens a window; frames arriving
//     while the window is open queue and leave as one combined frame at
//     flush, which re-opens the window while traffic keeps coming.  A
//     delay-everything window would self-defeat on chained rounds: each
//     chain step would wait a full window per hop, so consecutive acks
//     would always arrive a window apart and never merge.  Immediate
//     first frames keep the chain pipelined; only the pile-up pays delay.
//
// Charging a combined frame uses the carrier/rider split of transport.hpp
// (riders pay their payload, the carrier pays the rest), each routed to its
// own flight's AccountFn; each constituent still draws its own loss
// decision and continues its own downstream forwarding, so a lost rider
// prunes only that flight's subtree.  Window 0 keeps the per-sender
// rotated trees and the immediate per-flight hop path, frame for frame.
//
// Concurrency domains: coalescing pays only if flights overlap, and the
// tree -- having no shared medium at all -- never needed the single-round
// serialization that modeling it as one "virtual hub" imposed.  With a
// nonzero window it reports NetConfig::hub_shards independent serialization
// domains (like the sharded hub), so the RSE layer runs rounds on disjoint
// page groups concurrently and their frames meet in the piggyback queues.
// Forwarding-uplink busy is attributed to the carrier flight's domain.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/transport.hpp"
#include "util/pool_ptr.hpp"

namespace repseq::net {

class TreeMulticastTransport final : public SwitchedTransport {
 public:
  TreeMulticastTransport(sim::Engine& eng, const NetConfig& cfg,
                         std::vector<std::unique_ptr<Nic>>& nics)
      : SwitchedTransport(eng, cfg, nics) {
    busy_.resize(shard_count());
  }

  void multicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
                 const AccountFn& account) override;

  /// Interior hops run as scheduled events after multicast() returns.
  [[nodiscard]] bool defers_delivery() const override { return true; }

  /// The root transmits only to its own children.
  [[nodiscard]] std::size_t sender_frames(std::size_t receivers) const override {
    return std::min(receivers, cfg_.mcast_tree_fanout > 0 ? cfg_.mcast_tree_fanout : 1);
  }

  /// With a coalescing window the tree exposes hub_shards concurrency
  /// domains (see the header comment); without one it is the single
  /// domain it always was.
  [[nodiscard]] std::size_t shard_count() const override {
    return cfg_.batch_window.ns > 0 ? std::max<std::size_t>(1, cfg_.hub_shards) : 1;
  }

  /// Aggregate uplink transmit time spent forwarding multicast frames (all
  /// tree edges, root and interior alike), attributed to the carrier
  /// flight's domain.  The tree has no shared medium; summed over domains
  /// this is the number that must be conserved frame-for-frame against the
  /// single-hub model's busy time in the uncontended case.
  [[nodiscard]] sim::SimDuration shard_busy(std::size_t s) const override {
    return s < busy_.size() ? busy_[s] : sim::SimDuration{};
  }

 private:
  /// One in-flight group send: the callbacks and frame geometry shared by
  /// every forwarding event of its propagation (kept alive by the events).
  struct Flight {
    NodeId src;
    NodeId root;  // == src without a window; the group's tree root with one
    std::size_t nodes;
    std::size_t fanout;
    std::size_t wire_bytes;
    std::size_t payload_bytes;
    std::size_t shard;  // busy-attribution domain of this flight's group
    DeliverFn deliver;
    AccountFn account;

    [[nodiscard]] NodeId node_at(std::size_t pos) const {
      return static_cast<NodeId>((root + pos) % nodes);
    }
  };

  /// One flight's hop on an edge awaiting that edge's window flush.
  struct PendingHop {
    util::PoolPtr<const Flight> fl;
    std::size_t child_pos;
  };

  /// Per-(parent, child) piggyback state: hops queued behind the currently
  /// open window, if any.
  struct Edge {
    std::vector<PendingHop> q;
    bool window_open = false;
  };

  /// Transmits the frame from tree position `pos` (whose node holds a
  /// complete copy as of the current virtual instant) to each of its
  /// children, scheduling each child's own forwarding at its arrival --
  /// immediately when the window is zero, else via the edge's piggyback
  /// queue.
  void forward_children(const util::PoolPtr<const Flight>& fl, std::size_t pos);

  /// First-frame-immediate piggybacking: transmits at once if the edge has
  /// no window open (and opens one); queues behind the open window
  /// otherwise.
  void enqueue_hop(NodeId parent, NodeId child, const util::PoolPtr<const Flight>& fl,
                   std::size_t child_pos);

  /// Window-close event: transmits one combined frame carrying everything
  /// queued (re-opening the window), or just closes an idle window.
  void flush_edge(std::uint64_t key);

  /// Puts one wire frame carrying `hops` on the (parent, child) edge:
  /// carrier/rider accounting, per-constituent loss draw, surviving
  /// constituents resume their own forwarding at the child.
  void transmit_hops(NodeId parent, NodeId child, const std::vector<PendingHop>& hops);

  static std::uint64_t edge_key(NodeId parent, NodeId child) {
    return (std::uint64_t{parent} << 32) | child;
  }

  /// Per-domain forwarding-uplink busy (size shard_count()).
  std::vector<sim::SimDuration> busy_;
  std::unordered_map<std::uint64_t, Edge> edges_;
  /// Sticky group-affine roots: group -> its first sender (window > 0).
  std::unordered_map<std::uint32_t, NodeId> roots_;
};

}  // namespace repseq::net
