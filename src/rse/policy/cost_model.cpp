#include "rse/policy/cost_model.hpp"

namespace repseq::rse::policy {

CostModel::CostModel(const tmk::TmkConfig& tmk, const net::NetConfig& net, std::size_t nodes)
    : n_(nodes) {
  const double nd = static_cast<double>(n_);
  const double hub = net.hub_bytes_per_sec;
  link_rate_ = net.link_bytes_per_sec;
  page_wire_ = static_cast<double>(net.wire_bytes(tmk.page_bytes));
  c_msg_ = (net.send_overhead + net.recv_overhead).seconds();
  c_page_ = page_wire_ / hub + net.hub_latency.seconds() +
            static_cast<double>(tmk.page_bytes) *
                (tmk.diff_create_ns_per_byte + tmk.diff_apply_ns_per_byte) * 1e-9;
  c_ack_ = net.send_overhead.seconds() + static_cast<double>(net.wire_bytes(20)) / hub;
  rt_ = 2.0 * c_msg_ + c_page_;
  round_ = 2.0 * c_msg_ + nd * c_ack_ + c_page_;
  // The replicated bracket exchanges roughly four messages per node: the
  // fork/join pair, the entry and exit barriers, and the valid-notice
  // gather + table multicast (Sections 5.2 and 5.4.1).
  repl_fixed_ = 4.0 * nd * c_msg_;
}

double CostModel::after_cost(double msgs, double bytes) const {
  return msgs * c_msg_ + bytes / link_rate_;
}

double CostModel::cost(SectionStrategy s, const SectionProfile& p) const {
  const double nd = static_cast<double>(n_);
  const double w = p.pages_written;
  const double f = p.faults_in;
  const auto i = static_cast<std::size_t>(s);
  const bool measured = p.tried[i] > 0;
  switch (s) {
    case SectionStrategy::MasterOnly: {
      // Post-section reads of the write set converge on the master (the
      // Section 3 queue).  Until MasterOnly has actually run for this site,
      // assume the pessimistic full fan-out: every other node faults on
      // every section-written page.  The engine therefore only leaves a
      // contention-eliminating strategy when the write set is demonstrably
      // small -- mispredicting toward replication is cheap, the reverse is
      // not.
      const double after = measured ? after_cost(p.after_msgs[i], p.after_bytes[i])
                                    : after_cost(w * (nd - 1.0), w * (nd - 1.0) * page_wire_);
      return f * rt_ + after;
    }
    case SectionStrategy::Replicated: {
      // Fixed per-section bracket plus one flow-controlled multicast round
      // per stale page; the write set itself costs nothing on the wire
      // (every node computes it locally).  Replication removes the
      // post-section faults on section-written pages by construction, so
      // the unmeasured default is zero.
      const double after = measured ? after_cost(p.after_msgs[i], p.after_bytes[i]) : 0.0;
      return repl_fixed_ + f * round_ + after;
    }
    case SectionStrategy::BroadcastAfter: {
      // Master-only faults on stale reads, then the whole write set rides
      // the multicast medium once, acknowledged by every node.
      const double after = measured ? after_cost(p.after_msgs[i], p.after_bytes[i]) : 0.0;
      return f * rt_ + w * c_page_ + nd * c_msg_ + after;
    }
  }
  return 0.0;
}

}  // namespace repseq::rse::policy
