// Micro-benchmarks (google-benchmark): simulated network throughput --
// host-side cost of pushing messages through the switch/hub models, which
// bounds how fast the full-system simulations run.
#include <benchmark/benchmark.h>

#include "net/network.hpp"
#include "sim/engine.hpp"

namespace {

using namespace repseq;

void BM_UnicastThroughSwitch(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine eng;
    net::Network nw(eng, net::NetConfig{}, 4);
    eng.spawn("rx", [&] {
      for (int i = 0; i < 100; ++i) (void)nw.nic(1).inbox().pop();
    });
    eng.spawn("tx", [&] {
      for (int i = 0; i < 100; ++i) {
        net::Message m;
        m.src = 0;
        m.dst = 1;
        m.payload_bytes = 1024;
        nw.unicast(std::move(m));
      }
    });
    eng.run();
    benchmark::DoNotOptimize(nw.messages_sent());
  }
  state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_UnicastThroughSwitch);

void BM_MulticastThroughHub(benchmark::State& state) {
  const auto nodes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Engine eng;
    net::Network nw(eng, net::NetConfig{}, nodes);
    for (net::NodeId n = 1; n < nodes; ++n) {
      eng.spawn("rx", [&nw, n] {
        for (int i = 0; i < 20; ++i) (void)nw.nic(n).inbox().pop();
      });
    }
    eng.spawn("tx", [&] {
      for (int i = 0; i < 20; ++i) {
        net::Message m;
        m.src = 0;
        m.payload_bytes = 1024;
        nw.multicast(std::move(m));
      }
    });
    eng.run();
    benchmark::DoNotOptimize(nw.deliveries());
  }
  state.SetItemsProcessed(state.iterations() * 20 * static_cast<std::int64_t>(nodes - 1));
}
BENCHMARK(BM_MulticastThroughHub)->Arg(4)->Arg(16)->Arg(32);

}  // namespace

BENCHMARK_MAIN();
