// Ilink demo: the genetic-linkage workload on a simulated 16-node cluster.
// Shows the conditional parallelization (`if` clause) taking both paths and
// the severe genarray-pool contention of the base system.
//
// Build & run:   ./build/examples/ilink_demo
#include <cstdio>

#include "apps/harness/run_modes.hpp"

using namespace repseq;
using apps::harness::Mode;

int main() {
  apps::ilink::IlinkConfig cfg;
  cfg.families = 3;
  cfg.children = 3;
  cfg.genotypes = 2048;
  cfg.iterations = 4;

  std::printf("Ilink-style linkage analysis: %d families, %d genotypes, %d iterations,\n"
              "16 simulated nodes\n\n",
              cfg.families, cfg.genotypes, cfg.iterations);
  std::printf("%-13s %10s %9s %9s %12s %14s\n", "mode", "total(s)", "seq(s)", "par(s)",
              "par KB", "par resp(ms)");

  double likelihood = 0.0;
  for (Mode mode : {Mode::Sequential, Mode::Original, Mode::Optimized}) {
    apps::harness::RunOptions opt;
    opt.mode = mode;
    opt.nodes = 16;
    opt.tmk.heap_bytes = 16u << 20;
    const auto r = apps::harness::run_ilink(opt, cfg);
    if (mode == Mode::Sequential) {
      likelihood = r.checksum;
    } else if (r.checksum != likelihood) {
      std::printf("ERROR: likelihood mismatch in %s mode\n", apps::harness::mode_name(mode));
      return 1;
    }
    std::printf("%-13s %10.2f %9.2f %9.2f %12llu %14.2f\n", apps::harness::mode_name(mode),
                r.total_s, r.seq_s, r.par_s, static_cast<unsigned long long>(r.par_kb),
                r.par_response_ms);
  }

  std::printf("\nExact likelihood agreement across modes (%.0f): the synthetic kernel\n"
              "stays integer-valued in doubles, so any consistency bug breaks equality.\n",
              likelihood);
  return 0;
}
