// The instrumented shared-memory access layer.
//
// Real TreadMarks detects accesses through VM page protection; a compiled
// OpenMP/NOW binary simply loads and stores.  Here every access goes through
// a typed accessor that (a) runs the protocol's read/write barrier for the
// touched page range and (b) reads/writes the calling node's local backing
// copy.  `Sh*` types are value-semantic handles holding only a GAddr, so
// they can be captured by parallel-region closures exactly like the shared
// addresses the translator passes at fork time (paper Section 2.3).
#pragma once

#include <cstddef>
#include <type_traits>

#include "tmk/gaddr.hpp"
#include "tmk/runtime.hpp"

namespace repseq::tmk {

/// A single shared variable of trivially-copyable type T.
template <typename T>
class ShVar {
  static_assert(std::is_trivially_copyable_v<T>, "shared data must be trivially copyable");

 public:
  ShVar() = default;
  explicit ShVar(GAddr addr) : addr_(addr) {}

  [[nodiscard]] GAddr addr() const { return addr_; }

  [[nodiscard]] T load() const {
    NodeRuntime& rt = Cluster::current();
    rt.read_barrier(addr_, sizeof(T));
    return *rt.local<const T>(addr_);
  }

  void store(const T& v) const {
    NodeRuntime& rt = Cluster::current();
    rt.write_barrier(addr_, sizeof(T));
    *rt.local<T>(addr_) = v;
  }

  /// Allocates a shared variable on the cluster heap.
  static ShVar alloc(Cluster& cl) { return ShVar(cl.heap().alloc(sizeof(T), alignof(T))); }

 private:
  GAddr addr_{};
};

/// A contiguous shared array of trivially-copyable T.
template <typename T>
class ShArray {
  static_assert(std::is_trivially_copyable_v<T>, "shared data must be trivially copyable");

 public:
  ShArray() = default;
  ShArray(GAddr base, std::size_t count) : base_(base), count_(count) {}

  [[nodiscard]] GAddr addr_of(std::size_t i) const { return base_ + i * sizeof(T); }
  [[nodiscard]] GAddr base() const { return base_; }
  [[nodiscard]] std::size_t size() const { return count_; }

  [[nodiscard]] T load(std::size_t i) const {
    NodeRuntime& rt = Cluster::current();
    rt.read_barrier(addr_of(i), sizeof(T));
    return *rt.local<const T>(addr_of(i));
  }

  void store(std::size_t i, const T& v) const {
    NodeRuntime& rt = Cluster::current();
    rt.write_barrier(addr_of(i), sizeof(T));
    *rt.local<T>(addr_of(i)) = v;
  }

  /// Reads a whole-struct element once (one barrier for the element span).
  [[nodiscard]] T get(std::size_t i) const { return load(i); }

  /// Field-granular access for struct elements: read one member.
  template <typename F, typename C = T>
    requires std::is_class_v<C> && std::is_same_v<C, T>
  [[nodiscard]] F get_field(std::size_t i, F C::* member) const {
    NodeRuntime& rt = Cluster::current();
    const GAddr fa = field_addr(i, member);
    rt.read_barrier(fa, sizeof(F));
    return *rt.local<const F>(fa);
  }

  /// Field-granular access: write one member.
  template <typename F, typename C = T>
    requires std::is_class_v<C> && std::is_same_v<C, T>
  void set_field(std::size_t i, F C::* member, const F& v) const {
    NodeRuntime& rt = Cluster::current();
    const GAddr fa = field_addr(i, member);
    rt.write_barrier(fa, sizeof(F));
    *rt.local<F>(fa) = v;
  }

  /// Allocates a shared array on the cluster heap (page-aligned when asked,
  /// the usual idiom to avoid false sharing between unrelated structures).
  static ShArray alloc(Cluster& cl, std::size_t count, bool page_aligned = false) {
    const std::size_t align = page_aligned ? cl.config().page_bytes : alignof(T);
    return ShArray(cl.heap().alloc(count * sizeof(T), align), count);
  }

 private:
  template <typename F, typename C = T>
    requires std::is_class_v<C> && std::is_same_v<C, T>
  [[nodiscard]] GAddr field_addr(std::size_t i, F C::* member) const {
    // Member-pointer offset computed against a local dummy: portable and
    // constant-folded by any optimizer.
    alignas(C) static const C probe{};
    const auto off = reinterpret_cast<const char*>(&(probe.*member)) -
                     reinterpret_cast<const char*>(&probe);
    return addr_of(i) + static_cast<std::uint64_t>(off);
  }

  GAddr base_{};
  std::size_t count_ = 0;
};

/// A shared struct instance: field-granular barriers via member pointers.
template <typename T>
class ShObj {
  static_assert(std::is_trivially_copyable_v<T>, "shared data must be trivially copyable");

 public:
  ShObj() = default;
  explicit ShObj(GAddr addr) : arr_(addr, 1) {}

  [[nodiscard]] GAddr addr() const { return arr_.base(); }

  template <typename F>
  [[nodiscard]] F get(F T::* member) const {
    return arr_.get_field(0, member);
  }
  template <typename F>
  void set(F T::* member, const F& v) const {
    arr_.set_field(0, member, v);
  }
  [[nodiscard]] T get_all() const { return arr_.get(0); }

  static ShObj alloc(Cluster& cl) { return ShObj(cl.heap().alloc(sizeof(T), alignof(T))); }

 private:
  ShArray<T> arr_;
};

}  // namespace repseq::tmk
