#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace repseq::obs {

std::uint8_t g_cat_mask = 0;

const char* cat_name(Cat c) {
  switch (c) {
    case Cat::Sim:
      return "sim";
    case Cat::Net:
      return "net";
    case Cat::Tmk:
      return "tmk";
    case Cat::Rse:
      return "rse";
  }
  return "?";
}

Tracer& Tracer::instance() {
  static Tracer t;
  return t;
}

namespace {

std::uint8_t parse_filter(const char* filter) {
  if (filter == nullptr || *filter == '\0') return kAllCats;
  std::uint8_t mask = 0;
  std::string tok;
  const char* p = filter;
  for (;;) {
    if (*p == ',' || *p == '\0') {
      if (tok == "sim") {
        mask |= static_cast<std::uint8_t>(Cat::Sim);
      } else if (tok == "net") {
        mask |= static_cast<std::uint8_t>(Cat::Net);
      } else if (tok == "tmk") {
        mask |= static_cast<std::uint8_t>(Cat::Tmk);
      } else if (tok == "rse") {
        mask |= static_cast<std::uint8_t>(Cat::Rse);
      } else if (tok == "all") {
        mask |= kAllCats;
      } else {
        // A silently-misspelled filter would produce a trace that looks
        // fine and misses the layer under study: fail loud like every
        // other REPSEQ_* axis.
        std::fprintf(stderr,
                     "error: unknown REPSEQ_TRACE_FILTER category '%s'"
                     " (accepted: sim|net|tmk|rse|all, comma-separated)\n",
                     tok.c_str());
        std::exit(2);
      }
      tok.clear();
      if (*p == '\0') break;
    } else {
      tok.push_back(*p);
    }
    ++p;
  }
  return mask;
}

/// Prints a numeric arg value: integers exactly, everything else compactly.
void print_value(std::FILE* f, double v) {
  const double r = static_cast<double>(static_cast<std::int64_t>(v));
  if (r == v && v >= -9.0e15 && v <= 9.0e15) {
    std::fprintf(f, "%lld", static_cast<long long>(v));
  } else {
    std::fprintf(f, "%.6g", v);
  }
}

/// JSON string escape for the few dynamic names (fiber names, file paths
/// never land in the output; process/track names are benign identifiers,
/// but escape defensively anyway).
void print_string(std::FILE* f, const char* s) {
  std::fputc('"', f);
  for (const char* p = s; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      std::fputc('\\', f);
      std::fputc(c, f);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      std::fprintf(f, "\\u%04x", static_cast<unsigned char>(c));
    } else {
      std::fputc(c, f);
    }
  }
  std::fputc('"', f);
}

}  // namespace

void Tracer::configure_from_env() {
  const char* path = std::getenv("REPSEQ_TRACE");
  if (path == nullptr || *path == '\0') {
    configure("", 0);
    return;
  }
  configure(path, parse_filter(std::getenv("REPSEQ_TRACE_FILTER")));
}

void Tracer::configure(std::string path, std::uint8_t mask) {
  path_ = std::move(path);
  rings_.clear();
  process_names_.clear();
  next_seq_ = 0;
  slabs_dropped_ = 0;
  g_cat_mask = path_.empty() ? 0 : static_cast<std::uint8_t>(mask & kAllCats);
}

const char* Tracer::intern(const std::string& s) {
  return interned_.insert(s).first->c_str();
}

void Tracer::set_process_name(std::int32_t pid, const std::string& name) {
  process_names_[pid] = name;
}

Tracer::Event& Tracer::push(Cat cat, char ph, sim::SimTime t, std::int32_t pid,
                            const char* track, const char* name,
                            std::initializer_list<Arg> args) {
  Ring& ring = rings_[pid];
  if (ring.slabs.empty() || ring.slabs.back()->size() == kSlabEvents) {
    if (ring.slabs.size() == kMaxSlabsPerProcess) {
      // Ring overflow: evict the oldest slab whole (the write-side nesting
      // repair drops the span ends this orphans) and recycle its storage.
      auto slab = std::move(ring.slabs.front());
      ring.slabs.erase(ring.slabs.begin());
      slab->clear();
      ring.slabs.push_back(std::move(slab));
      ++slabs_dropped_;
    } else {
      auto slab = std::make_unique<std::vector<Event>>();
      slab->reserve(kSlabEvents);
      ring.slabs.push_back(std::move(slab));
    }
  }
  ring.slabs.back()->push_back(Event{});
  Event& e = ring.slabs.back()->back();
  e.ts_ns = t.ns;
  e.seq = next_seq_++;
  e.pid = pid;
  e.ph = ph;
  e.track = track;
  e.name = name;
  e.cat_bit = static_cast<std::uint8_t>(cat);
  e.nargs = 0;
  for (const Arg& a : args) {
    if (e.nargs == kMaxArgs) break;
    e.keys[e.nargs] = a.key;
    e.vals[e.nargs] = a.value;
    ++e.nargs;
  }
  return e;
}

void Tracer::begin(Cat cat, sim::SimTime t, std::int32_t pid, const char* track,
                   const char* name, std::initializer_list<Arg> args) {
  push(cat, 'B', t, pid, track, name, args);
}

void Tracer::end(Cat cat, sim::SimTime t, std::int32_t pid, const char* track,
                 std::initializer_list<Arg> args) {
  push(cat, 'E', t, pid, track, nullptr, args);
}

void Tracer::instant(Cat cat, sim::SimTime t, std::int32_t pid, const char* track,
                     const char* name, std::initializer_list<Arg> args) {
  push(cat, 'i', t, pid, track, name, args);
}

void Tracer::counter(Cat cat, sim::SimTime t, std::int32_t pid, const char* name,
                     double value) {
  push(cat, 'C', t, pid, name, name, {Arg{"value", value}});
}

std::size_t Tracer::event_count() const {
  std::size_t n = 0;
  for (const auto& [pid, ring] : rings_) {
    for (const auto& slab : ring.slabs) n += slab->size();
  }
  return n;
}

std::size_t Tracer::write() {
  if (path_.empty()) return 0;

  // Merge every process ring and restore the global record order: events
  // were recorded in (virtual time, seq) order per ring, and seq is global,
  // so a stable sort on (ts, seq) reproduces exactly the order the single
  // simulation thread emitted them in.
  std::vector<const Event*> all;
  all.reserve(event_count());
  for (const auto& [pid, ring] : rings_) {
    for (const auto& slab : ring.slabs) {
      for (const Event& e : *slab) all.push_back(&e);
    }
  }
  std::sort(all.begin(), all.end(), [](const Event* a, const Event* b) {
    return a->ts_ns != b->ts_ns ? a->ts_ns < b->ts_ns : a->seq < b->seq;
  });

  // Nesting repair per (pid, track): ring eviction can drop a span's B
  // while keeping its E (drop the orphan E), and an exception can unwind
  // past a span's end (close it at the trace's final instant).  The
  // validator then holds unconditionally.
  struct TrackState {
    std::vector<const Event*> open;  // B events awaiting their E
  };
  std::map<std::pair<std::int32_t, const char*>, TrackState> tracks;
  std::vector<char> keep(all.size(), 1);
  for (std::size_t i = 0; i < all.size(); ++i) {
    const Event& e = *all[i];
    if (e.ph == 'B') {
      tracks[{e.pid, e.track}].open.push_back(&e);
    } else if (e.ph == 'E') {
      auto& open = tracks[{e.pid, e.track}].open;
      if (open.empty()) {
        keep[i] = 0;  // orphaned by eviction
      } else {
        open.pop_back();
      }
    }
  }

  std::FILE* f = std::fopen(path_.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "error: cannot open trace file '%s'\n", path_.c_str());
    std::exit(2);
  }
  std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
  bool first = true;
  const auto sep = [&] {
    if (!first) std::fputs(",\n", f);
    first = false;
  };

  // Thread ids per (pid, track), in first-appearance order; emitted as
  // thread_name metadata so Perfetto labels the tracks.
  std::map<std::pair<std::int32_t, const char*>, int> tids;
  std::map<std::int32_t, int> next_tid;
  const auto tid_of = [&](std::int32_t pid, const char* track) {
    auto [it, inserted] = tids.try_emplace({pid, track}, 0);
    if (inserted) it->second = next_tid[pid]++;
    return it->second;
  };

  for (const auto& [pid, name] : process_names_) {
    sep();
    std::fprintf(f,
                 "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,"
                 "\"args\":{\"name\":",
                 pid);
    print_string(f, name.c_str());
    std::fputs("}}", f);
    std::fprintf(f,
                 ",\n{\"name\":\"process_sort_index\",\"ph\":\"M\",\"pid\":%d,"
                 "\"tid\":0,\"args\":{\"sort_index\":%d}}",
                 pid, pid);
  }

  // First pass over kept events assigns tids in deterministic order and
  // lets the thread_name metadata precede the events that use it.
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (keep[i]) tid_of(all[i]->pid, all[i]->track);
  }
  for (const auto& [key, tid] : tids) {
    sep();
    std::fprintf(f,
                 "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,"
                 "\"args\":{\"name\":",
                 key.first, tid);
    print_string(f, key.second);
    std::fputs("}}", f);
  }

  std::int64_t last_ts = 0;
  const auto emit = [&](const Event& e, char ph) {
    sep();
    std::fputs("{\"name\":", f);
    print_string(f, e.name != nullptr ? e.name : "span");
    std::fprintf(f, ",\"cat\":\"%s\",\"ph\":\"%c\",\"ts\":%.3f,\"pid\":%d,\"tid\":%d",
                 cat_name(static_cast<Cat>(e.cat_bit)), ph,
                 static_cast<double>(e.ts_ns) / 1e3, e.pid, tid_of(e.pid, e.track));
    if (ph == 'i') std::fputs(",\"s\":\"t\"", f);
    if (e.nargs > 0) {
      std::fputs(",\"args\":{", f);
      for (std::uint8_t a = 0; a < e.nargs; ++a) {
        if (a > 0) std::fputc(',', f);
        print_string(f, e.keys[a]);
        std::fputc(':', f);
        print_value(f, e.vals[a]);
      }
      std::fputc('}', f);
    }
    std::fputc('}', f);
  };

  std::size_t written = 0;
  // E events inherit their B's name so the validator can match pairs.
  std::map<std::pair<std::int32_t, const char*>, std::vector<const Event*>> open_b;
  for (std::size_t i = 0; i < all.size(); ++i) {
    if (!keep[i]) continue;
    const Event& e = *all[i];
    last_ts = e.ts_ns;
    if (e.ph == 'B') {
      open_b[{e.pid, e.track}].push_back(&e);
      emit(e, 'B');
    } else if (e.ph == 'E') {
      auto& open = open_b[{e.pid, e.track}];
      Event closed = e;
      closed.name = open.back()->name;
      open.pop_back();
      emit(closed, 'E');
    } else {
      emit(e, e.ph);
    }
    ++written;
  }
  // Close spans an exception (or eviction of the E's slab) left open, at
  // the final timestamp, innermost first.
  for (auto& [key, open] : open_b) {
    while (!open.empty()) {
      Event closer = *open.back();
      open.pop_back();
      closer.ts_ns = last_ts;
      closer.nargs = 0;
      emit(closer, 'E');
      ++written;
    }
  }
  std::fputs("\n]}\n", f);
  std::fclose(f);

  for (auto& [pid, ring] : rings_) ring.slabs.clear();
  rings_.clear();
  return written;
}

}  // namespace repseq::obs
