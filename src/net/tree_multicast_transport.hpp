// Software multicast over the switch: the sender is the root of a k-ary
// forwarding tree; every interior node re-transmits the frame to each of its
// children as an ordinary switched unicast (uplink serialization + per-hop
// latency).  This is the hand-inserted tree broadcast of paper Section 6.1.2
// expressed as a transport, so any protocol can run over it.
//
// Tree layout: positions are assigned breadth-first (heap order), position 0
// is the sender, and position p maps to node (src + p) mod N -- every sender
// gets the same tree shape over a rotated node ordering, so no fixed node is
// always a leaf.
//
// Forwarding is event-driven: an interior node's transmissions to its
// children are scheduled from the event at which its own copy of the frame
// arrives, so its uplink serializes forwards with whatever *other* traffic
// it sends, in true arrival order.  Frame accounting is therefore deferred:
// each hop reports itself through the AccountFn at the instant it is
// committed, and a hop downstream of a lost frame is never charged.
#pragma once

#include <algorithm>
#include <memory>

#include "net/transport.hpp"
#include "util/pool_ptr.hpp"

namespace repseq::net {

class TreeMulticastTransport final : public SwitchedTransport {
 public:
  TreeMulticastTransport(sim::Engine& eng, const NetConfig& cfg,
                         std::vector<std::unique_ptr<Nic>>& nics)
      : SwitchedTransport(eng, cfg, nics) {}

  void multicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
                 const AccountFn& account) override;

  /// Interior hops run as scheduled events after multicast() returns.
  [[nodiscard]] bool defers_delivery() const override { return true; }

  /// The root transmits only to its own children.
  [[nodiscard]] std::size_t sender_frames(std::size_t receivers) const override {
    return std::min(receivers, cfg_.mcast_tree_fanout > 0 ? cfg_.mcast_tree_fanout : 1);
  }

  /// Aggregate uplink transmit time spent forwarding multicast frames (all
  /// tree edges, root and interior alike).  The tree has no shared medium;
  /// this is the number that must be conserved frame-for-frame against the
  /// single-hub model's busy time in the uncontended case.
  [[nodiscard]] sim::SimDuration shard_busy(std::size_t s) const override {
    return s == 0 ? busy_total_ : sim::SimDuration{};
  }

 private:
  /// One in-flight group send: the callbacks and frame geometry shared by
  /// every forwarding event of its propagation (kept alive by the events).
  struct Flight;

  /// Transmits the frame from tree position `pos` (whose node holds a
  /// complete copy as of the current virtual instant) to each of its
  /// children, scheduling each child's own forwarding at its arrival.
  void forward_children(const util::PoolPtr<const Flight>& fl, std::size_t pos);

  sim::SimDuration busy_total_{};
};

}  // namespace repseq::net
