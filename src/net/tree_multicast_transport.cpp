#include "net/tree_multicast_transport.hpp"

#include <algorithm>
#include <utility>

#include "util/pool_ptr.hpp"

namespace repseq::net {

struct TreeMulticastTransport::Flight {
  NodeId src;
  std::size_t nodes;
  std::size_t fanout;
  std::size_t wire_bytes;
  DeliverFn deliver;
  AccountFn account;

  [[nodiscard]] NodeId node_at(std::size_t pos) const {
    return static_cast<NodeId>((src + pos) % nodes);
  }
};

void TreeMulticastTransport::multicast(const Message& msg, std::size_t wire_bytes,
                                       const DeliverFn& deliver, const AccountFn& account) {
  const std::size_t n = nics_.size();
  if (n <= 1) return;
  const std::size_t k = std::max<std::size_t>(1, cfg_.mcast_tree_fanout);
  // The callbacks outlive this call: interior hops run as scheduled events
  // at their parents' arrival instants, so the flight state is shared by
  // (and kept alive through) every pending forwarding event.
  auto fl = util::make_pooled<Flight>(Flight{msg.src, n, k, wire_bytes, deliver, account});
  forward_children(fl, 0);
}

void TreeMulticastTransport::forward_children(const util::PoolPtr<const Flight>& fl,
                                              std::size_t pos) {
  // The node at `pos` holds the complete frame as of now (the root at send
  // time, an interior node at its arrival event), so its child transmissions
  // reserve its uplink starting now -- serialized in true arrival order with
  // any unrelated traffic that node sends.  Store-and-forward semantics: a
  // child whose frame was consumed by loss injection (deliver returned
  // false) has nothing to forward, so its whole subtree is cut off without
  // transmitting -- or charging -- a single downstream hop.
  for (std::size_t c = fl->fanout * pos + 1; c <= fl->fanout * pos + fl->fanout; ++c) {
    if (c >= fl->nodes) break;
    const sim::SimTime at =
        forward_hop(fl->node_at(pos), fl->node_at(c), fl->wire_bytes, eng_.now());
    busy_total_ += cfg_.link_tx_time(fl->wire_bytes);
    fl->account(1);
    if (fl->deliver(fl->node_at(c), at)) {
      eng_.schedule_at(at, [this, fl, c] { forward_children(fl, c); });
    }
  }
}

}  // namespace repseq::net
