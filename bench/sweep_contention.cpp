// Figure-style experiment F1 (paper Section 3): contention as queueing.
//
// The master writes a block of pages in a sequential section; all other
// nodes then read disjoint slices simultaneously, so every diff request
// converges on the master.  The sweep shows the average response time
// growing with the number of simultaneous requesters -- "the service time
// for a request that arrives at a node with pending requests is increased
// by the time required to process all pending requests".
#include "bench_common.hpp"
#include "ompnow/team.hpp"
#include "rse/policy/policy_engine.hpp"
#include "tmk/access.hpp"

namespace {

struct Point {
  double avg_ms;
  double max_ms;
  double par_s;
};

Point probe(std::size_t nodes) {
  using namespace repseq;
  tmk::TmkConfig cfg;
  cfg.heap_bytes = 8u << 20;
  net::NetConfig ncfg = bench::bench_net_config();
  tmk::Cluster cl(cfg, ncfg, nodes);
  rse::RseController rse(cl, bench::bench_flow());
  ompnow::Team team(cl, ompnow::SeqMode::MasterOnly, &rse);

  constexpr std::size_t kIntsPerPage = 4096 / sizeof(int);
  const std::size_t elems = 96 * kIntsPerPage;
  auto data = tmk::ShArray<int>::alloc(cl, elems, /*page_aligned=*/true);

  cl.run([&](tmk::NodeRuntime&) {
    team.sequential([&](const ompnow::Ctx&) {
      for (std::size_t i = 0; i < elems; ++i) data.store(i, 1);
    });
    team.parallel([&](const ompnow::Ctx& ctx) {
      const auto r = ompnow::block_range(0, static_cast<long>(elems), ctx.tid, ctx.nthreads);
      long sum = 0;
      for (long i = r.lo; i < r.hi; ++i) sum += data.load(static_cast<std::size_t>(i));
      if (sum < 0) std::abort();
    });
  });

  util::Accumulator acc;
  for (net::NodeId n = 0; n < nodes; ++n) acc.merge(cl.node(n).stats().par.response_ms);
  return {acc.mean(), acc.max(), team.parallel_time().seconds()};
}

struct OccPoint {
  double checksum;
  double busy_max_ms;        // busiest multicast-medium shard
  double busy_total_ms;      // summed over shards
  std::uint64_t frames_max;  // frames on the busiest-by-frames shard
  std::uint64_t frames_total;
  std::size_t shards;
};

/// Hub-occupancy probe: every node writes a disjoint page slice in
/// parallel, then a REPLICATED sequential section reads all of it, so every
/// node faults on everyone else's pages and the flow-controlled multicast
/// rounds (one group per page) carry the diffs.  On a single hub all
/// rounds serialize on one medium; the sharded hub spreads them, so the
/// busiest shard's transmit time drops while the checksum is invariant.
OccPoint occupancy_probe(std::size_t nodes) {
  using namespace repseq;
  tmk::TmkConfig cfg;
  cfg.heap_bytes = 8u << 20;
  net::NetConfig ncfg = bench::bench_net_config();
  tmk::Cluster cl(cfg, ncfg, nodes);
  rse::RseController rse(cl, bench::bench_flow());
  ompnow::Team team(cl, ompnow::SeqMode::Replicated, &rse);

  constexpr std::size_t kIntsPerPage = 4096 / sizeof(int);
  const std::size_t elems = 96 * kIntsPerPage;
  auto data = tmk::ShArray<int>::alloc(cl, elems, /*page_aligned=*/true);

  double checksum = 0;
  cl.run([&](tmk::NodeRuntime&) {
    team.parallel([&](const ompnow::Ctx& ctx) {
      const auto r = ompnow::block_range(0, static_cast<long>(elems), ctx.tid, ctx.nthreads);
      for (long i = r.lo; i < r.hi; ++i) {
        data.store(static_cast<std::size_t>(i), static_cast<int>(i % 97));
      }
    });
    team.sequential([&](const ompnow::Ctx&) {
      long sum = 0;
      for (std::size_t i = 0; i < elems; ++i) sum += data.load(i);
      checksum = static_cast<double>(sum);
    });
  });

  OccPoint p{checksum, 0, 0, 0, 0, 0};
  const std::vector<tmk::HubOccupancy> occ = cl.hub_occupancy();
  p.shards = occ.size();
  for (const tmk::HubOccupancy& o : occ) {
    const double ms = o.busy.seconds() * 1e3;
    p.busy_max_ms = std::max(p.busy_max_ms, ms);
    p.busy_total_ms += ms;
    p.frames_max = std::max(p.frames_max, o.mcast_msgs);
    p.frames_total += o.mcast_msgs;
  }
  return p;
}

struct AdaptivePoint {
  double total_s;
  double checksum;
  std::uint64_t sections;
  std::array<std::uint64_t, repseq::rse::policy::kStrategyCount> by_strategy{};
  std::uint64_t switches;
  std::string site_policy;  // per-site "site:decisions/switches/final"
};

/// Renders the registry's per-site decision telemetry (ROADMAP's "decision
/// telemetry in the table benches"): for each decision site, how many
/// sections it decided, how many switch points it hit, and the strategy it
/// settled on.
std::string site_policy_summary(const repseq::tmk::Cluster& cl) {
  using namespace repseq;
  const obs::Registry& m = cl.metrics();
  std::string out;
  for (const std::string& site : m.label_values("policy_decisions", "site")) {
    std::uint64_t decisions = 0;
    for (std::size_t s = 0; s < rse::policy::kStrategyCount; ++s) {
      decisions += m.counter_value(
          "policy_decisions",
          {{"site", site},
           {"strategy", rse::policy::strategy_name(static_cast<rse::policy::SectionStrategy>(s))}});
    }
    const std::uint64_t switches = m.counter_value("policy_switches", {{"site", site}});
    const char* final_strategy = rse::policy::strategy_name(
        static_cast<rse::policy::SectionStrategy>(static_cast<std::size_t>(
            m.gauge_value("policy_final_strategy", {{"site", site}}))));
    if (!out.empty()) out += ' ';
    out += site + ':' + std::to_string(decisions) + '/' + std::to_string(switches) + '/' +
           final_strategy;
  }
  return out.empty() ? "-" : out;
}

/// Adaptive-policy probe over the same hot-spot workload, repeated for a few
/// rounds so the policy converges past its bootstrap: the master writes the
/// block, everyone reads it, and the rse::policy engine picks the section
/// strategy per round.  Run with REPSEQ_POLICY=static|greedy|hysteresis,
/// and REPSEQ_PIN_SITE=<site>=<strategy>[,...] to pin sites for A/B runs
/// (the producer section is site 1, the consumer section site 2).
AdaptivePoint adaptive_probe(std::size_t nodes) {
  using namespace repseq;
  tmk::TmkConfig cfg;
  cfg.heap_bytes = 8u << 20;
  net::NetConfig ncfg = bench::bench_net_config();
  tmk::Cluster cl(cfg, ncfg, nodes);
  rse::RseController rse(cl, bench::bench_flow());
  rse::policy::PolicyConfig pcfg;
  pcfg.kind = bench::bench_policy();
  pcfg.pins = bench::bench_pin_sites();
  rse::policy::PolicyEngine policy(cl, pcfg);
  ompnow::Team team(cl, ompnow::SeqMode::Adaptive, &rse, &policy);

  constexpr std::size_t kIntsPerPage = 4096 / sizeof(int);
  const std::size_t elems = 96 * kIntsPerPage;
  auto data = tmk::ShArray<int>::alloc(cl, elems, /*page_aligned=*/true);

  long checksum = 0;
  const sim::SimDuration total = cl.run([&](tmk::NodeRuntime&) {
    for (int round = 0; round < 4; ++round) {
      team.sequential(1, [&](const ompnow::Ctx&) {
        for (std::size_t i = 0; i < elems; ++i) data.store(i, static_cast<int>(i % 97) + round);
      });
      team.parallel([&](const ompnow::Ctx& ctx) {
        const auto r = ompnow::block_range(0, static_cast<long>(elems), ctx.tid, ctx.nthreads);
        long sum = 0;
        for (long i = r.lo; i < r.hi; ++i) sum += data.load(static_cast<std::size_t>(i));
        if (sum < 0) std::abort();
      });
      team.sequential(2, [&](const ompnow::Ctx&) {
        long sum = 0;
        for (std::size_t i = 0; i < elems; ++i) sum += data.load(i);
        checksum = sum;
      });
    }
  });

  AdaptivePoint p{};
  p.total_s = total.seconds();
  p.checksum = static_cast<double>(checksum);
  p.sections = policy.sections();
  p.by_strategy = policy.strategy_counts();
  p.switches = policy.switches();
  p.site_policy = site_policy_summary(cl);
  return p;
}

}  // namespace

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  print_header("Sweep: hot-spot response time vs simultaneous requesters",
               "PPoPP'01 Section 3 (and reference [11])",
               "synthetic: 96 master-written pages read by all nodes at once");

  const std::vector<std::size_t> node_counts = sweep_node_counts();
  util::Table t({"nodes", "avg response (ms)", "max response (ms)", "parallel phase (s)"});
  double r_lo = 0;
  double r_hi = 0;
  for (std::size_t nodes : node_counts) {
    const Point p = probe(nodes);
    if (nodes == node_counts.front()) r_lo = p.avg_ms;
    if (nodes == node_counts.back()) r_hi = p.avg_ms;
    t.add_row({std::to_string(nodes), fmt2(p.avg_ms), fmt2(p.max_ms), fmt2(p.par_s)});
  }
  std::printf("%s", t.render().c_str());
  std::printf("\nShape check: response time grows with requester count: %s (%.2f -> %.2f ms,"
              " %.1fx)\n",
              r_hi > 2.0 * r_lo ? "yes" : "NO", r_lo, r_hi, r_hi / (r_lo > 0 ? r_lo : 1));

  std::printf("\nMulticast-medium occupancy under replicated sequential execution\n"
              "(96 pages, one RSE round per page; transport %s)\n",
              net::transport_name(bench_transport()));
  util::Table occ_t({"nodes", "shards", "max-per-hub busy (ms)", "total busy (ms)",
                     "max-per-hub frames", "total frames", "checksum"});
  OccPoint last{};
  for (std::size_t nodes : node_counts) {
    const OccPoint p = occupancy_probe(nodes);
    last = p;
    occ_t.add_row({std::to_string(nodes), std::to_string(p.shards), fmt2(p.busy_max_ms),
                   fmt2(p.busy_total_ms), std::to_string(p.frames_max),
                   std::to_string(p.frames_total), util::fmt_fixed(p.checksum, 0)});
  }
  std::printf("%s", occ_t.render().c_str());
  std::printf("\nAt %zu nodes the busiest of %zu hub shard(s) transmitted for %.2f ms"
              " (checksum %.0f).\nRun with REPSEQ_TRANSPORT=sharded REPSEQ_HUB_SHARDS=4 vs"
              " REPSEQ_TRANSPORT=hub to see the\nmax-per-hub busy drop at an identical"
              " checksum.\n",
              node_counts.back(), last.shards, last.busy_max_ms, last.checksum);

  std::printf("\nAdaptive policy on the hot-spot workload (4 rounds, policy %s)\n",
              rse::policy::policy_name(bench_policy()));
  util::Table ad_t({"nodes", "total (s)", "sections", "master-only", "replicated",
                    "broadcast", "switches", "site:dec/sw/final", "checksum"});
  AdaptivePoint ad_last{};
  for (std::size_t nodes : node_counts) {
    const AdaptivePoint p = adaptive_probe(nodes);
    ad_last = p;
    ad_t.add_row({std::to_string(nodes), fmt2(p.total_s), std::to_string(p.sections),
                  std::to_string(p.by_strategy[0]), std::to_string(p.by_strategy[1]),
                  std::to_string(p.by_strategy[2]), std::to_string(p.switches),
                  p.site_policy, util::fmt_fixed(p.checksum, 0)});
  }
  std::printf("%s", ad_t.render().c_str());
  std::printf("\nEach site's first section is the broadcast bootstrap probe; afterwards the\n"
              "cost model keeps the write-heavy producer section off the master and the\n"
              "read-only consumer section on it (checksum invariant per node count).\n"
              "site:dec/sw/final reads per-site decision telemetry off the metrics\n"
              "registry: sections decided, switch points, and the settled strategy.\n");
  return 0;
}
