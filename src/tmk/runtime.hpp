// The per-node DSM runtime and the cluster that wires nodes together.
//
// NodeRuntime implements TreadMarks' multiple-writer, lazy-invalidate
// release consistency protocol (paper Sections 2.2 and 5.1):
//   * explicit read/write barriers stand in for VM page protection,
//   * intervals close at synchronization operations and publish write
//     notices, which invalidate remote copies lazily,
//   * diffs are created lazily at first request (or when a remote notice
//     invalidates a locally dirty page) and applied in causal order,
//   * locks, barriers and fork/join carry consistency information.
//
// A request-server (dispatcher) fiber per node services incoming messages,
// preempting application compute through the sim::Cpu interrupt model --
// FIFO servicing of queued requests is precisely the paper's contention
// mechanism (Section 3).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/network.hpp"
#include "obs/registry.hpp"
#include "sim/channel.hpp"
#include "sim/cpu.hpp"
#include "sim/engine.hpp"
#include "tmk/config.hpp"
#include "tmk/gaddr.hpp"
#include "tmk/interval.hpp"
#include "tmk/page.hpp"
#include "tmk/protocol.hpp"
#include "tmk/protocol_engine.hpp"
#include "tmk/shared_heap.hpp"
#include "tmk/stats.hpp"
#include "tmk/vector_clock.hpp"
#include "util/lazy_bytes.hpp"

namespace repseq::chk {
class Checker;
}  // namespace repseq::chk

namespace repseq::tmk {

class Cluster;
class NodeRuntime;

/// Hook interface for the replicated-sequential-execution engine
/// (implemented in src/rse).  While a node is inside a replicated
/// sequential section, page faults are delegated here instead of to the
/// base protocol, and the engine's message kinds are serviced by the
/// handlers it registers with the cluster's ProtocolEngine on attach.
class RseHooks {
 public:
  virtual ~RseHooks() = default;
  /// Handles a fault on `page` during replicated execution (app fiber).
  virtual void on_fault(NodeRuntime& node, PageId page) = 0;
  /// Registers this engine's message handlers (one per kind it owns;
  /// called once, when the hooks attach to the cluster).
  virtual void register_handlers(ProtocolEngine& engine) = 0;
};

class NodeRuntime {
 public:
  NodeRuntime(Cluster& cluster, NodeId id);

  NodeRuntime(const NodeRuntime&) = delete;
  NodeRuntime& operator=(const NodeRuntime&) = delete;

  [[nodiscard]] NodeId id() const { return id_; }
  [[nodiscard]] bool is_master() const { return id_ == 0; }
  [[nodiscard]] Cluster& cluster() { return cluster_; }
  [[nodiscard]] sim::Cpu& cpu() { return cpu_; }
  [[nodiscard]] NodeStats& stats() { return stats_; }
  [[nodiscard]] const TmkConfig& config() const;
  [[nodiscard]] std::size_t node_count() const;

  // ---- instrumented access layer (called by ShArray & friends) ----

  /// Ensures [addr, addr+bytes) is readable; faults in missing diffs.
  void read_barrier(GAddr addr, std::size_t bytes);
  /// Ensures writability; creates twins / records dirtiness as needed.
  void write_barrier(GAddr addr, std::size_t bytes);
  /// Raw pointer into this node's local backing for a shared address.
  template <typename T>
  [[nodiscard]] T* local(GAddr addr) {
    return reinterpret_cast<T*>(mem_.data() + addr.off);
  }
  [[nodiscard]] std::span<std::byte> page_span(PageId p);
  [[nodiscard]] std::span<const std::byte> page_span(PageId p) const;

  /// Charges application compute (forwarded to the CPU model).
  void charge(sim::SimDuration d) { cpu_.accrue(d); }

  // ---- synchronization API (TreadMarks primitives) ----

  void barrier(std::uint32_t barrier_id);
  void lock_acquire(std::uint32_t lock_id);
  void lock_release(std::uint32_t lock_id);

  /// Master: fork a parallel region; slaves run `work_id` via the cluster's
  /// registered work table.  `phase` tags statistics while the region runs
  /// (replicated *sequential* sections are forked too, but their traffic
  /// belongs to the sequential-section accounting of Tables 2 and 4).
  void fork(std::uint64_t work_id, Phase phase = Phase::Parallel);
  /// Master: wait for all slaves' join messages.
  void join_master();
  /// Slave main loop: waits for forks, runs work, sends joins.
  void slave_loop();

  // ---- protocol internals (exposed for the RSE engine and tests) ----

  [[nodiscard]] VectorClock& vc() { return vc_; }
  [[nodiscard]] IntervalLog& log() { return log_; }
  [[nodiscard]] PageState& page(PageId p) { return pages_[p]; }
  [[nodiscard]] std::size_t page_count() const { return pages_.size(); }

  /// All interval records (own and remote) known to mention `p`, in no
  /// particular order.  The RSE requester election uses this as the
  /// universe of write notices for a page (logs are identical cluster-wide
  /// after the barrier that precedes a replicated section).
  [[nodiscard]] const std::vector<IntervalRecordPtr>& page_notices(PageId p) const {
    static const std::vector<IntervalRecordPtr> kEmpty;
    auto it = page_notice_index_.find(p);
    return it == page_notice_index_.end() ? kEmpty : it->second;
  }

  /// Closes the current interval if dirty (publishes write notices locally;
  /// they travel with the next synchronization message).
  void end_interval();

  /// Logs a remote interval record and invalidates its pages.
  void apply_notice(const IntervalRecordPtr& rec, bool on_server);

  /// Creates and registers the diff for a page's twin (lazy diff creation).
  /// `on_server` selects whether the cost lands on service or compute time.
  void flush_diff(PageId p, bool on_server);

  /// Serves a diff request: collects (creating when needed) diffs covering
  /// `intervals` of this node for `page`.
  std::vector<DiffPacket> collect_diffs(PageId page, const std::vector<std::uint32_t>& intervals,
                                        bool on_server);

  /// Applies one diff packet; updates validity, clears satisfied pending
  /// notices.
  void apply_packet(const DiffPacket& pkt);

  /// Sorts packets causally (Lamport projection of the newest covered
  /// interval) and applies them all, charging apply costs.
  void apply_packets_causally(std::vector<DiffPacket> pkts, bool on_server);

  /// The base-protocol fault path: request diffs from the last writers.
  void fault_in_page(PageId p);

  /// Groups a page's pending notices by owner (ascending intervals).
  [[nodiscard]] WantedByOwner wanted_for_page(PageId p) const;

  /// Send helpers: charge CPU overhead and tag per-phase statistics.
  void send_raw_unicast(net::Message msg, bool on_server);
  void send_raw_multicast(net::Message msg, bool on_server);

  template <typename P>
  void send_unicast(MsgKind kind, NodeId dst, P payload, bool on_server) {
    send_raw_unicast(make_message(kind, id_, dst, std::move(payload)), on_server);
  }
  /// `group` keys the multicast group: the sharded-hub medium hashes it to
  /// a shard, so traffic for disjoint groups rides independent media.  The
  /// RSE engine keys round traffic by page; control traffic uses group 0.
  template <typename P>
  void send_multicast(MsgKind kind, P payload, bool on_server, std::uint64_t group = 0) {
    net::Message m = make_message(kind, id_, net::kMulticastDst, std::move(payload));
    m.mcast_group = group;
    send_raw_multicast(std::move(m), on_server);
  }

  /// RSE integration.
  [[nodiscard]] RseHooks* rse_hooks() const;
  [[nodiscard]] bool in_replicated_section() const { return in_replicated_section_; }
  void set_in_replicated_section(bool v) { in_replicated_section_ = v; }

  /// The sequential-section site currently executing on this node's app
  /// fiber (kNoSite outside sections) -- purely diagnostic context, stamped
  /// by ompnow::Team and read by the chk layer's race reports.
  static constexpr std::uint32_t kNoSite = 0xFFFFFFFFu;
  [[nodiscard]] std::uint32_t current_site() const { return current_site_; }
  void set_current_site(std::uint32_t site) { current_site_ = site; }

  /// A fresh correlation id for request/reply matching.
  std::uint64_t next_req_id() { return next_req_id_++; }

  /// Registers interest in replies carrying `req_id`.
  sim::Channel<net::Message>& expect_replies(std::uint64_t req_id);
  void drop_reply_slot(std::uint64_t req_id);

  /// Wakes fibers blocked on `page` becoming valid (RSE wait path).
  void notify_page_valid(PageId p);
  /// Blocks until `page` is valid; returns false on timeout.
  bool wait_page_valid(PageId p, sim::SimDuration timeout);

  /// Record a completed fault round in this node's phase stats.
  void record_fault_round(sim::SimTime start, bool counted_as_request);

  /// Master-side bookkeeping of what each slave is known to know (used by
  /// fork to avoid resending records; updated by the broadcast ablation).
  [[nodiscard]] const VectorClock& slave_knowledge(NodeId s) const {
    return slave_known_vc_[s];
  }
  void note_slave_knowledge(NodeId s, const VectorClock& vc) {
    slave_known_vc_[s].max_with(vc);
  }

  /// Scratch twin buffers, one page each, recycled between twin lifetimes
  /// (created at the first write to a clean page, freed at diff flush --
  /// a high-frequency pairing on write-heavy workloads).
  [[nodiscard]] std::unique_ptr<std::byte[]> acquire_twin();
  void release_twin(std::unique_ptr<std::byte[]> twin);

  /// The dispatcher fiber body (spawned by Cluster).
  void dispatcher_loop();

  /// Registers the base TreadMarks protocol's message handlers (one per
  /// MsgKind) with the cluster's dispatch registry.
  static void register_base_protocol(ProtocolEngine& engine);

 private:
  friend class Cluster;

  // message handlers (dispatcher fiber)
  void handle_message(const net::Message& msg);
  void handle_diff_request(const net::Message& msg);
  void handle_barrier_arrive(const net::Message& msg);

  void merge_sync_payload(const VectorClock& vc, const std::vector<IntervalRecordPtr>& records,
                          bool on_server);
  [[nodiscard]] std::vector<IntervalRecordPtr> records_unknown_to(const VectorClock& vc) const;

  // barrier bookkeeping (master side)
  struct BarrierGroup {
    std::uint32_t arrived = 0;
    std::vector<std::pair<NodeId, VectorClock>> waiter_vcs;
    bool master_arrived = false;
    sim::WaitToken* master_waiter = nullptr;
  };
  void barrier_complete_if_ready(std::uint64_t barrier_seq, bool on_server);

  // lock management (runs on the managing node)
  struct LockManagerState {
    bool held = false;
    std::optional<NodeId> last_releaser;
    std::deque<std::pair<NodeId, LockAcquireP>> waiting;
  };
  void manager_acquire(NodeId acquirer, LockAcquireP p, bool on_server);
  void manager_release(NodeId releaser, std::uint32_t lock, bool on_server);
  void releaser_grant(NodeId acquirer, std::uint64_t req_id, std::uint32_t lock,
                      const VectorClock& acq_vc, bool on_server);
  void receive_grant(net::Message msg);

  Cluster& cluster_;
  NodeId id_;
  sim::Cpu cpu_;
  util::LazyBytes mem_;
  std::vector<PageState> pages_;
  VectorClock vc_;
  IntervalLog log_;
  std::vector<PageId> current_dirty_;
  /// A diff frozen at flush time together with its full registration.
  struct RegisteredDiff {
    std::uint64_t seq;
    std::vector<std::uint32_t> covers;  // every interval this diff backs
    DiffPtr diff;
  };
  using RegisteredDiffPtr = util::PoolPtr<const RegisteredDiff>;
  /// Own diffs per (page, interval); the same registration may appear under
  /// several intervals (merged lazy diffs).
  std::map<std::pair<PageId, std::uint32_t>, std::vector<RegisteredDiffPtr>> own_diffs_;
  std::uint64_t next_diff_seq_ = 1;
  std::map<PageId, std::vector<IntervalRecordPtr>> page_notice_index_;
  std::vector<std::unique_ptr<std::byte[]>> twin_pool_;

  NodeStats stats_;
  std::uint64_t next_req_id_ = 1;
  std::map<std::uint64_t, std::unique_ptr<sim::Channel<net::Message>>> reply_slots_;
  std::map<PageId, std::vector<sim::WaitToken*>> page_waiters_;

  // synchronization state
  std::map<std::uint64_t, BarrierGroup> barriers_;   // master only, keyed by seq
  std::map<std::uint32_t, std::uint32_t> barrier_epochs_;  // per-node id -> uses
  std::map<std::uint32_t, LockManagerState> managed_locks_;
  sim::Channel<net::Message> fork_ch_;
  sim::Channel<net::Message> depart_ch_;
  sim::Channel<net::Message> join_ch_;  // master only
  sim::Channel<net::Message> grant_ch_;
  VectorClock last_master_vc_;
  std::vector<VectorClock> slave_known_vc_;  // master only

  bool in_replicated_section_ = false;
  std::uint32_t current_site_ = kNoSite;
  /// The cluster's checker, cached so every hook is one null test when
  /// checking is off (mirrors the obs-layer mask pattern).
  chk::Checker* chk_ = nullptr;
};

/// The whole simulated cluster: engine, network, one runtime per node, the
/// shared heap, the registered parallel work table and the phase flag.
class Cluster {
 public:
  Cluster(TmkConfig cfg, net::NetConfig net_cfg, std::size_t nodes);
  ~Cluster();

  [[nodiscard]] sim::Engine& engine() { return engine_; }
  [[nodiscard]] net::Network& network() { return *network_; }
  [[nodiscard]] NodeRuntime& node(NodeId n) { return *nodes_[n]; }
  [[nodiscard]] std::size_t node_count() const { return node_count_; }
  [[nodiscard]] const TmkConfig& config() const { return cfg_; }
  [[nodiscard]] SharedHeap& heap() { return heap_; }

  [[nodiscard]] Phase phase() const { return phase_; }
  void set_phase(Phase p) { phase_ = p; }

  /// Registers a parallel work function; returns its work id (standing in
  /// for the translator-generated subroutine pointer in the fork message).
  std::uint64_t register_work(std::function<void(NodeRuntime&)> fn);
  [[nodiscard]] const std::function<void(NodeRuntime&)>& work(std::uint64_t id) const;

  /// Runs `master_program` as node 0's application, with slaves in their
  /// fork-wait loops, until completion.  Returns total virtual time.
  sim::SimDuration run(std::function<void(NodeRuntime&)> master_program);

  /// Aggregate statistics over all nodes.
  [[nodiscard]] PhaseCounters total(Phase p) const;

  /// The run's labeled metrics registry (counters/gauges/histograms).  New
  /// telemetry goes here instead of growing PhaseCounters by hand; one
  /// registry per cluster keeps sweep runs isolated.
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }

  /// Per-shard multicast occupancy over the whole run (both phases):
  /// frames/bytes charged by the protocol layer plus medium busy time from
  /// the transport.  Size equals the backend's shard count.
  [[nodiscard]] std::vector<HubOccupancy> hub_occupancy() const;

  /// The RSE engine attachment point (one controller per cluster).  The
  /// hooks' message handlers are registered with the dispatch registry on
  /// attach; a second attachment would double-register and aborts.
  void set_rse_hooks(RseHooks* hooks);
  [[nodiscard]] RseHooks* rse_hooks() const { return rse_hooks_; }

  /// The message-dispatch registry serving every node's request server.
  [[nodiscard]] ProtocolEngine& protocol() { return protocol_; }

  /// The correctness checker, present iff REPSEQ_CHECK (or a test's
  /// chk::ScopedConfig) selected at least one category at construction.
  [[nodiscard]] chk::Checker* checker() const { return checker_.get(); }

  /// The runtime owning the calling fiber (application or dispatcher).
  static NodeRuntime& current();

 private:
  TmkConfig cfg_;
  std::size_t node_count_ = 0;
  sim::Engine engine_;
  std::unique_ptr<net::Network> network_;
  SharedHeap heap_;
  std::vector<std::unique_ptr<NodeRuntime>> nodes_;
  std::vector<std::function<void(NodeRuntime&)>> work_table_;
  ProtocolEngine protocol_;
  obs::Registry metrics_;
  std::unique_ptr<chk::Checker> checker_;
  Phase phase_ = Phase::Sequential;
  RseHooks* rse_hooks_ = nullptr;
  bool ran_ = false;
};

}  // namespace repseq::tmk
