#include "net/direct_all_transport.hpp"

namespace repseq::net {

std::size_t DirectAllTransport::multicast(const Message& msg, std::size_t wire_bytes,
                                          const DeliverFn& deliver) {
  // Frames leave in ascending destination order; each reserves the source
  // uplink anew, so the last receiver waits ~(N-1) serializations.  Every
  // frame is transmitted even if lost at its receiver.
  std::size_t frames = 0;
  for (NodeId dst = 0; dst < nics_.size(); ++dst) {
    if (dst == msg.src) continue;
    deliver(dst, forward_hop(msg.src, dst, wire_bytes, eng_.now()));
    ++frames;
  }
  return frames;
}

}  // namespace repseq::net
