#include "net/sharded_hub_transport.hpp"

#include <algorithm>

namespace repseq::net {

ShardedHubTransport::ShardedHubTransport(sim::Engine& eng, const NetConfig& cfg,
                                         std::vector<std::unique_ptr<Nic>>& nics)
    : SwitchedTransport(eng, cfg, nics) {
  const std::size_t shards = std::max<std::size_t>(1, cfg.hub_shards);
  hubs_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) hubs_.emplace_back(eng, cfg);
}

void ShardedHubTransport::multicast(const Message& msg, std::size_t wire_bytes,
                                    const DeliverFn& deliver, const AccountFn& account) {
  // One frame occupies the group's shard of the medium; all receivers see
  // it at the same instant once it has fully propagated.  Frames on other
  // shards are concurrent.
  Hub& hub = hubs_[shard_of(msg.mcast_group, hubs_.size())];
  const sim::SimTime done = hub.transmit(wire_bytes, eng_.now());
  account(1, wire_bytes);
  for (NodeId n = 0; n < nics_.size(); ++n) {
    if (n == msg.src) continue;  // the sender consumes its own data locally
    deliver(n, done);
  }
}

}  // namespace repseq::net
