#include "apps/harness/run_modes.hpp"

#include <algorithm>
#include <chrono>
#include <memory>

#include "ompnow/team.hpp"
#include "rse/policy/policy_engine.hpp"
#include "tmk/runtime.hpp"
#include "util/check.hpp"

namespace repseq::apps::harness {

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::Sequential:
      return "Sequential";
    case Mode::Original:
      return "Original";
    case Mode::Optimized:
      return "Optimized";
    case Mode::BroadcastSeq:
      return "BroadcastSeq";
    case Mode::Adaptive:
      return "Adaptive";
  }
  return "?";
}

const char* flow_name(rse::FlowControl f) {
  switch (f) {
    case rse::FlowControl::Chained:
      return "Chained";
    case rse::FlowControl::Windowed:
      return "Windowed";
    case rse::FlowControl::None:
      return "None";
  }
  return "?";
}

std::optional<Mode> parse_mode(std::string_view s) {
  if (s == "sequential" || s == "seq") return Mode::Sequential;
  if (s == "original" || s == "base") return Mode::Original;
  if (s == "optimized" || s == "replicated" || s == "rse") return Mode::Optimized;
  if (s == "broadcast" || s == "broadcast-seq") return Mode::BroadcastSeq;
  if (s == "adaptive") return Mode::Adaptive;
  return std::nullopt;
}

std::optional<rse::FlowControl> parse_flow(std::string_view s) {
  if (s == "chained") return rse::FlowControl::Chained;
  if (s == "windowed") return rse::FlowControl::Windowed;
  if (s == "none") return rse::FlowControl::None;
  return std::nullopt;
}

namespace {

ompnow::SeqMode seq_mode_for(Mode m) {
  switch (m) {
    case Mode::Optimized:
      return ompnow::SeqMode::Replicated;
    case Mode::BroadcastSeq:
      return ompnow::SeqMode::BroadcastAfter;
    case Mode::Adaptive:
      return ompnow::SeqMode::Adaptive;
    default:
      return ompnow::SeqMode::MasterOnly;
  }
}

struct Bench {
  std::unique_ptr<tmk::Cluster> cluster;
  std::unique_ptr<rse::RseController> rse;
  std::unique_ptr<rse::policy::PolicyEngine> policy;
  std::unique_ptr<ompnow::Team> team;
  std::size_t nodes;
  double host_wall_s = 0;

  explicit Bench(const RunOptions& opt)
      : nodes(opt.mode == Mode::Sequential ? 1 : opt.nodes) {
    cluster = std::make_unique<tmk::Cluster>(opt.tmk, opt.net, nodes);
    rse = std::make_unique<rse::RseController>(*cluster, opt.flow);
    if (opt.mode == Mode::Adaptive) {
      policy = std::make_unique<rse::policy::PolicyEngine>(*cluster, opt.policy);
    }
    team = std::make_unique<ompnow::Team>(*cluster, seq_mode_for(opt.mode), rse.get(),
                                          policy.get());
  }

  RunReport report(const RunOptions& opt, double total_s, double seq_s, double par_s,
                   double checksum, std::uint64_t aux) const {
    RunReport r;
    r.mode = opt.mode;
    r.nodes = nodes;
    r.transport = net::transport_name(opt.net.transport);
    r.policy = opt.mode == Mode::Adaptive ? rse::policy::policy_name(opt.policy.kind) : "-";
    r.total_s = total_s;
    r.seq_s = seq_s;
    r.par_s = par_s;
    r.checksum = checksum;
    r.aux = aux;
    r.sim_events = cluster->engine().events_executed();
    r.peak_live_events = cluster->engine().peak_live_events();
    r.host_wall_s = host_wall_s;

    const tmk::PhaseCounters seq = cluster->total(tmk::Phase::Sequential);
    const tmk::PhaseCounters par = cluster->total(tmk::Phase::Parallel);
    r.total_msgs = seq.msgs_sent + par.msgs_sent;
    r.total_kb = (seq.bytes_sent + par.bytes_sent) / 1024;
    r.seq_msgs = seq.msgs_sent;
    r.seq_kb = seq.bytes_sent / 1024;
    r.par_msgs = par.msgs_sent;
    r.par_kb = par.bytes_sent / 1024;
    r.seq_null_acks = seq.null_acks_sent;
    r.seq_fwd_requests = seq.fwd_requests;
    r.recoveries = seq.recoveries + par.recoveries;
    r.drops = cluster->network().total_drops();

    const std::vector<tmk::HubOccupancy> occ = cluster->hub_occupancy();
    r.hub_shards = occ.size();
    for (const tmk::HubOccupancy& o : occ) {
      r.hub_busy_max_s = std::max(r.hub_busy_max_s, o.busy.seconds());
      r.hub_busy_total_s += o.busy.seconds();
    }

    if (policy) {
      r.sections = policy->sections();
      r.sections_by_strategy = policy->strategy_counts();
      r.policy_switches = policy->switches();
      r.decisions = policy->decisions();
    }

    // Per-site telemetry from the metrics registry (PolicyEngine records a
    // labeled counter per decision; see policy_engine.cpp).
    const obs::Registry& m = cluster->metrics();
    for (const std::string& site : m.label_values("policy_decisions", "site")) {
      RunReport::SitePolicy sp;
      sp.site = static_cast<std::uint32_t>(std::stoul(site));
      for (std::size_t s = 0; s < rse::policy::kStrategyCount; ++s) {
        const char* strat = rse::policy::strategy_name(static_cast<rse::policy::SectionStrategy>(s));
        sp.decisions += m.counter_value("policy_decisions", {{"site", site}, {"strategy", strat}});
      }
      sp.switches = m.counter_value("policy_switches", {{"site", site}});
      sp.final_strategy = rse::policy::strategy_name(static_cast<rse::policy::SectionStrategy>(
          static_cast<std::size_t>(m.gauge_value("policy_final_strategy", {{"site", site}}))));
      r.site_policy.push_back(std::move(sp));
    }
    std::sort(r.site_policy.begin(), r.site_policy.end(),
              [](const RunReport::SitePolicy& a, const RunReport::SitePolicy& b) {
                return a.site < b.site;
              });

    // Correctness-checker violation counts (chk::Checker records one labeled
    // counter per oracle; nonzero only under a no-abort test config).
    for (const std::string& checker : m.label_values("chk_violations", "checker")) {
      const std::uint64_t count = m.counter_value("chk_violations", {{"checker", checker}});
      r.check_violations += count;
      r.check_violations_by_checker.emplace_back(checker, count);
    }

    // "diff requests": for sequential sections the paper counts the single
    // most-faulting thread (the master in the original system); for
    // parallel sections the per-thread average.
    std::uint64_t seq_max_faults = 0;
    util::Accumulator seq_resp;
    util::Accumulator par_resp;
    double par_faults_total = 0;
    sim::SimDuration par_wait_max{};
    for (net::NodeId n = 0; n < nodes; ++n) {
      const tmk::NodeStats& s = cluster->node(n).stats();
      seq_max_faults = std::max(seq_max_faults, s.seq.page_faults);
      seq_resp.merge(s.seq.response_ms);
      par_resp.merge(s.par.response_ms);
      par_faults_total += static_cast<double>(s.par.page_faults);
      par_wait_max = std::max(par_wait_max, s.par.fault_wait);
    }
    r.seq_requests = seq_max_faults;
    r.seq_response_ms = seq_resp.mean();
    r.par_requests_avg = par_faults_total / static_cast<double>(nodes);
    r.par_response_ms = par_resp.mean();
    r.par_fault_wait_max_s = par_wait_max.seconds();
    return r;
  }
};

}  // namespace

RunReport run_barnes_hut(const RunOptions& opt, const bh::BhConfig& cfg) {
  Bench b(opt);
  bh::BhWorld world = bh::setup_world(*b.cluster, cfg);
  bh::BhResult res;
  const auto h0 = std::chrono::steady_clock::now();
  b.cluster->run([&](tmk::NodeRuntime&) {
    bh::init_bodies(world, cfg);
    res = bh::run_steps(*b.cluster, *b.team, world, cfg);
  });
  b.host_wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - h0).count();
  return b.report(opt, res.total_time.seconds(), res.seq_time.seconds(),
                  res.par_time.seconds(), res.checksum, res.interactions);
}

RunReport run_ilink(const RunOptions& opt, const ilink::IlinkConfig& cfg) {
  Bench b(opt);
  ilink::IlinkWorld world = ilink::setup_world(*b.cluster, cfg);
  ilink::IlinkResult res;
  const auto h0 = std::chrono::steady_clock::now();
  b.cluster->run([&](tmk::NodeRuntime&) {
    res = ilink::run_program(*b.cluster, *b.team, world, cfg);
  });
  b.host_wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - h0).count();
  return b.report(opt, res.total_time.seconds(), res.seq_time.seconds(),
                  res.par_time.seconds(), res.likelihood,
                  res.parallel_updates + res.serial_updates);
}

}  // namespace repseq::apps::harness
