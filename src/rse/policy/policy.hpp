// Vocabulary of the adaptive per-section replication policy engine.
//
// The paper fixes one execution strategy for every sequential section of a
// run (its Tables 1-4 compare whole-run configurations).  Which strategy
// wins, however, depends on the *section*: its write-set size, the stale
// data it reads, and the contention its output induces afterwards
// (Section 4.2 discusses execute-then-broadcast as an alternative precisely
// because the trade-off is per-section).  rse::policy makes that choice
// online, per section site, with the master's decision propagated to all
// nodes in a section-open message.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string_view>

namespace repseq::rse::policy {

/// How one sequential section executes.  Mirrors the paper's three system
/// configurations, but scoped to a single section instead of a whole run.
enum class SectionStrategy : std::uint8_t {
  MasterOnly = 0,      // base system: master executes, slaves wait
  Replicated = 1,      // replicated sequential execution (the paper)
  BroadcastAfter = 2,  // master executes, then multicasts all modified data
};
inline constexpr std::size_t kStrategyCount = 3;

[[nodiscard]] const char* strategy_name(SectionStrategy s);
[[nodiscard]] std::optional<SectionStrategy> parse_strategy(std::string_view s);

/// Decision procedures layered over the shared cost model.
enum class PolicyKind : std::uint8_t {
  Static,      // always PolicyConfig::static_strategy (no telemetry)
  Greedy,      // per section entry: argmin of the modeled strategy costs
  Hysteresis,  // greedy, but a challenger must undercut the incumbent by
               // switch_margin and the site must have dwelt min_dwell runs
};

[[nodiscard]] const char* policy_name(PolicyKind k);
[[nodiscard]] std::optional<PolicyKind> parse_policy(std::string_view s);

struct PolicyConfig {
  PolicyKind kind = PolicyKind::Hysteresis;

  /// What the Static policy always picks.
  SectionStrategy static_strategy = SectionStrategy::Replicated;

  /// First occurrence of a site under an adaptive policy.  BroadcastAfter
  /// doubles as the measurement probe: it is the one strategy whose bracket
  /// observes the section's full write set (the broadcast has to collect
  /// exactly those diffs), so one occurrence fills the whole profile.
  SectionStrategy bootstrap = SectionStrategy::BroadcastAfter;

  /// Hysteresis: a challenger's modeled cost must be below
  /// incumbent * (1 - switch_margin) to trigger a switch.
  double switch_margin = 0.15;
  /// Hysteresis: minimum occurrences of a site between switches.
  std::uint64_t min_dwell = 1;

  /// EWMA smoothing factor for the per-site telemetry (0 < alpha <= 1).
  double alpha = 0.5;

  /// Per-site strategy pins for A/B runs (REPSEQ_PIN_SITE): a pinned site
  /// always executes its pinned strategy -- including its *first*
  /// occurrence, which skips the execute-and-broadcast bootstrap probe the
  /// adaptive path would otherwise run there.  Unpinned sites adapt
  /// normally; telemetry is still collected everywhere.
  std::map<std::uint32_t, SectionStrategy> pins;
};

/// Parses a pin list of the form `<site>=<strategy>[,<site>=<strategy>...]`
/// (strategy accepts the strategy_name spellings).  Returns nullopt -- it
/// never guesses -- on any malformed entry; the caller reports the
/// offending value.
[[nodiscard]] std::optional<std::map<std::uint32_t, SectionStrategy>> parse_pin_sites(
    std::string_view s);

/// One entry of the per-section decision log.  The (seq, site, strategy,
/// switched) tuple is what the master multicasts at section entry and what
/// every node's log must agree on; the trailing fields are master-side
/// reporting telemetry filled at section close (virtual time and multicast
/// traffic are transport-dependent, so they are *recorded*, never fed back
/// into the decision function).
struct Decision {
  std::uint64_t seq = 0;   // cluster-global section sequence number
  std::uint32_t site = 0;  // application-stamped section site id
  SectionStrategy strategy = SectionStrategy::Replicated;
  bool switched = false;   // site changed strategy at this entry

  double section_s = 0;    // wall (virtual) time inside the section bracket
  double mcast_kb = 0;     // multicast traffic the bracket put on the medium

  [[nodiscard]] bool same_choice(const Decision& o) const {
    return seq == o.seq && site == o.site && strategy == o.strategy &&
           switched == o.switched;
  }
};

}  // namespace repseq::rse::policy
