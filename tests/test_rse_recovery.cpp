// Failure injection for the replicated-section multicast protocol: lost
// frames must be repaired by the paper's timeout recovery (Section 5.4.2,
// "rather expensive mechanism ... almost never invoked") under every
// flow-control policy, without changing results.
#include <gtest/gtest.h>

#include "ompnow/team.hpp"
#include "rse/controller.hpp"
#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

namespace repseq::rse {
namespace {

using ompnow::Ctx;
using ompnow::Schedule;
using ompnow::SeqMode;

struct LossyWorld {
  tmk::TmkConfig cfg;
  net::NetConfig ncfg;
  std::unique_ptr<tmk::Cluster> cl;
  std::unique_ptr<RseController> rse;
  std::unique_ptr<ompnow::Team> team;

  LossyWorld(std::size_t nodes, FlowControl flow, double loss, std::uint64_t seed,
             sim::SimDuration wait_timeout = sim::milliseconds(20),
             net::TransportKind transport = net::TransportKind::HubSwitch,
             sim::SimDuration batch_window = {}) {
    cfg.heap_bytes = 1u << 20;
    cfg.rse_wait_timeout = wait_timeout;
    cfg.request_timeout = sim::milliseconds(10);
    ncfg.loss_probability = loss;
    ncfg.loss_seed = seed;
    ncfg.transport = transport;
    ncfg.batch_window = batch_window;
    cl = std::make_unique<tmk::Cluster>(cfg, ncfg, nodes);
    rse = std::make_unique<RseController>(*cl, flow);
    team = std::make_unique<ompnow::Team>(*cl, SeqMode::Replicated, rse.get());
  }
};

long run_workload(LossyWorld& w, std::size_t elems) {
  auto data = tmk::ShArray<int>::alloc(*w.cl, elems, /*page_aligned=*/true);
  long result = -1;
  w.cl->run([&](tmk::NodeRuntime&) {
    w.team->parallel_for(0, static_cast<long>(elems), Schedule::StaticBlock,
                         [&](const Ctx&, long i) {
                           data.store(static_cast<std::size_t>(i), static_cast<int>(i % 7));
                         });
    w.team->sequential([&](const Ctx&) {
      long s = 0;
      for (std::size_t i = 0; i < elems; ++i) s += data.load(i);
      data.store(0, static_cast<int>(s % 1000));
    });
    w.team->parallel([&](const Ctx& ctx) {
      if (ctx.tid == 1) {
        long s = 0;
        for (std::size_t i = 0; i < elems; ++i) s += data.load(i);
        result = s;
      }
    });
  });
  return result;
}

class LossRecovery : public ::testing::TestWithParam<FlowControl> {};

TEST_P(LossRecovery, LostFramesAreRepairedWithoutChangingResults) {
  constexpr std::size_t kElems = 3000;
  LossyWorld clean(4, GetParam(), 0.0, 1);
  const long expect = run_workload(clean, kElems);

  LossyWorld lossy(4, GetParam(), 0.08, 12345);
  const long got = run_workload(lossy, kElems);
  EXPECT_EQ(got, expect);
  EXPECT_GT(lossy.cl->network().losses_injected(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Policies, LossRecovery,
                         ::testing::Values(FlowControl::Chained, FlowControl::Windowed,
                                           FlowControl::None));

TEST(LossRecoveryStats, RecoveriesAreCountedWhenFramesVanish) {
  LossyWorld lossy(4, FlowControl::Chained, 0.15, 777);
  (void)run_workload(lossy, 4000);
  std::uint64_t recoveries = 0;
  for (net::NodeId n = 0; n < 4; ++n) {
    recoveries += lossy.cl->node(n).stats().seq.recoveries;
    recoveries += lossy.cl->node(n).stats().par.recoveries;
  }
  EXPECT_GT(recoveries, 0u);
}

TEST(WatchdogAbandonment, LateCompletingChainDoesNotDoubleFinishRounds) {
  // An rse_wait_timeout shorter than a full ack chain makes the master's
  // watchdog abandon rounds that are still walking (and faulters repair
  // themselves through direct recovery).  The abandoned chain still
  // completes afterwards -- and that late completion must be inert: it used
  // to call master_round_finished against whatever round (if any) the
  // master had moved on to, tripping "round finish without a round".
  // Surfaced by the 256-node transport-invariance sweep.
  // The hazard is transport-shaped (an abandoned chain's completion time
  // depends on the wire model) and batching delays stretch chains past the
  // watchdog even further, so the scenario runs on every multicast-capable
  // backend with and without a coalescing window.
  LossyWorld calm(16, FlowControl::Chained, 0.0, 1);
  const long expect = run_workload(calm, 4000);

  struct Scenario {
    const char* name;
    net::TransportKind transport;
    sim::SimDuration window;
  };
  const Scenario scenarios[] = {
      {"hub", net::TransportKind::HubSwitch, {}},
      {"hub+batch", net::TransportKind::HubSwitch, sim::microseconds(500)},
      {"tree", net::TransportKind::TreeMulticast, {}},
      {"tree+batch", net::TransportKind::TreeMulticast, sim::microseconds(500)},
      {"sharded", net::TransportKind::ShardedHub, {}},
      {"sharded+batch", net::TransportKind::ShardedHub, sim::microseconds(500)},
  };
  for (const Scenario& s : scenarios) {
    LossyWorld hurried(16, FlowControl::Chained, 0.0, 1, sim::microseconds(2000), s.transport,
                       s.window);
    EXPECT_EQ(run_workload(hurried, 4000), expect) << s.name;

    // The scenario only bites if timeouts actually fired mid-round.
    std::uint64_t recoveries = 0;
    for (net::NodeId n = 0; n < 16; ++n) {
      recoveries += hurried.cl->node(n).stats().seq.recoveries;
      recoveries += hurried.cl->node(n).stats().par.recoveries;
    }
    EXPECT_GT(recoveries, 0u) << s.name;
  }
}

TEST(LossRecoverySeeds, ManySeedsConverge) {
  // Property sweep: recovery must converge for a spread of loss patterns.
  constexpr std::size_t kElems = 1500;
  LossyWorld clean(3, FlowControl::Chained, 0.0, 0);
  const long expect = run_workload(clean, kElems);
  for (std::uint64_t seed : {7u, 99u, 1234u, 5555u}) {
    LossyWorld lossy(3, FlowControl::Chained, 0.10, seed);
    EXPECT_EQ(run_workload(lossy, kElems), expect) << "seed " << seed;
  }
}

}  // namespace
}  // namespace repseq::rse
