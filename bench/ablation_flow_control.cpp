// Ablation A3 (paper Sections 5.4.3 and 8): the cost of the conservative
// chained-ack flow control, the projected benefit of a windowed scheme that
// "allows more concurrency in message delivery", and the strawman with no
// flow control at all (which overruns receive buffers and falls back to
// timeout recovery).
#include "bench_common.hpp"

int main() {
  using namespace repseq;
  using namespace repseq::bench;
  using apps::harness::Mode;
  using rse::FlowControl;

  apps::bh::BhConfig cfg = bh_config();
  print_header("Ablation: multicast flow-control policies (Barnes-Hut, Optimized)",
               "PPoPP'01 Sections 5.4.3 / 8 (chained acks are the paper's protocol)",
               (std::string("this run: ") + std::to_string(cfg.bodies) + " bodies, " +
                std::to_string(cfg.steps) + " steps, " + std::to_string(bench_nodes()) +
                " nodes (simulated)")
                   .c_str());

  struct Row {
    const char* name;
    FlowControl flow;
    std::size_t recv_buffer;
  };
  const Row rows[] = {
      {"Chained (paper)", FlowControl::Chained, 64},
      {"Windowed (future work)", FlowControl::Windowed, 64},
      {"None (strawman)", FlowControl::None, 16},
  };

  util::Table t({"policy", "seq time (s)", "total (s)", "seq msgs", "null acks", "drops",
                 "recoveries"});
  double chained_seq = 0;
  double windowed_seq = 0;
  for (const Row& row : rows) {
    auto opt = options_for(Mode::Optimized);
    opt.flow = row.flow;
    opt.net.recv_buffer_msgs = row.recv_buffer;
    const auto r = apps::harness::run_barnes_hut(opt, cfg);
    if (row.flow == FlowControl::Chained) chained_seq = r.seq_s;
    if (row.flow == FlowControl::Windowed) windowed_seq = r.seq_s;
    t.add_row({row.name, fmt2(r.seq_s), fmt2(r.total_s), util::fmt_count(r.seq_msgs),
               util::fmt_count(r.seq_null_acks), util::fmt_count(r.drops),
               util::fmt_count(r.recoveries)});
  }
  std::printf("%s", t.render().c_str());

  std::printf("\nShape checks:\n");
  std::printf("  windowed delivery shortens the replicated sections: %s (%.2fs -> %.2fs)\n",
              windowed_seq < chained_seq ? "yes" : "NO", chained_seq, windowed_seq);
  std::printf("  (the paper anticipates exactly this: \"strategies ... will substantially\n"
              "   improve our results\", Section 8)\n");
  return 0;
}
