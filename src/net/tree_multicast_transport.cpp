#include "net/tree_multicast_transport.hpp"

#include <algorithm>

namespace repseq::net {

std::size_t TreeMulticastTransport::multicast(const Message& msg, std::size_t wire_bytes,
                                              const DeliverFn& deliver) {
  const std::size_t n = nics_.size();
  if (n <= 1) return 0;
  const std::size_t k = std::max<std::size_t>(1, cfg_.mcast_tree_fanout);

  const auto node_at = [&](std::size_t pos) {
    return static_cast<NodeId>((msg.src + pos) % n);
  };

  // at[p]: time the node at tree position p holds the complete frame.
  // Children are forwarded in position order, so an interior node's
  // transmissions serialize on its own uplink after its receive time.
  // Store-and-forward semantics: a node that lost its frame (deliver
  // returned false) has nothing to forward, so its whole subtree is cut
  // off -- exactly the failure mode a real software multicast tree has.
  //
  // Known approximation: all edge reservations are placed at send time,
  // so an interior node's unrelated unicast issued during the propagation
  // window queues behind a forward it has not yet received (instead of
  // ahead of it).  Total uplink utilization is conserved; only the
  // interleaving within that window can be misordered.  Exact modeling
  // needs event-driven per-hop forwarding (see ROADMAP).
  std::vector<sim::SimTime> at(n);
  std::vector<char> reached(n, 0);
  at[0] = eng_.now();
  reached[0] = 1;
  std::size_t frames = 0;
  for (std::size_t p = 0; p < n; ++p) {
    if (!reached[p]) continue;
    for (std::size_t c = k * p + 1; c <= k * p + k && c < n; ++c) {
      at[c] = forward_hop(node_at(p), node_at(c), wire_bytes, at[p]);
      ++frames;
      reached[c] = deliver(node_at(c), at[c]) ? 1 : 0;
    }
  }
  return frames;
}

}  // namespace repseq::net
