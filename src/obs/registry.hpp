// Labeled metrics registry: counters, gauges, and histograms keyed by
// (name, sorted labels).  One Registry lives inside each tmk::Cluster so a
// sweep's runs never contaminate each other; RunReport and the bench tables
// read it through snapshot(), which is deterministically ordered.
//
// This replaces the grow-by-hand PhaseCounters extension path for new
// telemetry: a layer that wants a new number calls
//   cluster.metrics().counter("policy_decisions", {{"site", "1"}}).inc();
// instead of threading a fresh field through stats.hpp, the reducers, and
// every table printer.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "util/stats_accum.hpp"

namespace repseq::obs {

/// Label set for one metric series.  Callers may pass pairs in any order;
/// the registry sorts them so {"a","1"},{"b","2"} and {"b","2"},{"a","1"}
/// name the same series.
using Labels = std::vector<std::pair<std::string, std::string>>;

class Counter {
 public:
  void inc(std::uint64_t by = 1) { value_ += by; }
  [[nodiscard]] std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Histogram metric: a thin veneer over util::Accumulator, which carries
/// the streaming p50/p95/p99 support -- no parallel implementation here.
class Histogram {
 public:
  void observe(double v) { acc_.add(v); }
  [[nodiscard]] const util::Accumulator& accum() const { return acc_; }

 private:
  util::Accumulator acc_;
};

class Registry {
 public:
  /// Looks up or creates the series; references stay valid for the
  /// registry's lifetime (node-based map storage).
  Counter& counter(const std::string& name, Labels labels = {});
  Gauge& gauge(const std::string& name, Labels labels = {});
  Histogram& histogram(const std::string& name, Labels labels = {});

  struct Series {
    std::string name;
    Labels labels;  // sorted
    enum class Kind { Counter, Gauge, Histogram } kind;
    std::uint64_t counter_value = 0;
    double gauge_value = 0.0;
    const util::Accumulator* hist = nullptr;  // valid while the Registry lives
  };

  /// All series sorted by (name, labels) -- safe to print or diff.
  [[nodiscard]] std::vector<Series> snapshot() const;

  /// Convenience point lookups for report code; zero / empty when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name,
                                            Labels labels = {}) const;
  [[nodiscard]] double gauge_value(const std::string& name, Labels labels = {}) const;

  /// Distinct values of `label` seen across series named `name`, sorted.
  [[nodiscard]] std::vector<std::string> label_values(const std::string& name,
                                                      const std::string& label) const;

 private:
  using Key = std::pair<std::string, Labels>;
  static Key make_key(const std::string& name, Labels labels);

  std::map<Key, Counter> counters_;
  std::map<Key, Gauge> gauges_;
  std::map<Key, Histogram> histograms_;
};

}  // namespace repseq::obs
