#!/usr/bin/env python3
"""Perf regression gate for the simulator's pinned sweep (bench/perf_sim).

Compares the events/sec of each (app, nodes) run in a freshly produced
BENCH_sim.json against the committed baseline and fails if any run regressed
by more than the tolerance (default 25%, matching the CI contract).  Runs
present in only one file are ignored, so a REPSEQ_NODES-capped CI sweep can
be checked against a full-sweep baseline.

Usage:  check_perf_regression.py CURRENT.json BASELINE.json [--tolerance 0.25]

The baseline is machine-dependent: refresh bench/BENCH_sim_baseline.json
(commit the new file) whenever the CI runner class changes or an intentional
engine change moves the numbers.
"""

import argparse
import json
import sys


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["app"], r["nodes"]): r for r in doc.get("runs", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional events/sec drop (default 0.25)")
    args = ap.parse_args()

    current = load_runs(args.current)
    baseline = load_runs(args.baseline)
    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("error: no (app, nodes) runs in common between "
              f"{args.current} and {args.baseline}", file=sys.stderr)
        return 2

    failures = []
    for key in shared:
        cur = current[key]["events_per_sec"]
        base = baseline[key]["events_per_sec"]
        if base <= 0:
            continue
        ratio = cur / base
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSED"
            failures.append(key)
        print(f"{key[0]:>12} n={key[1]:<5} {cur:>14.0f} ev/s "
              f"(baseline {base:.0f}, {ratio:5.2f}x)  {status}")

    # Correctness cross-check rides along for free: pinned runs must
    # reproduce the baseline's checksums exactly, whatever the speed.
    for key in shared:
        if abs(current[key]["checksum"] - baseline[key]["checksum"]) > 1e-6:
            print(f"error: checksum changed for {key}: "
                  f"{current[key]['checksum']} != {baseline[key]['checksum']}",
                  file=sys.stderr)
            failures.append(key)

    if failures:
        print(f"\nFAIL: {len(failures)} run(s) regressed more than "
              f"{args.tolerance:.0%} (or changed results)", file=sys.stderr)
        return 1
    print(f"\nOK: {len(shared)} run(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
