#include "net/network.hpp"

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace repseq::net {

Network::Network(sim::Engine& eng, NetConfig cfg, std::size_t nodes)
    : eng_(eng), cfg_(cfg), loss_rng_(cfg.loss_seed) {
  REPSEQ_CHECK(nodes >= 1, "network needs at least one node");
  nics_.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    nics_.push_back(std::make_unique<Nic>(eng_, cfg_, static_cast<NodeId>(n)));
  }
  transport_ = make_transport(eng_, cfg_, nics_);
}

bool Network::deliver_at(sim::SimTime t, NodeId dst, const Message& msg) {
  if (lose_frame(msg)) return false;
  eng_.schedule_at(t, [this, dst, msg] {
    if (nics_[dst]->deliver(msg)) {
      ++deliveries_;
    }
  });
  return true;
}

std::uint64_t Network::unicast(Message msg, SendAccount account) {
  REPSEQ_CHECK(msg.src < nics_.size(), "bad unicast src");
  REPSEQ_CHECK(msg.dst < nics_.size(), "bad unicast dst");
  REPSEQ_CHECK(msg.dst != msg.src, "unicast to self");
  msg.id = next_id_++;
  const std::size_t wire = cfg_.wire_bytes(msg.payload_bytes);
  if (tap_) tap_(msg, wire, /*is_multicast=*/false);
  if (obs::enabled(obs::Cat::Net)) [[unlikely]] {
    obs::tracer().instant(obs::Cat::Net, eng_.now(), static_cast<std::int32_t>(msg.src) + 1,
                          "net", "unicast",
                          {{"dst", static_cast<double>(msg.dst)},
                           {"wire_bytes", static_cast<double>(wire)},
                           {"kind", static_cast<double>(msg.kind)}});
  }
  const sim::SimTime sent = eng_.now();

  if (!transport_->defers_delivery()) {
    // Synchronous backends: both callbacks fire inside this call, so the
    // whole send stays on the stack -- no per-send allocation.
    transport_->unicast(
        msg, wire,
        [&](NodeId dst, sim::SimTime at) {
          REPSEQ_CHECK(at >= sent, "transport delivered into the past");
          return deliver_at(at, dst, msg);
        },
        [&](std::size_t frames, std::size_t bytes) {
          messages_sent_ += frames;
          bytes_sent_ += bytes;
          if (account) account(frames, bytes);
        });
    return msg.id;
  }

  // Coalescing backend: the frame leaves (and is charged) at the window
  // flush, after this call returns, so the callbacks must own their state.
  // The loss draw also moves to commit time, per constituent.
  struct UniSend {
    Network* nw;
    Message msg;
    sim::SimTime sent;
    SendAccount account;
  };
  auto u = util::make_pooled<UniSend>(UniSend{this, std::move(msg), sent, std::move(account)});
  transport_->unicast(
      u->msg, wire,
      [u](NodeId dst, sim::SimTime at) {
        REPSEQ_CHECK(at >= u->sent, "transport delivered into the past");
        return u->nw->deliver_at(at, dst, u->msg);
      },
      [u](std::size_t frames, std::size_t bytes) {
        u->nw->messages_sent_ += frames;
        u->nw->bytes_sent_ += bytes;
        if (u->account) u->account(frames, bytes);
      });
  return u->msg.id;
}

void Network::flush_group_schedule(const std::vector<std::pair<sim::SimTime, NodeId>>& sched,
                                   const Message& msg) {
  // One simulation event per run of equal delivery times: the hub reaches
  // every receiver simultaneously, so its group send stays a single event.
  for (std::size_t i = 0; i < sched.size();) {
    std::size_t j = i;
    while (j < sched.size() && sched[j].first == sched[i].first) ++j;
    std::vector<NodeId> group;
    group.reserve(j - i);
    for (std::size_t g = i; g < j; ++g) group.push_back(sched[g].second);
    eng_.schedule_at(sched[i].first, [this, group = std::move(group), msg] {
      for (NodeId n : group) {
        if (nics_[n]->deliver(msg)) ++deliveries_;
      }
    });
    i = j;
  }
}

bool Network::lose_frame(const Message& msg) {
  if (cfg_.loss_probability > 0.0 && (!lossable_ || lossable_(msg)) &&
      loss_rng_.chance(cfg_.loss_probability)) {
    ++losses_injected_;
    if (obs::enabled(obs::Cat::Net)) [[unlikely]] {
      obs::tracer().instant(obs::Cat::Net, eng_.now(), 0, "net", "loss-drop",
                            {{"src", static_cast<double>(msg.src)},
                             {"dst", static_cast<double>(msg.dst)},
                             {"kind", static_cast<double>(msg.kind)}});
    }
    return true;
  }
  return false;
}

std::uint64_t Network::multicast(Message msg, SendAccount account) {
  REPSEQ_CHECK(msg.src < nics_.size(), "bad multicast src");
  msg.dst = kMulticastDst;
  msg.id = next_id_++;
  const std::size_t wire = cfg_.wire_bytes(msg.payload_bytes);
  if (tap_) tap_(msg, wire, /*is_multicast=*/true);
  if (obs::enabled(obs::Cat::Net)) [[unlikely]] {
    obs::tracer().instant(obs::Cat::Net, eng_.now(), static_cast<std::int32_t>(msg.src) + 1,
                          "net", "multicast",
                          {{"group", static_cast<double>(msg.mcast_group)},
                           {"wire_bytes", static_cast<double>(wire)},
                           {"kind", static_cast<double>(msg.kind)}});
  }
  const sim::SimTime sent = eng_.now();

  // Frame accounting is backend-dependent: a true multicast medium carries
  // one frame regardless of group size (paper: "each multicast message is
  // counted as a single message"); unicast-composed backends pay per edge
  // actually transmitted, reported hop by hop.

  if (!transport_->defers_delivery()) {
    // Synchronous backends: every callback fires inside this call, so the
    // whole send stays on the stack -- no per-send allocation.
    std::vector<std::pair<sim::SimTime, NodeId>> sched;
    transport_->multicast(
        msg, wire,
        [&](NodeId dst, sim::SimTime at) {
          REPSEQ_CHECK(at >= sent, "transport delivered into the past");
          if (lose_frame(msg)) return false;
          sched.emplace_back(at, dst);
          return true;
        },
        [&](std::size_t frames, std::size_t bytes) {
          messages_sent_ += frames;
          bytes_sent_ += bytes;
          if (account) account(frames, bytes);
        });
    flush_group_schedule(sched, msg);
    return msg.id;
  }

  // Event-driven backend: interior hops commit from deferred forwarding
  // events, so both callbacks outlive this call and must own their state
  // (loss can prune a forwarding tree's subtrees before they are charged).
  struct Burst {
    Network* nw;
    Message msg;
    sim::SimTime sent;
    SendAccount account;
    /// Deliveries reported synchronously (the root's own hops), batched
    /// by flush_group_schedule like any synchronous send.
    bool collecting = true;
    std::vector<std::pair<sim::SimTime, NodeId>> sched;
  };
  auto b = util::make_pooled<Burst>(
      Burst{this, std::move(msg), sent, std::move(account), /*collecting=*/true, {}});

  transport_->multicast(
      b->msg, wire,
      [b](NodeId dst, sim::SimTime at) {
        Network& nw = *b->nw;
        REPSEQ_CHECK(at >= b->sent, "transport delivered into the past");
        if (nw.lose_frame(b->msg)) return false;
        if (b->collecting) {
          b->sched.emplace_back(at, dst);
        } else {
          // Deferred forwarding hop: schedule this receiver on its own.
          nw.eng_.schedule_at(at, [&nw, dst, msg = b->msg] {
            if (nw.nics_[dst]->deliver(msg)) ++nw.deliveries_;
          });
        }
        return true;
      },
      [b](std::size_t frames, std::size_t bytes) {
        b->nw->messages_sent_ += frames;
        b->nw->bytes_sent_ += bytes;
        if (b->account) b->account(frames, bytes);
      });

  b->collecting = false;
  flush_group_schedule(b->sched, b->msg);
  b->sched.clear();
  return b->msg.id;
}

std::uint64_t Network::total_drops() const {
  std::uint64_t d = 0;
  for (const auto& nic : nics_) d += nic->drops();
  return d;
}

}  // namespace repseq::net
