#!/usr/bin/env python3
"""Perf regression gate for the simulator's pinned sweep (bench/perf_sim).

Compares the events/sec of each (app, nodes) run in a freshly produced
BENCH_sim.json against the committed baseline and fails if any run regressed
by more than the tolerance (default 25%, matching the CI contract).

Coverage is part of the gate: a baseline run missing from the current sweep
fails the check -- a silent skip would let a deleted or crashed benchmark
sail through.  The one sanctioned gap is a REPSEQ_NODES-capped CI sweep
checked against a full-sweep baseline: a baseline (app, nodes) run is
excused only when the current file does run that app, just never at that
many nodes.  Runs only the current file has (a freshly added benchmark) are
reported and ignored.

Usage:  check_perf_regression.py CURRENT.json BASELINE.json [--tolerance 0.25]

The baseline is machine-dependent: refresh bench/BENCH_sim_baseline.json
(commit the new file) whenever the CI runner class changes or an intentional
engine change moves the numbers.
"""

import argparse
import json
import sys


def load_runs(path):
    with open(path) as f:
        doc = json.load(f)
    return {(r["app"], r["nodes"]): r for r in doc.get("runs", [])}


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("current")
    ap.add_argument("baseline")
    ap.add_argument("--tolerance", type=float, default=0.25,
                    help="allowed fractional events/sec drop (default 0.25)")
    args = ap.parse_args()

    current = load_runs(args.current)
    baseline = load_runs(args.baseline)
    shared = sorted(set(current) & set(baseline))
    if not shared:
        print("error: no (app, nodes) runs in common between "
              f"{args.current} and {args.baseline}", file=sys.stderr)
        return 2

    failures = []

    # Coverage gate: every baseline run must appear in the current sweep.
    # The only excused absence is a node-count the current sweep was capped
    # below (the app itself still ran); a whole app vanishing is a failure.
    max_nodes = {}
    for app, nodes in current:
        max_nodes[app] = max(nodes, max_nodes.get(app, 0))
    for key in sorted(set(baseline) - set(current)):
        app, nodes = key
        if app not in max_nodes:
            print(f"error: baseline app '{app}' is missing entirely from "
                  f"{args.current}", file=sys.stderr)
            failures.append(key)
        elif nodes <= max_nodes[app]:
            print(f"error: baseline run {key} is missing from "
                  f"{args.current} (app ran up to n={max_nodes[app]})",
                  file=sys.stderr)
            failures.append(key)
        else:
            print(f"{app:>12} n={nodes:<5} skipped (node-capped sweep, "
                  f"current max n={max_nodes[app]})")
    for key in sorted(set(current) - set(baseline)):
        print(f"{key[0]:>12} n={key[1]:<5} new run, no baseline -- ignored")
    for key in shared:
        cur = current[key]["events_per_sec"]
        base = baseline[key]["events_per_sec"]
        if base <= 0:
            continue
        ratio = cur / base
        status = "ok"
        if ratio < 1.0 - args.tolerance:
            status = "REGRESSED"
            failures.append(key)
        print(f"{key[0]:>12} n={key[1]:<5} {cur:>14.0f} ev/s "
              f"(baseline {base:.0f}, {ratio:5.2f}x)  {status}")

    # Correctness cross-check rides along for free: pinned runs must
    # reproduce the baseline's checksums exactly, whatever the speed.
    for key in shared:
        if abs(current[key]["checksum"] - baseline[key]["checksum"]) > 1e-6:
            print(f"error: checksum changed for {key}: "
                  f"{current[key]['checksum']} != {baseline[key]['checksum']}",
                  file=sys.stderr)
            failures.append(key)

    if failures:
        print(f"\nFAIL: {len(failures)} run(s) regressed more than "
              f"{args.tolerance:.0%}, changed results, or went missing",
              file=sys.stderr)
        return 1
    print(f"\nOK: {len(shared)} run(s) within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
