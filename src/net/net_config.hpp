// Network and cost-model parameters for the simulated network of
// workstations.  Defaults are calibrated to the paper's testbed class:
// 800 MHz Athlon nodes on 100 Mbps switched Ethernet (unicast) plus a
// 100 Mbps hub (multicast), UDP user-level messaging (TreadMarks 1.0.3).
//
// Calibration targets are the paper's *measured* protocol latencies:
// an uncontended diff-request round trip of ~0.7-0.9 ms and a contended
// one of ~3.0-3.4 ms on 32 nodes (Tables 2 and 4).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

#include "sim/clock.hpp"

namespace repseq::net {

/// Which wire model carries the cluster's traffic (see net/transport.hpp).
enum class TransportKind {
  /// Unicast rides the switch, multicast rides the shared hub (the paper's
  /// testbed: switched Ethernet + a multicast hub).
  HubSwitch,
  /// Software multicast: a k-ary forwarding tree of switched unicasts with
  /// per-hop latency (the Section 6.1.2 hand-inserted tree broadcast).
  TreeMulticast,
  /// Strawman: multicast as a per-destination unicast fan-out serialized on
  /// the source uplink.
  DirectAll,
  /// S independent hub media (NetConfig::hub_shards); each multicast group
  /// hashes to one shard, so rounds on disjoint groups never serialize on
  /// the same medium.  S = 1 degenerates to HubSwitch frame for frame.
  ShardedHub,
};

[[nodiscard]] constexpr const char* transport_name(TransportKind k) {
  switch (k) {
    case TransportKind::HubSwitch:
      return "hub-switch";
    case TransportKind::TreeMulticast:
      return "tree-multicast";
    case TransportKind::DirectAll:
      return "direct-all";
    case TransportKind::ShardedHub:
      return "sharded-hub";
  }
  return "?";
}

/// Parses a transport selection from a CLI flag / environment variable.
/// Accepts the canonical names plus short aliases ("hub", "tree", "direct",
/// "sharded").
[[nodiscard]] inline std::optional<TransportKind> parse_transport(std::string_view s) {
  if (s == "hub" || s == "hub-switch") return TransportKind::HubSwitch;
  if (s == "tree" || s == "tree-multicast") return TransportKind::TreeMulticast;
  if (s == "direct" || s == "direct-all") return TransportKind::DirectAll;
  if (s == "sharded" || s == "sharded-hub") return TransportKind::ShardedHub;
  return std::nullopt;
}

/// Deterministic multicast-group -> shard mapping shared by the sharded-hub
/// medium and the per-shard round serialization above it (both sides MUST
/// agree on the placement or rounds would serialize on the wrong medium).
/// splitmix64 finalizer: cheap, well-dispersed, stable across runs.
[[nodiscard]] constexpr std::size_t shard_of(std::uint64_t group, std::size_t shards) {
  if (shards <= 1) return 0;
  std::uint64_t x = group + 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  x ^= x >> 31;
  return static_cast<std::size_t>(x % shards);
}

/// Parses a coalescing-window selection (REPSEQ_BATCH_WINDOW / CLI): a
/// non-negative integer count of virtual microseconds.  0 disables
/// coalescing entirely (the frame-for-frame behaviour of the unwrapped
/// backends).  Returns nullopt on anything else -- callers fail loud.
[[nodiscard]] inline std::optional<sim::SimDuration> parse_batch_window(std::string_view s) {
  if (s.empty()) return std::nullopt;
  std::int64_t us = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return std::nullopt;
    us = us * 10 + (c - '0');
    if (us > 1'000'000'000) return std::nullopt;  // > 1000 virtual seconds: nonsense
  }
  return sim::microseconds(us);
}

struct NetConfig {
  /// Transport backend carrying unicast and multicast traffic.
  TransportKind transport = TransportKind::HubSwitch;

  /// Frame-coalescing window.  When nonzero, outgoing frames queued for the
  /// same destination (unicast) / the same medium shard (multicast) within
  /// this span of virtual time leave as ONE combined wire frame:
  /// net::BatchingTransport wraps the selected backend, and the forwarding
  /// tree additionally piggybacks concurrent group forwards per interior
  /// edge.  Zero (the default) means no wrapping -- behaviour is
  /// frame-for-frame identical to the unwrapped backend.
  sim::SimDuration batch_window{};

  /// Fan-out of the TreeMulticast forwarding tree (k-ary, k >= 1).
  std::size_t mcast_tree_fanout = 2;

  /// Number of independent hub media for the ShardedHub transport (S >= 1).
  /// Ignored by every other backend.
  std::size_t hub_shards = 4;

  /// Link rate of each node's switched full-duplex port, bytes per second.
  /// 100 Mbps = 12.5 MB/s.
  double link_bytes_per_sec = 12.5e6;

  /// Rate of the shared half-duplex multicast hub, bytes per second.
  double hub_bytes_per_sec = 12.5e6;

  /// Propagation + store-and-forward fixed latency per unicast hop
  /// (node->switch or switch->node).
  sim::SimDuration hop_latency = sim::microseconds(5);

  /// Fixed latency for a frame across the hub.
  sim::SimDuration hub_latency = sim::microseconds(5);

  /// Software send cost charged to the sending CPU per message
  /// (UDP stack traversal, ~70 us on an 800 MHz machine).
  sim::SimDuration send_overhead = sim::microseconds(70);

  /// Software receive/dispatch cost per message on the destination.
  sim::SimDuration recv_overhead = sim::microseconds(35);

  /// Capacity of a node's receive ring in messages.  Arrivals beyond this
  /// are dropped (the buffer-overflow hazard of paper Section 5.4 that
  /// motivates flow control).
  std::size_t recv_buffer_msgs = 64;

  /// Per-frame maximum transfer unit.  Larger payloads are charged as
  /// multiple frames' worth of wire time (fragmentation), all-or-nothing
  /// delivery as in TreadMarks' UDP usage.
  std::size_t mtu_bytes = 1500;

  /// Fixed header bytes added per message (UDP/IP/Ethernet).
  std::size_t header_bytes = 42;

  /// Probability that any given delivery is lost (loss injection for
  /// testing the recovery path).  Zero by default.
  double loss_probability = 0.0;

  /// Seed for the loss-injection RNG.
  std::uint64_t loss_seed = 0x5eed;

  /// Computes serialized wire size (payload + per-fragment headers).
  [[nodiscard]] std::size_t wire_bytes(std::size_t payload) const {
    const std::size_t max_frag = mtu_bytes - header_bytes;
    const std::size_t frags = payload == 0 ? 1 : (payload + max_frag - 1) / max_frag;
    return payload + frags * header_bytes;
  }

  /// Serialization time of one frame on a switched link (uplink or switch
  /// port).  The single source of the bytes -> wire-time conversion: every
  /// link-rate resource (Nic, SwitchFabric, the tree transport's busy
  /// accounting) must agree to the nanosecond or occupancy conservation
  /// checks drift.
  [[nodiscard]] sim::SimDuration link_tx_time(std::size_t bytes) const {
    return sim::SimDuration{static_cast<std::int64_t>(
        static_cast<double>(bytes) / link_bytes_per_sec * 1e9)};
  }

  /// Serialization time of one frame on the shared multicast hub medium.
  [[nodiscard]] sim::SimDuration hub_tx_time(std::size_t bytes) const {
    return sim::SimDuration{static_cast<std::int64_t>(
        static_cast<double>(bytes) / hub_bytes_per_sec * 1e9)};
  }
};

}  // namespace repseq::net
