// Alternatives to replicated sequential execution, used by the ablation
// benchmarks:
//
//  * broadcast_section_updates -- "multicast all data modified during the
//    sequential execution to all threads before parallel execution starts"
//    (paper Section 4.2).  Applied to Barnes-Hut's tree build it is exactly
//    the hand-inserted tree broadcast of Section 6.1.2, which the authors
//    used to separate the contention-elimination benefit from the particle
//    broadcast benefit.
#pragma once

#include "tmk/runtime.hpp"
#include "tmk/vector_clock.hpp"

namespace repseq::rse {

/// Multicasts every diff the master created in intervals newer than
/// `since` to all nodes, which apply them eagerly, then waits for all
/// acknowledgments.  Call on the master's application fiber immediately
/// after a (non-replicated) sequential section; `since` is the master's
/// vector clock from just before the section.
void broadcast_section_updates(tmk::NodeRuntime& master, const tmk::VectorClock& since);

}  // namespace repseq::rse
