// The paper's testbed wiring: unicast rides the switch, multicast rides the
// shared half-duplex hub (their switch forwarded multicast slowly).  A hub
// frame reaches every group member simultaneously.
#pragma once

#include "net/hub.hpp"
#include "net/transport.hpp"

namespace repseq::net {

class HubSwitchTransport final : public SwitchedTransport {
 public:
  HubSwitchTransport(sim::Engine& eng, const NetConfig& cfg,
                     std::vector<std::unique_ptr<Nic>>& nics)
      : SwitchedTransport(eng, cfg, nics), hub_(eng, cfg) {}

  void multicast(const Message& msg, std::size_t wire_bytes, const DeliverFn& deliver,
                 const AccountFn& account) override;

  /// The single hub is shard 0 of a one-shard medium.
  [[nodiscard]] sim::SimDuration shard_busy(std::size_t s) const override {
    return s == 0 ? hub_.busy_total() : sim::SimDuration{};
  }

 private:
  Hub hub_;
};

}  // namespace repseq::net
