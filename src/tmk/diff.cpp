#include "tmk/diff.hpp"

#include <cstring>

#include "util/check.hpp"

namespace repseq::tmk {

namespace {
inline std::uint32_t word_at(std::span<const std::byte> page, std::size_t w) {
  std::uint32_t v;
  std::memcpy(&v, page.data() + 4 * w, 4);
  return v;
}
}  // namespace

Diff Diff::create(std::span<const std::byte> twin, std::span<const std::byte> current) {
  REPSEQ_CHECK(twin.size() == current.size(), "twin/page size mismatch");
  REPSEQ_CHECK(twin.size() % 4 == 0, "page size must be a multiple of 4");
  const std::size_t words = twin.size() / 4;

  // Counting pre-pass: word comparisons are cheap relative to allocator
  // traffic, so scanning twice buys exact-size buffers (no growth
  // reallocations, no per-run vectors).
  std::size_t n_runs = 0;
  std::size_t n_words = 0;
  bool in_run = false;
  for (std::size_t w = 0; w < words; ++w) {
    if (word_at(twin, w) != word_at(current, w)) {
      if (!in_run) {
        ++n_runs;
        in_run = true;
      }
      ++n_words;
    } else {
      in_run = false;
    }
  }

  Diff d;
  if (n_runs == 0) return d;
  d.headers_.reserve(n_runs);
  d.words_.reserve(n_words);

  std::size_t w = 0;
  while (w < words) {
    while (w < words && word_at(twin, w) == word_at(current, w)) ++w;
    if (w >= words) break;
    RunHeader h;
    h.word_index = static_cast<std::uint32_t>(w);
    h.begin = static_cast<std::uint32_t>(d.words_.size());
    while (w < words && word_at(twin, w) != word_at(current, w)) {
      d.words_.push_back(word_at(current, w));
      ++w;
    }
    h.length = static_cast<std::uint32_t>(d.words_.size()) - h.begin;
    d.headers_.push_back(h);
  }
  return d;
}

void Diff::apply(std::span<std::byte> page) const {
  for (const RunHeader& h : headers_) {
    REPSEQ_CHECK((h.word_index + h.length) * std::size_t{4} <= page.size(),
                 "diff run out of range");
    std::memcpy(page.data() + 4 * h.word_index, words_.data() + h.begin, 4 * std::size_t{h.length});
  }
}

}  // namespace repseq::tmk
