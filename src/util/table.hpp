// Plain-text table renderer used by the benchmark harness to print each of
// the paper's tables in a `paper value | measured value` layout.
#pragma once

#include <string>
#include <vector>

namespace repseq::util {

/// A right-aligned column table with a left-aligned label column, rendered
/// with ASCII rules.  Cells are free-form strings; numeric formatting is the
/// caller's concern (helpers below).
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// A horizontal separator line between row groups.
  void add_rule();

  [[nodiscard]] std::string render() const;

 private:
  struct Row {
    std::vector<std::string> cells;
    bool rule = false;
  };
  std::vector<std::string> headers_;
  std::vector<Row> rows_;
};

/// Formats with `digits` decimal places.
std::string fmt_fixed(double v, int digits);
/// Formats an integral count with thousands separators: 1234567 -> "1,234,567".
std::string fmt_count(std::uint64_t v);
/// Formats a ratio as "NxM%" style percentage change string, e.g. "+51%".
std::string fmt_pct_change(double base, double improved);

}  // namespace repseq::util
