// Global (shared) addresses.  TreadMarks keeps shared data on a shared heap
// mapped at the same address on every node; we represent a shared address as
// a byte offset into that heap, translated per-node to local backing memory.
#pragma once

#include <compare>
#include <cstdint>

namespace repseq::tmk {

using PageId = std::uint32_t;

/// A byte offset into the shared heap.  Value 0 is a valid address (heap
/// start); use GAddr::null() / is_null() for "no address" semantics.
struct GAddr {
  static constexpr std::uint64_t kNull = ~0ull;

  std::uint64_t off = kNull;

  [[nodiscard]] static constexpr GAddr null() { return GAddr{}; }
  [[nodiscard]] constexpr bool is_null() const { return off == kNull; }

  constexpr auto operator<=>(const GAddr&) const = default;
  constexpr GAddr operator+(std::uint64_t delta) const { return GAddr{off + delta}; }
};

/// Page arithmetic helpers.
constexpr PageId page_of(GAddr a, std::size_t page_bytes) {
  return static_cast<PageId>(a.off / page_bytes);
}
constexpr std::size_t page_offset(GAddr a, std::size_t page_bytes) {
  return static_cast<std::size_t>(a.off % page_bytes);
}

}  // namespace repseq::tmk
