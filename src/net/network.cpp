#include "net/network.hpp"

#include "util/check.hpp"

namespace repseq::net {

Network::Network(sim::Engine& eng, NetConfig cfg, std::size_t nodes)
    : eng_(eng),
      cfg_(cfg),
      switch_(eng, cfg_, nodes),
      hub_(eng, cfg_),
      loss_rng_(cfg.loss_seed) {
  REPSEQ_CHECK(nodes >= 1, "network needs at least one node");
  nics_.reserve(nodes);
  for (std::size_t n = 0; n < nodes; ++n) {
    nics_.push_back(std::make_unique<Nic>(eng_, cfg_, static_cast<NodeId>(n)));
  }
}

void Network::deliver_at(sim::SimTime t, NodeId dst, const Message& msg) {
  if (cfg_.loss_probability > 0.0 && (!lossable_ || lossable_(msg)) &&
      loss_rng_.chance(cfg_.loss_probability)) {
    ++losses_injected_;
    return;
  }
  eng_.schedule_at(t, [this, dst, msg] {
    if (nics_[dst]->deliver(msg)) {
      ++deliveries_;
    }
  });
}

std::uint64_t Network::unicast(Message msg) {
  REPSEQ_CHECK(msg.src < nics_.size(), "bad unicast src");
  REPSEQ_CHECK(msg.dst < nics_.size(), "bad unicast dst");
  REPSEQ_CHECK(msg.dst != msg.src, "unicast to self");
  msg.id = next_id_++;
  const std::size_t wire = cfg_.wire_bytes(msg.payload_bytes);
  ++messages_sent_;
  bytes_sent_ += wire;
  if (tap_) tap_(msg, wire, /*is_multicast=*/false);

  const sim::SimTime at_switch = nics_[msg.src]->reserve_uplink(wire) + cfg_.hop_latency;
  const sim::SimTime at_dst = switch_.forward(msg.dst, wire, at_switch);
  deliver_at(at_dst, msg.dst, msg);
  return msg.id;
}

std::uint64_t Network::multicast(Message msg) {
  REPSEQ_CHECK(msg.src < nics_.size(), "bad multicast src");
  msg.dst = kMulticastDst;
  msg.id = next_id_++;
  const std::size_t wire = cfg_.wire_bytes(msg.payload_bytes);
  // A multicast frame is one message on the wire regardless of group size
  // (paper: "each multicast message is counted as a single message").
  ++messages_sent_;
  bytes_sent_ += wire;
  if (tap_) tap_(msg, wire, /*is_multicast=*/true);

  const sim::SimTime done = hub_.transmit(wire, eng_.now());
  // One simulation event delivers the frame to every member (the hub
  // reaches all receivers simultaneously); loss is still per receiver.
  std::vector<NodeId> receivers;
  receivers.reserve(nics_.size() - 1);
  for (NodeId n = 0; n < nics_.size(); ++n) {
    if (n == msg.src) continue;  // sender consumes its own data locally
    if (cfg_.loss_probability > 0.0 && (!lossable_ || lossable_(msg)) &&
        loss_rng_.chance(cfg_.loss_probability)) {
      ++losses_injected_;
      continue;
    }
    receivers.push_back(n);
  }
  eng_.schedule_at(done, [this, receivers = std::move(receivers), msg] {
    for (NodeId n : receivers) {
      if (nics_[n]->deliver(msg)) ++deliveries_;
    }
  });
  return msg.id;
}

std::uint64_t Network::total_drops() const {
  std::uint64_t d = 0;
  for (const auto& nic : nics_) d += nic->drops();
  return d;
}

}  // namespace repseq::net
