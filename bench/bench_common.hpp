// Shared scaffolding for the table-reproduction benchmarks: default scaled
// workload configurations, environment-variable overrides, and the
// paper-vs-measured table layout.
//
// Absolute numbers are not expected to match the paper (the substrate is a
// calibrated simulator and the workloads are scaled down; see
// EXPERIMENTS.md); every harness prints the paper's value next to the
// measured one so the *shape* can be checked row by row.
#pragma once

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "apps/harness/run_modes.hpp"
#include "util/table.hpp"

namespace repseq::bench {

/// Reads an integer override from the environment (REPSEQ_<NAME>).
inline long env_long(const char* name, long fallback) {
  const std::string var = std::string("REPSEQ_") + name;
  const char* v = std::getenv(var.c_str());
  return v != nullptr ? std::atol(v) : fallback;
}

/// A malformed axis value must kill the run, not silently fall back: a
/// sweep that quietly ran the wrong transport/policy/flow produces tables
/// that look fine and mean nothing.
[[noreturn]] inline void env_value_error(const char* var, const char* got,
                                         const char* accepted) {
  std::fprintf(stderr, "error: unknown %s '%s' (accepted: %s)\n", var, got, accepted);
  std::exit(2);
}

inline std::size_t bench_nodes() { return static_cast<std::size_t>(env_long("NODES", 32)); }

/// The wire backend for a sweep: REPSEQ_TRANSPORT=hub|tree|direct|sharded
/// overrides the bench's own default, so every sweep can run on any
/// transport.
inline net::TransportKind bench_transport(
    net::TransportKind fallback = net::TransportKind::HubSwitch) {
  const char* v = std::getenv("REPSEQ_TRANSPORT");
  if (v == nullptr) return fallback;
  const auto k = net::parse_transport(v);
  if (!k) env_value_error("REPSEQ_TRANSPORT", v, "hub|tree|direct|sharded");
  return *k;
}

/// Shard count for the sharded-hub backend (REPSEQ_HUB_SHARDS=S).
inline std::size_t bench_hub_shards() {
  return static_cast<std::size_t>(std::max(1L, env_long("HUB_SHARDS", 4)));
}

/// Adaptive-mode decision procedure: REPSEQ_POLICY=static|greedy|hysteresis
/// (parsed by rse::policy::parse_policy, the single parser for the axis --
/// the mode and flow axes live in apps::harness::parse_mode/parse_flow and
/// the transport axis in net::parse_transport).
inline rse::policy::PolicyKind bench_policy(
    rse::policy::PolicyKind fallback = rse::policy::PolicyKind::Hysteresis) {
  const char* v = std::getenv("REPSEQ_POLICY");
  if (v == nullptr) return fallback;
  const auto k = rse::policy::parse_policy(v);
  if (!k) env_value_error("REPSEQ_POLICY", v, "static|greedy|hysteresis");
  return *k;
}

/// RSE flow-control variant: REPSEQ_FLOW=chained|windowed|none overrides a
/// bench's default so any sweep can be repeated under another scheme.
inline rse::FlowControl bench_flow(rse::FlowControl fallback = rse::FlowControl::Chained) {
  const char* v = std::getenv("REPSEQ_FLOW");
  if (v == nullptr) return fallback;
  const auto f = apps::harness::parse_flow(v);
  if (!f) env_value_error("REPSEQ_FLOW", v, "chained|windowed|none");
  return *f;
}

/// Per-site strategy pins for adaptive A/B runs:
/// REPSEQ_PIN_SITE=<site>=<strategy>[,<site>=<strategy>...], strategies
/// master-only|replicated|broadcast.  A pinned site always executes the
/// pinned strategy (its first occurrence skips the bootstrap probe).
inline std::map<std::uint32_t, rse::policy::SectionStrategy> bench_pin_sites() {
  const char* v = std::getenv("REPSEQ_PIN_SITE");
  if (v == nullptr) return {};
  const auto pins = rse::policy::parse_pin_sites(v);
  if (!pins) {
    env_value_error("REPSEQ_PIN_SITE", v,
                    "<site>=<master-only|replicated|broadcast>[,...]");
  }
  return *pins;
}

/// Frame-coalescing window in virtual microseconds:
/// REPSEQ_BATCH_WINDOW=<us> (0 = no coalescing, the default).  Malformed
/// values fail loud like every other axis.
inline sim::SimDuration bench_batch_window(sim::SimDuration fallback = {}) {
  const char* v = std::getenv("REPSEQ_BATCH_WINDOW");
  if (v == nullptr) return fallback;
  const auto w = net::parse_batch_window(v);
  if (!w) env_value_error("REPSEQ_BATCH_WINDOW", v, "non-negative integer microseconds");
  return *w;
}

/// Node counts for the cluster-size sweeps, capped by REPSEQ_NODES so CI
/// smoke runs can bound their cost (e.g. REPSEQ_NODES=8 keeps {2,4,8}).
inline std::vector<std::size_t> sweep_node_counts() {
  std::vector<std::size_t> out;
  for (std::size_t n : {2, 4, 8, 16, 24, 32}) {
    if (n <= std::max<std::size_t>(2, bench_nodes())) out.push_back(n);
  }
  return out;
}

/// NetConfig with the env-selected transport + shard count applied.
inline net::NetConfig bench_net_config() {
  net::NetConfig ncfg;
  ncfg.transport = bench_transport();
  ncfg.hub_shards = bench_hub_shards();
  ncfg.batch_window = bench_batch_window();
  return ncfg;
}

/// The scaled Barnes-Hut workload (paper: 131072 bodies, 2 steps).
inline apps::bh::BhConfig bh_config() {
  apps::bh::BhConfig cfg;
  cfg.bodies = static_cast<int>(env_long("BH_BODIES", 4096));
  cfg.steps = static_cast<int>(env_long("BH_STEPS", 2));
  return cfg;
}

/// The scaled Ilink workload (paper: CLP input, 180 iterations).
inline apps::ilink::IlinkConfig ilink_config() {
  apps::ilink::IlinkConfig cfg;
  cfg.families = static_cast<int>(env_long("ILINK_FAMILIES", cfg.families));
  cfg.children = static_cast<int>(env_long("ILINK_CHILDREN", cfg.children));
  cfg.genotypes = static_cast<int>(env_long("ILINK_GENOTYPES", cfg.genotypes));
  cfg.iterations = static_cast<int>(env_long("ILINK_ITERATIONS", cfg.iterations));
  cfg.min_nonzero = static_cast<int>(env_long("ILINK_MIN_NZ", cfg.min_nonzero));
  cfg.max_nonzero = static_cast<int>(env_long("ILINK_MAX_NZ", cfg.max_nonzero));
  cfg.threshold = static_cast<int>(env_long("ILINK_THRESHOLD", cfg.threshold));
  return cfg;
}

inline apps::harness::RunOptions options_for(apps::harness::Mode mode,
                                             std::size_t nodes = bench_nodes()) {
  apps::harness::RunOptions o;
  o.mode = mode;
  o.nodes = nodes;
  o.flow = bench_flow();
  o.net = bench_net_config();
  o.policy.kind = bench_policy();
  o.policy.pins = bench_pin_sites();
  o.tmk.heap_bytes = static_cast<std::size_t>(env_long("HEAP_MB", 24)) << 20;
  return o;
}

inline std::string fmt1(double v) { return util::fmt_fixed(v, 1); }
inline std::string fmt2(double v) { return util::fmt_fixed(v, 2); }

inline void print_header(const char* title, const char* paper_ref, const char* note) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("  paper reference: %s\n", paper_ref);
  std::printf("  %s\n", note);
  std::printf("================================================================\n");
}

}  // namespace repseq::bench
