// Barnes-Hut demo: runs the N-body application on a simulated 16-node
// cluster in all three system configurations and prints a per-mode summary,
// including the tree statistics and the phase time breakdown.
//
// Build & run:   ./build/examples/barnes_hut_demo
#include <cstdio>

#include "apps/harness/run_modes.hpp"

using namespace repseq;
using apps::harness::Mode;

int main() {
  apps::bh::BhConfig cfg;
  cfg.bodies = 2048;
  cfg.steps = 3;

  std::printf("Barnes-Hut, %d bodies, %d timesteps, 16 simulated nodes\n\n", cfg.bodies,
              cfg.steps);
  std::printf("%-13s %10s %9s %9s %12s %14s\n", "mode", "total(s)", "seq(s)", "par(s)",
              "par faults", "par resp(ms)");

  double baseline = 0.0;
  for (Mode mode : {Mode::Sequential, Mode::Original, Mode::Optimized}) {
    apps::harness::RunOptions opt;
    opt.mode = mode;
    opt.nodes = 16;
    opt.tmk.heap_bytes = 16u << 20;
    const auto r = apps::harness::run_barnes_hut(opt, cfg);
    if (mode == Mode::Sequential) baseline = r.total_s;
    std::printf("%-13s %10.2f %9.2f %9.2f %12.0f %14.2f   speedup %.1fx\n",
                apps::harness::mode_name(mode), r.total_s, r.seq_s, r.par_s,
                r.par_requests_avg, r.par_response_ms, baseline / r.total_s);
  }

  std::printf("\nThe optimized system trades a slower (replicated) tree build for a\n"
              "contention-free force phase -- the paper's Table 1 in miniature.\n");
  return 0;
}
