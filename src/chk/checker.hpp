// Protocol-aware correctness analysis (the correctness counterpart to the
// observability layer in src/obs).
//
// Two checker families hang off hooks in the tmk runtime and the RSE
// controller, both zero-cost when off (a null pointer test on the hot paths):
//
//   * races    -- an LRC happens-before race detector.  Every read/write
//     barrier records an access event tagged with a *shadow* vector clock;
//     a conflicting pair unordered by the release-consistency happens-before
//     relation is a data race, reported with both access sites, nodes,
//     section sites and clocks.  The shadow clocks (one per node) advance at
//     EVERY end_interval() -- unlike the protocol's own clock, which only
//     bumps for dirty intervals -- so read-only epochs participate in the
//     order.  Sync payloads carry shadow snapshots in a `chk` field that is
//     excluded from wire accounting.
//
//   * protocol -- invariant oracles over the protocol itself: per-node
//     interval monotonicity, diff-apply causality (the PR 4 BcastUpdate bug
//     class, asserted at apply time), at-most-one-round-in-flight per
//     multicast shard, replica write-set agreement after replicated
//     sections, and write-notice coverage of every invalidation.
//
// Selection mirrors the obs layer: the REPSEQ_CHECK env axis (fail-loud,
// exit 2 on an unknown token) read at Cluster construction, or a forced
// ScopedConfig for tests.  Violations abort with a full diagnostic by
// default; tests run with abort_on_violation=false and inspect violations().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "tmk/gaddr.hpp"
#include "tmk/interval.hpp"
#include "tmk/vector_clock.hpp"

namespace repseq::tmk {
class Cluster;
class NodeRuntime;
struct DiffPacket;
}  // namespace repseq::tmk

namespace repseq::chk {

enum class Cat : std::uint8_t {
  Races = 1 << 0,
  Protocol = 1 << 1,
};
inline constexpr std::uint8_t kAllCats = 0x03;

/// Parses a REPSEQ_CHECK value ("races,protocol" / "all").  Returns nullopt
/// on an unknown token and reports it through `bad_token`.
[[nodiscard]] std::optional<std::uint8_t> parse_mask(const char* value, std::string* bad_token);

/// Reads REPSEQ_CHECK from the environment; unset/empty means no checking.
/// An unknown token prints the offending value plus the accepted set and
/// exits 2 (same contract as the other REPSEQ_* env axes).
[[nodiscard]] std::uint8_t mask_from_env();

struct Config {
  std::uint8_t mask = 0;
  /// Print the diagnostic and abort on the first violation (the production
  /// setting: a failed invariant means nothing downstream is trustworthy).
  /// Tests flip this off and read violations() instead.
  bool abort_on_violation = true;
};

/// Overrides the env axis for the duration of a scope, so tests configure
/// checking BEFORE constructing the Cluster that snapshots the config.
class ScopedConfig {
 public:
  ScopedConfig(std::uint8_t mask, bool abort_on_violation = false);
  ~ScopedConfig();
  ScopedConfig(const ScopedConfig&) = delete;
  ScopedConfig& operator=(const ScopedConfig&) = delete;
};

/// The configuration a new Cluster should use: the forced ScopedConfig when
/// one is live, the environment otherwise.
[[nodiscard]] Config effective_config();

/// Deliberate protocol mutations for oracle tests: each breaks exactly the
/// invariant its matching checker asserts, proving the oracle actually
/// fires (a checker that cannot fail verifies nothing).
enum class Mutation : std::uint8_t {
  None,
  /// end_interval drops the last page from the published record's write
  /// notices (the local state stays truthful) -- remote copies are never
  /// invalidated and the write-notice-coverage oracle must fire.
  SuppressWriteNotice,
  /// apply_packets_causally reverses its causally-sorted batch -- the
  /// diff-apply-causality oracle must fire on the first stale apply.
  ReorderDiffApply,
};
extern Mutation g_test_mutation;

class ScopedMutation {
 public:
  explicit ScopedMutation(Mutation m) { g_test_mutation = m; }
  ~ScopedMutation() { g_test_mutation = Mutation::None; }
  ScopedMutation(const ScopedMutation&) = delete;
  ScopedMutation& operator=(const ScopedMutation&) = delete;
};

struct Violation {
  std::string checker;  // registry label: "race", "diff-apply-causality", ...
  std::string detail;   // full multi-line diagnostic
};

/// One checker instance per Cluster (created at construction when the
/// effective mask is nonzero; NodeRuntime caches the pointer so every hook
/// is `if (chk_ != nullptr) [[unlikely]]` when checking is off).
class Checker {
 public:
  Checker(tmk::Cluster& cluster, Config cfg);

  [[nodiscard]] bool races() const { return (cfg_.mask & static_cast<std::uint8_t>(Cat::Races)) != 0; }
  [[nodiscard]] bool protocol() const {
    return (cfg_.mask & static_cast<std::uint8_t>(Cat::Protocol)) != 0;
  }

  // ---- shadow happens-before (races) ----

  /// The node's current shadow clock (stamped into sync payloads' chk field
  /// right after the releasing end_interval()).
  [[nodiscard]] const tmk::VectorClock& shadow(tmk::NodeId n) const { return shadow_[n]; }
  /// Called at the top of EVERY end_interval(), dirty or not.
  void on_release(tmk::NodeId n);
  /// Acquire edge: merge the releaser's shadow snapshot (no-op for an empty
  /// clock, i.e. when the sender ran without race checking).
  void on_acquire(tmk::NodeId n, const tmk::VectorClock& incoming);
  /// Master-side barrier edges: arrivals are buffered (the dispatcher may
  /// handle them mid-master-epoch; merging eagerly would falsely order
  /// slave writes before the master's in-progress accesses) and merged into
  /// the master's shadow only when the barrier completes.
  void buffer_barrier_arrival(std::uint64_t barrier_seq, const tmk::VectorClock& incoming);
  void on_barrier_complete(std::uint64_t barrier_seq);

  /// Access event from a read/write barrier.  Performs race detection,
  /// replica write-set recording (inside replicated sections) and the
  /// access-time write-notice-coverage check.
  void on_access(tmk::NodeRuntime& rt, tmk::GAddr addr, std::size_t bytes, bool write);

  // ---- protocol oracles ----

  /// A dirty interval committing at its owner, BEFORE any test mutation
  /// tampers with the published record (the checker knows the true write
  /// set; the protocol propagates the possibly-mutated one).
  void on_interval_commit(tmk::NodeRuntime& rt, const tmk::IntervalRecordPtr& rec);
  /// A diff packet about to be applied (already-applied batches excluded).
  void on_diff_apply(tmk::NodeRuntime& rt, const tmk::DiffPacket& pkt);
  /// A page flipping Invalid -> ReadOnly after its pending notices cleared.
  void on_page_revalidate(tmk::NodeRuntime& rt, tmk::PageId page);
  /// The node merged a sync payload (its protocol clock grew).
  void on_sync_merge(tmk::NodeId n);
  void on_section_enter(tmk::NodeRuntime& rt, std::uint32_t site);
  void on_section_exit(tmk::NodeRuntime& rt);
  void on_round_start(std::size_t shard, std::uint64_t round);
  void on_round_finish(std::size_t shard, std::uint64_t round);

  [[nodiscard]] const std::vector<Violation>& violations() const { return violations_; }

 private:
  using Ranges = std::vector<std::pair<std::uint32_t, std::uint32_t>>;  // sorted, disjoint
  /// The byte ranges one node touched on one page during one shadow epoch
  /// (reads and writes separately), plus the diagnostic context.
  struct EpochRanges {
    std::uint32_t epoch = 0;
    std::uint32_t site = 0;  // section site id, kNoSite outside sections
    std::shared_ptr<const tmk::VectorClock> clock;  // shadow at first access
    Ranges reads;
    Ranges writes;
    /// (owner, epoch) pairs this epoch already raced against -- one report
    /// per conflicting epoch pair, not one per overlapping element access.
    Ranges reported;
  };
  struct OwnerAccesses {
    std::vector<EpochRanges> epochs;  // ascending epoch order
  };
  struct PageAccesses {
    std::map<tmk::NodeId, OwnerAccesses> by_owner;
    std::size_t total_epochs = 0;  // GC trigger
  };

  void record_violation(const char* checker, std::string detail);
  [[nodiscard]] std::shared_ptr<const tmk::VectorClock> clock_snapshot(tmk::NodeId n);
  void race_check(tmk::NodeRuntime& rt, tmk::PageId page, std::uint32_t lo, std::uint32_t hi,
                  bool write);
  void coverage_check(tmk::NodeRuntime& rt, tmk::PageId page);
  void gc_page(PageAccesses& pa);
  [[nodiscard]] static std::string describe(tmk::NodeId owner, const EpochRanges& er, bool write);

  tmk::Cluster& cluster_;
  Config cfg_;
  std::vector<Violation> violations_;

  // races
  std::vector<tmk::VectorClock> shadow_;
  std::vector<std::shared_ptr<const tmk::VectorClock>> snapshot_;  // null = stale
  std::map<std::uint64_t, tmk::VectorClock> barrier_arrivals_;
  std::map<tmk::PageId, PageAccesses> accesses_;

  // interval monotonicity
  std::vector<std::uint32_t> last_index_;
  std::vector<tmk::VectorClock> last_vc_;

  // write-notice coverage: the TRUE write sets, page -> [(owner, index)],
  // recorded at commit before any mutation; plus a per-(node, page)
  // generation cache so the access-time check reruns only after the node's
  // knowledge changed (valid_vc only grows, so a pass stays a pass).
  std::map<tmk::PageId, std::vector<std::pair<tmk::NodeId, std::uint32_t>>> coverage_;
  std::vector<std::uint64_t> sync_gen_;
  std::vector<std::map<tmk::PageId, std::uint64_t>> coverage_checked_;

  // rounds
  struct ShardRound {
    bool in_flight = false;
    std::uint64_t active = 0;
    std::uint64_t last_started = 0;
  };
  std::map<std::size_t, ShardRound> rounds_;

  // replica write-set agreement
  struct SectionState {
    bool active = false;
    std::uint32_t site = 0;
    std::uint64_t section_no = 0;  // node-local counter; SPMD order aligns it
    std::map<tmk::PageId, std::vector<std::pair<std::uint32_t, std::uint32_t>>> writes;
  };
  struct SectionDigest {
    std::uint64_t hash = 0;
    tmk::NodeId first_node = 0;
    std::size_t reported = 0;
  };
  std::vector<SectionState> sections_;
  std::map<std::uint64_t, SectionDigest> section_digests_;

  friend class ScopedMutation;
};

}  // namespace repseq::chk
