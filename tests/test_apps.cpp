// Application-level tests: Barnes-Hut physics vs the O(N^2) reference,
// exact cross-mode agreement for both applications, and the paper's
// qualitative performance claims on small clusters.
#include <gtest/gtest.h>

#include <cmath>

#include "apps/harness/run_modes.hpp"

namespace repseq::apps {
namespace {

using harness::Mode;
using harness::RunOptions;
using harness::RunReport;

bh::BhConfig small_bh(int bodies = 512, int steps = 2) {
  bh::BhConfig cfg;
  cfg.bodies = bodies;
  cfg.steps = steps;
  return cfg;
}

ilink::IlinkConfig small_ilink() {
  ilink::IlinkConfig cfg;
  cfg.families = 2;
  cfg.children = 2;
  cfg.genotypes = 1024;
  cfg.iterations = 2;
  cfg.min_nonzero = 64;
  cfg.max_nonzero = 256;
  cfg.threshold = 96;
  return cfg;
}

RunOptions opts(Mode mode, std::size_t nodes) {
  RunOptions o;
  o.mode = mode;
  o.nodes = nodes;
  o.tmk.heap_bytes = 16u << 20;
  return o;
}

TEST(BarnesHutPhysics, TreeForcesApproximateDirectSummation) {
  // One step on one node with a small theta: tree forces must be close to
  // the O(N^2) direct sum.
  bh::BhConfig cfg = small_bh(256, 1);
  cfg.theta = 0.4;
  cfg.dt = 0.0;  // keep positions fixed; compare accelerations

  RunOptions o = opts(Mode::Sequential, 1);
  {
    auto world_bodies = bh::plummer_bodies(cfg.bodies, cfg.seed);
    const auto ref = bh::direct_forces(world_bodies, cfg.eps);

    tmk::Cluster cl(o.tmk, o.net, 1);
    rse::RseController rse(cl, rse::FlowControl::Chained);
    ompnow::Team team(cl, ompnow::SeqMode::MasterOnly, &rse);
    bh::BhWorld w = bh::setup_world(cl, cfg);
    std::vector<bh::Vec3> got(static_cast<std::size_t>(cfg.bodies));
    cl.run([&](tmk::NodeRuntime&) {
      bh::init_bodies(w, cfg);
      (void)bh::run_steps(cl, team, w, cfg);
      for (std::size_t i = 0; i < w.pos.size(); ++i) {
        got[i] = w.acc.load(i);
      }
    });

    double max_rel = 0;
    for (std::size_t i = 0; i < got.size(); ++i) {
      const double dx = got[i].x - ref[i].x;
      const double dy = got[i].y - ref[i].y;
      const double dz = got[i].z - ref[i].z;
      const double err = std::sqrt(dx * dx + dy * dy + dz * dz);
      const double mag = std::sqrt(ref[i].norm2()) + 1e-12;
      max_rel = std::max(max_rel, err / mag);
    }
    // theta = 0.4 keeps the multipole error small.
    EXPECT_LT(max_rel, 0.05);
  }
}

TEST(BarnesHut, AllModesProduceBitIdenticalTrajectories) {
  const bh::BhConfig cfg = small_bh(512, 2);
  const RunReport seq = harness::run_barnes_hut(opts(Mode::Sequential, 1), cfg);
  const RunReport orig = harness::run_barnes_hut(opts(Mode::Original, 4), cfg);
  const RunReport optm = harness::run_barnes_hut(opts(Mode::Optimized, 4), cfg);
  const RunReport bcast = harness::run_barnes_hut(opts(Mode::BroadcastSeq, 4), cfg);

  // The tree build and traversal order are deterministic and identical in
  // every mode, so the checksum must match exactly.
  EXPECT_EQ(seq.checksum, orig.checksum);
  EXPECT_EQ(seq.checksum, optm.checksum);
  EXPECT_EQ(seq.checksum, bcast.checksum);
  EXPECT_EQ(seq.aux, orig.aux);  // interaction counts too
  EXPECT_EQ(seq.aux, optm.aux);
}

TEST(BarnesHut, OptimizedEliminatesPostSequentialContention) {
  const bh::BhConfig cfg = small_bh(2048, 2);
  const RunReport orig = harness::run_barnes_hut(opts(Mode::Original, 8), cfg);
  const RunReport optm = harness::run_barnes_hut(opts(Mode::Optimized, 8), cfg);

  // Paper Table 1 shape: parallel time shrinks, sequential time grows.
  EXPECT_LT(optm.par_s, orig.par_s);
  EXPECT_GT(optm.seq_s, orig.seq_s);
  // Paper Table 2 shape: less parallel-section traffic, lower response
  // time; more sequential-section messages (chain acks et al.).
  EXPECT_LT(optm.par_kb, orig.par_kb);
  EXPECT_LT(optm.par_response_ms, orig.par_response_ms);
  EXPECT_GT(optm.seq_msgs, orig.seq_msgs);
  EXPECT_GT(optm.seq_null_acks, 0u);
  EXPECT_EQ(orig.seq_null_acks, 0u);
}

TEST(BarnesHut, OptimizedWinsOverall) {
  const bh::BhConfig cfg = small_bh(2048, 2);
  const RunReport orig = harness::run_barnes_hut(opts(Mode::Original, 8), cfg);
  const RunReport optm = harness::run_barnes_hut(opts(Mode::Optimized, 8), cfg);
  EXPECT_LT(optm.total_s, orig.total_s);
}

TEST(Ilink, AllModesProduceBitIdenticalLikelihood) {
  const ilink::IlinkConfig cfg = small_ilink();
  const RunReport seq = harness::run_ilink(opts(Mode::Sequential, 1), cfg);
  const RunReport orig = harness::run_ilink(opts(Mode::Original, 4), cfg);
  const RunReport optm = harness::run_ilink(opts(Mode::Optimized, 4), cfg);
  const RunReport bcast = harness::run_ilink(opts(Mode::BroadcastSeq, 4), cfg);

  EXPECT_EQ(seq.checksum, orig.checksum);
  EXPECT_EQ(seq.checksum, optm.checksum);
  EXPECT_EQ(seq.checksum, bcast.checksum);
  EXPECT_GT(seq.checksum, 0.0);
  EXPECT_EQ(seq.aux, orig.aux);  // same update counts (if-clause decisions)
}

TEST(Ilink, ConditionalParallelizationTakesBothPaths) {
  const ilink::IlinkConfig cfg = small_ilink();
  tmk::TmkConfig tc;
  tc.heap_bytes = 16u << 20;
  net::NetConfig nc;
  tmk::Cluster cl(tc, nc, 4);
  rse::RseController rse(cl, rse::FlowControl::Chained);
  ompnow::Team team(cl, ompnow::SeqMode::MasterOnly, &rse);
  ilink::IlinkWorld w = ilink::setup_world(cl, cfg);
  ilink::IlinkResult res;
  cl.run([&](tmk::NodeRuntime&) { res = ilink::run_program(cl, team, w, cfg); });
  EXPECT_GT(res.parallel_updates, 0u);
  EXPECT_GT(res.serial_updates, 0u);
}

TEST(Ilink, OptimizedCutsParallelTrafficSharply) {
  ilink::IlinkConfig cfg = small_ilink();
  cfg.families = 3;
  cfg.iterations = 3;
  const RunReport orig = harness::run_ilink(opts(Mode::Original, 8), cfg);
  const RunReport optm = harness::run_ilink(opts(Mode::Optimized, 8), cfg);

  // Paper Table 3/4 shape that holds at any scale: the parallel sections
  // lose almost all their traffic and time; the sequential sections pay
  // for it.  (The *total*-time crossover needs the paper's 32-node regime;
  // see OptimizedWinsTotalAtScale and bench/table3_ilink.)
  EXPECT_LT(optm.par_s, orig.par_s);
  EXPECT_LT(optm.par_kb, orig.par_kb / 2);
  EXPECT_GT(optm.seq_s, orig.seq_s);
  EXPECT_LT(optm.par_requests_avg, orig.par_requests_avg);
}

TEST(Ilink, OptimizedWinsTotalAtScale) {
  // At 24+ nodes the base system's pool fan-out contention dominates and
  // replication wins overall, as in the paper's 32-node evaluation.
  ilink::IlinkConfig cfg;
  cfg.families = 2;
  cfg.children = 3;
  cfg.genotypes = 4096;
  cfg.iterations = 2;
  cfg.min_nonzero = 256;
  cfg.max_nonzero = 1024;
  cfg.threshold = 192;
  const RunReport orig = harness::run_ilink(opts(Mode::Original, 24), cfg);
  const RunReport optm = harness::run_ilink(opts(Mode::Optimized, 24), cfg);
  EXPECT_LT(optm.total_s, orig.total_s)
      << "orig par=" << orig.par_s << " seq=" << orig.seq_s << " | opt par=" << optm.par_s
      << " seq=" << optm.seq_s;
}

TEST(Harness, SequentialModeSendsNoMessages) {
  const RunReport seq = harness::run_barnes_hut(opts(Mode::Sequential, 1), small_bh(256, 1));
  EXPECT_EQ(seq.total_msgs, 0u);
  EXPECT_EQ(seq.nodes, 1u);
}

TEST(Harness, ReportsAreDeterministic) {
  const bh::BhConfig cfg = small_bh(512, 1);
  const RunReport a = harness::run_barnes_hut(opts(Mode::Optimized, 4), cfg);
  const RunReport b = harness::run_barnes_hut(opts(Mode::Optimized, 4), cfg);
  EXPECT_EQ(a.total_s, b.total_s);
  EXPECT_EQ(a.total_msgs, b.total_msgs);
  EXPECT_EQ(a.checksum, b.checksum);
}

}  // namespace
}  // namespace repseq::apps
