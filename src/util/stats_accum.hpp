// Small online statistics accumulators used by the runtime's measurement
// layer (response times, queue depths) and by the benchmark harness.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace repseq::util {

/// Streaming mean / min / max / variance (Welford) accumulator, plus
/// streaming quantiles from a log2 histogram (8 sub-buckets per octave,
/// ~6% relative error) allocated lazily on first add so empty accumulators
/// stay a few words.  Exactly mergeable bucket-wise, like the moments.
class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
    if (buckets_.empty()) buckets_.assign(kBuckets, 0);
    ++buckets_[bucket_index(x)];
  }

  [[nodiscard]] std::uint64_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ == 0 ? 0.0 : mean_; }
  [[nodiscard]] double min() const { return n_ == 0 ? 0.0 : min_; }
  [[nodiscard]] double max() const { return n_ == 0 ? 0.0 : max_; }
  [[nodiscard]] double variance() const {
    return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
  }
  [[nodiscard]] double stddev() const { return std::sqrt(variance()); }

  /// Streaming quantile estimate, q in [0, 1].  Walks the log2 histogram to
  /// the q-th rank and returns that bucket's geometric midpoint, clamped to
  /// the observed [min, max]; exact at the extremes, ~6% relative error in
  /// between (half a sub-bucket).
  [[nodiscard]] double percentile(double q) const {
    if (n_ == 0) return 0.0;
    if (q <= 0.0) return min_;
    if (q >= 1.0) return max_;
    const double target = q * static_cast<double>(n_ - 1);
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      cum += buckets_[i];
      if (static_cast<double>(cum) > target) {
        // Bucket 0 absorbs zero/negative/sub-range samples; its midpoint is
        // meaningless, so it reports the exact observed minimum instead.
        return i == 0 ? min_ : std::clamp(bucket_value(i), min_, max_);
      }
    }
    return max_;
  }

  [[nodiscard]] double p50() const { return percentile(0.50); }
  [[nodiscard]] double p95() const { return percentile(0.95); }
  [[nodiscard]] double p99() const { return percentile(0.99); }

  /// Merges another accumulator into this one (parallel reduction of stats).
  void merge(const Accumulator& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) {
      *this = o;
      return;
    }
    const std::uint64_t n = n_ + o.n_;
    const double delta = o.mean_ - mean_;
    const double mean = mean_ + delta * static_cast<double>(o.n_) / static_cast<double>(n);
    m2_ = m2_ + o.m2_ +
          delta * delta * static_cast<double>(n_) * static_cast<double>(o.n_) /
              static_cast<double>(n);
    mean_ = mean;
    n_ = n;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
    if (buckets_.empty()) buckets_.assign(kBuckets, 0);
    for (std::size_t i = 0; i < o.buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  }

 private:
  // Log2 histogram layout: exponents clamped to [kMinExp, kMaxExp), kSub
  // sub-buckets per octave from the mantissa.  Bucket 0 additionally absorbs
  // zero, negative, and sub-2^kMinExp values, which rank below everything
  // the layers actually record (times, bytes, counts are non-negative).
  static constexpr int kMinExp = -32;
  static constexpr int kMaxExp = 64;
  static constexpr std::size_t kSub = 8;
  static constexpr std::size_t kBuckets =
      static_cast<std::size_t>(kMaxExp - kMinExp) * kSub;

  [[nodiscard]] static std::size_t bucket_index(double x) {
    if (!(x > 0.0) || !std::isfinite(x)) return 0;
    int e = 0;
    const double m = std::frexp(x, &e);  // m in [0.5, 1)
    e = std::clamp(e, kMinExp, kMaxExp - 1);
    const auto sub = static_cast<std::size_t>((m - 0.5) * 2.0 * static_cast<double>(kSub));
    return static_cast<std::size_t>(e - kMinExp) * kSub + std::min(sub, kSub - 1);
  }

  [[nodiscard]] static double bucket_value(std::size_t i) {
    const int e = static_cast<int>(i / kSub) + kMinExp;
    const double m =
        0.5 + (static_cast<double>(i % kSub) + 0.5) / (2.0 * static_cast<double>(kSub));
    return std::ldexp(m, e);
  }

  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::vector<std::uint32_t> buckets_;
};

}  // namespace repseq::util
