// The discrete-event engine: owns the virtual clock, the event queue and the
// node fibers, and provides the blocking primitives (sleep / park / unpark)
// everything else is built from.
//
// Execution model: the engine pops the earliest event, advances the clock to
// its timestamp and runs its callback.  Callbacks either perform bookkeeping
// or unpark a fiber; unparked fibers run immediately (still at the current
// virtual instant) until they park again.  There is exactly one thread of
// host execution, so a fiber's code between yields is atomic with respect to
// every other fiber -- the simulated cluster's nondeterminism is entirely
// captured by virtual-time ordering, which is deterministic.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "sim/clock.hpp"
#include "sim/event_queue.hpp"
#include "sim/fiber.hpp"
#include "util/check.hpp"

namespace repseq::sim {

using FiberRef = Fiber*;

class Engine {
 public:
  Engine() = default;

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  [[nodiscard]] SimTime now() const { return now_; }

  /// Creates a fiber and marks it runnable at the current time.
  FiberRef spawn(std::string name, std::function<void()> fn,
                 std::size_t stack_bytes = Fiber::kDefaultStackBytes);

  /// Runs the simulation until no live events remain and no fiber is
  /// runnable.  Rethrows the first exception that escaped any fiber.
  /// Fibers still parked at exit are considered terminated (daemon fibers,
  /// e.g. request servers waiting for messages that will never come).
  void run();

  /// Schedules a callback `delay` from now.  May be called from fibers or
  /// from event callbacks.  Templated so the closure is constructed
  /// directly in its pooled event slot (see EventQueue::schedule).
  template <typename F>
  EventQueue::Handle schedule_in(SimDuration delay, F&& fn) {
    REPSEQ_CHECK(delay.ns >= 0, "negative delay");
    return events_.schedule(now_ + delay, std::forward<F>(fn));
  }
  template <typename F>
  EventQueue::Handle schedule_at(SimTime t, F&& fn) {
    REPSEQ_CHECK(t >= now_, "cannot schedule in the past");
    return events_.schedule(t, std::forward<F>(fn));
  }
  void cancel(EventQueue::Handle h) { events_.cancel(h); }

  // ---- fiber-side primitives (must be called from inside a fiber) ----

  /// Advances this fiber's virtual time by `d` (uninterruptible sleep).
  void sleep_for(SimDuration d);

  /// Parks the current fiber until some event calls unpark() on it.
  void park();

  /// Makes `f` runnable at the current virtual instant.  Callable from event
  /// callbacks or from other fibers.
  void unpark(FiberRef f);

  /// The fiber currently executing (nullptr from event callbacks).
  [[nodiscard]] FiberRef current_fiber() const { return Fiber::current(); }

  /// Total events executed; a cheap progress / determinism probe.
  [[nodiscard]] std::uint64_t events_executed() const { return events_executed_; }

  /// High-water mark of simultaneously live events (perf telemetry).
  [[nodiscard]] std::size_t peak_live_events() const { return events_.peak_live(); }

 private:
  void make_runnable(FiberRef f);
  void drain_runnable();

  SimTime now_{};
  EventQueue events_;
  std::vector<std::unique_ptr<Fiber>> fibers_;
  std::deque<FiberRef> runnable_;
  std::uint64_t events_executed_ = 0;
  bool running_ = false;
};

/// A parking slot used to build condition-like blocking: a fiber registers,
/// parks, and is woken either by signal() or by a timeout event.
class WaitToken {
 public:
  explicit WaitToken(Engine& eng) : eng_(eng), fiber_(eng.current_fiber()) {}

  /// Wakes the owner if it is still waiting.  Returns true when this call
  /// performed the wake (loser of signal/timeout races gets false).
  bool signal();

  /// Parks until signalled.  Returns true if signalled, false if the
  /// optional timeout expired first.  No timeout when `timeout.ns < 0`.
  bool wait(SimDuration timeout = SimDuration{-1});

 private:
  Engine& eng_;
  FiberRef fiber_;
  bool signalled_ = false;
  bool done_ = false;
};

}  // namespace repseq::sim
