// Integration tests for the TreadMarks-like consistency protocol running on
// the simulated cluster: visibility across fork/join and barriers, the
// multiple-writer merge, lazy diffs, lock-carried notices, contention, and
// determinism.
#include <gtest/gtest.h>

#include <vector>

#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

namespace repseq::tmk {
namespace {

struct Fixture {
  TmkConfig cfg;
  net::NetConfig ncfg;

  Fixture() {
    cfg.heap_bytes = 1u << 20;
  }

  std::unique_ptr<Cluster> make(std::size_t nodes) {
    return std::make_unique<Cluster>(cfg, ncfg, nodes);
  }
};

TEST(TmkRuntime, MasterWritesVisibleToSlavesAfterFork) {
  Fixture fx;
  auto cl = fx.make(4);
  auto data = ShArray<int>::alloc(*cl, 1024);
  std::vector<int> seen(4, 0);

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    // Every node reads the slice the master initialized.
    int sum = 0;
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.load(i);
    seen[rt.id()] = sum;
  });

  cl->run([&](NodeRuntime& rt) {
    for (std::size_t i = 0; i < data.size(); ++i) data.store(i, static_cast<int>(i));
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  const int expect = (1023 * 1024) / 2;
  for (int n = 0; n < 4; ++n) EXPECT_EQ(seen[n], expect) << "node " << n;
  // Slaves must have faulted pages in from the master.
  EXPECT_GT(cl->node(1).stats().par.page_faults, 0u);
}

TEST(TmkRuntime, SlaveWritesVisibleToMasterAfterJoin) {
  Fixture fx;
  auto cl = fx.make(4);
  auto data = ShArray<int>::alloc(*cl, 400);
  int master_sum = -1;

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    // Block partition: each node writes its own quarter.
    const std::size_t lo = rt.id() * 100;
    for (std::size_t i = lo; i < lo + 100; ++i) data.store(i, static_cast<int>(rt.id() + 1));
  });

  cl->run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
    int sum = 0;
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.load(i);
    master_sum = sum;
  });

  EXPECT_EQ(master_sum, 100 * (1 + 2 + 3 + 4));
}

TEST(TmkRuntime, MultipleWritersOnOnePageMergeByWord) {
  Fixture fx;
  auto cl = fx.make(4);
  // 256 ints fit in one 4KB page region: four writers share pages heavily.
  auto data = ShArray<int>::alloc(*cl, 256);
  std::vector<int> out(256, -1);

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    // Cyclic partition maximizes false sharing: adjacent elements belong to
    // different nodes.
    for (std::size_t i = rt.id(); i < data.size(); i += rt.node_count()) {
      data.store(i, static_cast<int>(1000 + i));
    }
  });

  cl->run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
    for (std::size_t i = 0; i < data.size(); ++i) out[i] = data.load(i);
  });

  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(1000 + i)) << "element " << i;
  }
}

TEST(TmkRuntime, BarrierMakesCrossSlaveWritesVisible) {
  Fixture fx;
  auto cl = fx.make(3);
  auto data = ShArray<int>::alloc(*cl, 300);
  std::vector<int> neighbor_sum(3, -1);

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    const std::size_t lo = rt.id() * 100;
    for (std::size_t i = lo; i < lo + 100; ++i) data.store(i, static_cast<int>(rt.id() + 1));
    rt.barrier(7);
    // Read the next node's stripe (written before the barrier).
    const std::size_t nlo = ((rt.id() + 1) % 3) * 100;
    int s = 0;
    for (std::size_t i = nlo; i < nlo + 100; ++i) s += data.load(i);
    neighbor_sum[rt.id()] = s;
  });

  cl->run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  EXPECT_EQ(neighbor_sum[0], 200);
  EXPECT_EQ(neighbor_sum[1], 300);
  EXPECT_EQ(neighbor_sum[2], 100);
}

TEST(TmkRuntime, RepeatedBarriersWithSameIdDoNotCollide) {
  Fixture fx;
  auto cl = fx.make(3);
  auto counter = ShArray<int>::alloc(*cl, 3);
  std::vector<int> final_val(3, 0);

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    for (int round = 0; round < 10; ++round) {
      counter.store(rt.id(), round + 1);
      rt.barrier(1);
      int s = 0;
      for (int n = 0; n < 3; ++n) s += counter.load(n);
      EXPECT_EQ(s, 3 * (round + 1));
      rt.barrier(1);
    }
    final_val[rt.id()] = counter.load(rt.id());
  });

  cl->run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });
  for (int n = 0; n < 3; ++n) EXPECT_EQ(final_val[n], 10);
}

TEST(TmkRuntime, LockProtectedCounterIsSequentiallyConsistent) {
  Fixture fx;
  auto cl = fx.make(4);
  auto counter = ShVar<int>::alloc(*cl);
  int final_value = -1;

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    for (int i = 0; i < 5; ++i) {
      rt.lock_acquire(3);
      counter.store(counter.load() + 1);
      rt.lock_release(3);
    }
  });

  cl->run([&](NodeRuntime& rt) {
    counter.store(0);
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
    final_value = counter.load();
  });

  EXPECT_EQ(final_value, 4 * 5);
}

TEST(TmkRuntime, LazyDiffsServeMultipleIntervals) {
  Fixture fx;
  auto cl = fx.make(2);
  auto data = ShArray<int>::alloc(*cl, 64);
  int sum_after = -1;

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    if (rt.id() == 1) {
      // Two separate intervals touching the same page: barrier in between,
      // no interleaving reader, so diffs stay lazy until the final read.
      data.store(0, 11);
      rt.barrier(2);
      data.store(1, 22);
      rt.barrier(2);
    } else {
      rt.barrier(2);
      rt.barrier(2);
    }
  });

  cl->run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
    sum_after = data.load(0) + data.load(1);
  });

  EXPECT_EQ(sum_after, 33);
}

TEST(TmkRuntime, InvalidationOfDirtyPagePreservesLocalWrites) {
  Fixture fx;
  auto cl = fx.make(2);
  auto data = ShArray<int>::alloc(*cl, 64);
  int v0 = -1;
  int v1 = -1;

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    // Both nodes write different words of the same page in the same
    // interval; each then reads the other's word after the barrier.
    data.store(rt.id(), static_cast<int>(100 + rt.id()));
    rt.barrier(9);
    if (rt.id() == 0) {
      v1 = data.load(1);
    } else {
      v0 = data.load(0);
    }
  });

  cl->run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  EXPECT_EQ(v0, 100);
  EXPECT_EQ(v1, 101);
}

TEST(TmkRuntime, StatsCountFaultsAndDiffTraffic) {
  Fixture fx;
  auto cl = fx.make(2);
  auto data = ShArray<int>::alloc(*cl, 2048);  // spans two pages
  const auto work = cl->register_work([&](NodeRuntime& rt) {
    if (rt.id() == 1) {
      for (std::size_t i = 0; i < data.size(); ++i) (void)data.load(i);
    }
  });

  cl->run([&](NodeRuntime& rt) {
    for (std::size_t i = 0; i < data.size(); ++i) data.store(i, 1);
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  const auto& s1 = cl->node(1).stats().par;
  EXPECT_EQ(s1.page_faults, 2u);
  EXPECT_EQ(s1.diff_requests, 2u);
  EXPECT_EQ(s1.response_ms.count(), 2u);
  EXPECT_GT(s1.response_ms.mean(), 0.0);
  // Diff traffic flowed: requests from node 1, replies from node 0.
  EXPECT_GT(cl->node(1).stats().par.diff_msgs_sent, 0u);
  EXPECT_GT(cl->node(0).stats().par.diff_bytes_sent, 0u);
}

TEST(TmkRuntime, ContentionRaisesResponseTime) {
  // Many nodes fault on distinct master-written pages simultaneously: the
  // master's dispatcher queue and uplink serialize the responses, so the
  // mean response time on 16 nodes must exceed the 2-node case (paper
  // Section 3).
  auto response_with_nodes = [](std::size_t nodes) {
    Fixture fx;
    auto cl = fx.make(nodes);
    auto data = ShArray<int>::alloc(*cl, 1024 * nodes);  // one page per node
    const auto work = cl->register_work([&](NodeRuntime& rt) {
      if (rt.id() != 0) {
        const std::size_t lo = rt.id() * 1024;
        int s = 0;
        for (std::size_t i = lo; i < lo + 1024; ++i) s += data.load(i);
        EXPECT_GT(s, 0);
      }
    });
    cl->run([&](NodeRuntime& rt) {
      for (std::size_t i = 0; i < data.size(); ++i) data.store(i, 1);
      rt.fork(work);
      cl->work(work)(rt);
      rt.join_master();
    });
    util::Accumulator all;
    for (std::size_t n = 1; n < nodes; ++n) {
      all.merge(cl->node(static_cast<NodeId>(n)).stats().par.response_ms);
    }
    return all.mean();
  };

  const double r2 = response_with_nodes(2);
  const double r16 = response_with_nodes(16);
  EXPECT_GT(r16, 2.0 * r2) << "r2=" << r2 << " r16=" << r16;
}

TEST(TmkRuntime, DeterministicVirtualTimeAcrossRuns) {
  auto run_once = [] {
    Fixture fx;
    auto cl = fx.make(5);
    auto data = ShArray<int>::alloc(*cl, 5000);
    const auto work = cl->register_work([&](NodeRuntime& rt) {
      const std::size_t chunk = data.size() / rt.node_count();
      const std::size_t lo = rt.id() * chunk;
      for (std::size_t i = lo; i < lo + chunk; ++i) data.store(i, static_cast<int>(i));
      rt.barrier(1);
      long sum = 0;
      for (std::size_t i = 0; i < data.size(); ++i) sum += data.load(i);
      EXPECT_GT(sum, 0);
    });
    const auto elapsed = cl->run([&](NodeRuntime& rt) {
      rt.fork(work);
      cl->work(work)(rt);
      rt.join_master();
    });
    return std::pair{elapsed.ns, cl->engine().events_executed()};
  };
  const auto a = run_once();
  const auto b = run_once();
  EXPECT_EQ(a.first, b.first);
  EXPECT_EQ(a.second, b.second);
}

TEST(TmkRuntime, SingleNodeClusterRunsWithoutMessages) {
  Fixture fx;
  auto cl = fx.make(1);
  auto data = ShArray<int>::alloc(*cl, 100);
  int sum = -1;
  cl->run([&](NodeRuntime& rt) {
    for (std::size_t i = 0; i < data.size(); ++i) data.store(i, 2);
    rt.barrier(0);
    sum = 0;
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.load(i);
  });
  EXPECT_EQ(sum, 200);
  EXPECT_EQ(cl->network().messages_sent(), 0u);
}

TEST(TmkRuntime, LossyNetworkRecoversThroughRetransmission) {
  Fixture fx;
  fx.ncfg.loss_probability = 0.05;
  fx.ncfg.loss_seed = 99;
  fx.cfg.request_timeout = sim::milliseconds(5);
  auto cl = fx.make(3);
  auto data = ShArray<int>::alloc(*cl, 3000);
  std::vector<long> sums(3, -1);

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    long s = 0;
    for (std::size_t i = 0; i < data.size(); ++i) s += data.load(i);
    sums[rt.id()] = s;
  });

  cl->run([&](NodeRuntime& rt) {
    for (std::size_t i = 0; i < data.size(); ++i) data.store(i, 3);
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
  });

  for (int n = 0; n < 3; ++n) EXPECT_EQ(sums[n], 9000) << "node " << n;
}

// Parameterized consistency sweep: random access schedules over varying node
// counts still satisfy the golden final image computed on one node.
class RandomScheduleProperty : public ::testing::TestWithParam<int> {};

TEST_P(RandomScheduleProperty, FinalImageMatchesOwnership) {
  const int nodes = GetParam();
  Fixture fx;
  auto cl = fx.make(nodes);
  constexpr std::size_t kElems = 2000;
  auto data = ShArray<int>::alloc(*cl, kElems);
  std::vector<int> got(kElems, -1);

  const auto work = cl->register_work([&](NodeRuntime& rt) {
    // Three rounds; in each round r, node n owns elements where
    // (i / 7 + r) % nodes == n, writing round-tagged values; barriers
    // separate rounds.
    for (int r = 0; r < 3; ++r) {
      for (std::size_t i = 0; i < kElems; ++i) {
        if ((i / 7 + static_cast<std::size_t>(r)) % rt.node_count() == rt.id()) {
          data.store(i, static_cast<int>(i * 10 + r));
        }
      }
      rt.barrier(4);
    }
  });

  cl->run([&](NodeRuntime& rt) {
    rt.fork(work);
    cl->work(work)(rt);
    rt.join_master();
    for (std::size_t i = 0; i < kElems; ++i) got[i] = data.load(i);
  });

  for (std::size_t i = 0; i < kElems; ++i) {
    EXPECT_EQ(got[i], static_cast<int>(i * 10 + 2)) << "element " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(NodeCounts, RandomScheduleProperty, ::testing::Values(2, 3, 4, 8));

}  // namespace
}  // namespace repseq::tmk
