// Observability-layer unit tests: tracer span handling (nesting, orphan
// repair, ring eviction), category filtering, the metrics registry's label
// canonicalization, and the Accumulator's streaming percentiles.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "util/stats_accum.hpp"

namespace repseq {
namespace {

sim::SimTime at(std::int64_t ns) { return sim::SimTime{ns}; }

/// Writes the tracer's buffer to a temp file and returns the JSON text.
std::string write_and_read() {
  const std::string& path = obs::tracer().path();
  obs::tracer().write();
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  std::remove(path.c_str());
  return ss.str();
}

std::string temp_trace_path(const char* tag) {
  return std::string("/tmp/repseq_test_obs_") + tag + ".json";
}

/// Counts non-overlapping occurrences of `needle` in `hay`.
std::size_t count_of(const std::string& hay, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = hay.find(needle); pos != std::string::npos;
       pos = hay.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(Tracer, DisabledByDefaultAndSingleBranchGuard) {
  obs::tracer().configure("", 0);
  EXPECT_FALSE(obs::tracer().active());
  EXPECT_FALSE(obs::enabled(obs::Cat::Sim));
  EXPECT_FALSE(obs::enabled(obs::Cat::Rse));
}

TEST(Tracer, SpansNestAndBalanceInOutput) {
  obs::tracer().configure(temp_trace_path("nest"));
  obs::tracer().begin(obs::Cat::Rse, at(100), 1, "app", "outer");
  obs::tracer().begin(obs::Cat::Tmk, at(200), 1, "app", "inner");
  obs::tracer().end(obs::Cat::Tmk, at(300), 1, "app");
  obs::tracer().end(obs::Cat::Rse, at(400), 1, "app");
  const std::string json = write_and_read();

  // Both spans appear, and the E events inherited their B's names so the
  // validator can match pairs.
  EXPECT_EQ(count_of(json, "\"name\":\"outer\""), 2u);
  EXPECT_EQ(count_of(json, "\"name\":\"inner\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 2u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 2u);
  // Inner closes before outer (LIFO): the E at 300 ns precedes the one at
  // 400 ns (ts renders in microseconds).
  ASSERT_NE(json.find("\"ts\":0.300"), std::string::npos);
  EXPECT_LT(json.find("\"ts\":0.300"), json.find("\"ts\":0.400"));
}

TEST(Tracer, UnclosedSpanIsRepairedAndOrphanEndDropped) {
  obs::tracer().configure(temp_trace_path("repair"));
  obs::tracer().end(obs::Cat::Rse, at(50), 1, "app");  // orphan E: dropped
  obs::tracer().begin(obs::Cat::Rse, at(100), 1, "app", "dangling");
  obs::tracer().instant(obs::Cat::Rse, at(500), 1, "app", "last");
  const std::string json = write_and_read();

  // The dangling B gets a synthetic E at the final timestamp; the orphan E
  // (no matching B) never reaches the output.
  EXPECT_EQ(count_of(json, "\"ph\":\"B\""), 1u);
  EXPECT_EQ(count_of(json, "\"ph\":\"E\""), 1u);
  EXPECT_EQ(count_of(json, "\"name\":\"dangling\""), 2u);
  EXPECT_EQ(count_of(json, "\"ts\":0.050"), 0u);
}

TEST(Tracer, CategoryFilterMasksRecording) {
  obs::tracer().configure(temp_trace_path("filter"),
                          static_cast<std::uint8_t>(obs::Cat::Net));
  EXPECT_TRUE(obs::enabled(obs::Cat::Net));
  EXPECT_FALSE(obs::enabled(obs::Cat::Sim));
  EXPECT_FALSE(obs::enabled(obs::Cat::Tmk));
  EXPECT_FALSE(obs::enabled(obs::Cat::Rse));

  // Hooks guard on enabled(); a well-behaved caller never records a masked
  // category, so only the net instant lands in the file.
  if (obs::enabled(obs::Cat::Net)) {
    obs::tracer().instant(obs::Cat::Net, at(10), 1, "net", "frame");
  }
  if (obs::enabled(obs::Cat::Tmk)) {
    obs::tracer().instant(obs::Cat::Tmk, at(20), 1, "tmk", "fault");
  }
  const std::string json = write_and_read();
  EXPECT_EQ(count_of(json, "\"name\":\"frame\""), 1u);
  EXPECT_EQ(count_of(json, "\"name\":\"fault\""), 0u);
  EXPECT_EQ(count_of(json, "\"cat\":\"net\""), 1u);
}

TEST(Tracer, ArgsAndProcessMetadataAppear) {
  obs::tracer().configure(temp_trace_path("args"));
  obs::tracer().set_process_name(0, "cluster");
  obs::tracer().set_process_name(3, "node-2");
  obs::tracer().instant(obs::Cat::Rse, at(1000), 3, "policy", "decision",
                        {{"site", 2.0}, {"cost_master_only", 1.5}});
  const std::string json = write_and_read();
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"cluster\""), std::string::npos);
  EXPECT_NE(json.find("\"node-2\""), std::string::npos);
  EXPECT_NE(json.find("\"site\":2"), std::string::npos);
  EXPECT_NE(json.find("\"cost_master_only\":1.5"), std::string::npos);
  // ts is emitted in microseconds: 1000 ns -> 1.000.
  EXPECT_NE(json.find("\"ts\":1.000"), std::string::npos);
}

TEST(Tracer, RingEvictionDropsOldestAndCounts) {
  obs::tracer().configure(temp_trace_path("evict"));
  const std::size_t cap = obs::Tracer::kSlabEvents * obs::Tracer::kMaxSlabsPerProcess;
  for (std::size_t i = 0; i < cap + obs::Tracer::kSlabEvents; ++i) {
    obs::tracer().instant(obs::Cat::Sim, at(static_cast<std::int64_t>(i)), 1, "t", "e");
  }
  EXPECT_EQ(obs::tracer().slabs_dropped(), 1u);
  EXPECT_EQ(obs::tracer().event_count(), cap);
  obs::tracer().configure("", 0);  // discard without writing the ~1M events
}

TEST(Registry, LabelOrderIsCanonical) {
  obs::Registry reg;
  reg.counter("decisions", {{"site", "1"}, {"strategy", "replicated"}}).inc();
  reg.counter("decisions", {{"strategy", "replicated"}, {"site", "1"}}).inc(2);
  // Both orderings named the same series.
  EXPECT_EQ(reg.counter_value("decisions", {{"site", "1"}, {"strategy", "replicated"}}), 3u);
  EXPECT_EQ(reg.snapshot().size(), 1u);
}

TEST(Registry, DistinctLabelsAreDistinctSeries) {
  obs::Registry reg;
  reg.counter("decisions", {{"site", "1"}}).inc();
  reg.counter("decisions", {{"site", "2"}}).inc(5);
  reg.counter("decisions").inc(7);  // unlabeled is its own series too
  EXPECT_EQ(reg.counter_value("decisions", {{"site", "1"}}), 1u);
  EXPECT_EQ(reg.counter_value("decisions", {{"site", "2"}}), 5u);
  EXPECT_EQ(reg.counter_value("decisions"), 7u);
  EXPECT_EQ(reg.counter_value("decisions", {{"site", "3"}}), 0u);  // absent
  const auto sites = reg.label_values("decisions", "site");
  ASSERT_EQ(sites.size(), 2u);
  EXPECT_EQ(sites[0], "1");
  EXPECT_EQ(sites[1], "2");
}

TEST(Registry, GaugesAndHistogramsSnapshotDeterministically) {
  obs::Registry reg;
  reg.gauge("final_strategy", {{"site", "1"}}).set(2.0);
  obs::Histogram& h = reg.histogram("section_seconds", {{"strategy", "replicated"}});
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 2u);
  // snapshot() sorts by (name, labels): final_strategy before section_seconds.
  EXPECT_EQ(snap[0].name, "final_strategy");
  EXPECT_EQ(snap[0].gauge_value, 2.0);
  EXPECT_EQ(snap[1].name, "section_seconds");
  ASSERT_NE(snap[1].hist, nullptr);
  EXPECT_EQ(snap[1].hist->count(), 100u);
  EXPECT_NEAR(snap[1].hist->percentile(0.5), 50.0, 50.0 * 0.08);
}

TEST(Accumulator, StreamingPercentilesApproximateExactRanks) {
  util::Accumulator a;
  for (int i = 1; i <= 10000; ++i) a.add(static_cast<double>(i));
  // Log-bucketed estimate: within ~8% of the exact rank statistic.
  EXPECT_NEAR(a.p50(), 5000.0, 5000.0 * 0.08);
  EXPECT_NEAR(a.p95(), 9500.0, 9500.0 * 0.08);
  EXPECT_NEAR(a.p99(), 9900.0, 9900.0 * 0.08);
  // Extremes are exact (clamped to observed min/max).
  EXPECT_EQ(a.percentile(0.0), 1.0);
  EXPECT_EQ(a.percentile(1.0), 10000.0);
}

TEST(Accumulator, PercentileMergeMatchesSingleStream) {
  util::Accumulator lo;
  util::Accumulator hi;
  util::Accumulator all;
  for (int i = 1; i <= 5000; ++i) {
    lo.add(i);
    all.add(i);
  }
  for (int i = 5001; i <= 10000; ++i) {
    hi.add(i);
    all.add(i);
  }
  lo.merge(hi);
  EXPECT_EQ(lo.count(), all.count());
  EXPECT_EQ(lo.percentile(0.5), all.percentile(0.5));
  EXPECT_EQ(lo.percentile(0.99), all.percentile(0.99));
}

TEST(Accumulator, NonPositiveValuesRankLowest) {
  util::Accumulator a;
  a.add(0.0);
  a.add(-3.0);
  for (int i = 0; i < 98; ++i) a.add(100.0);
  // The two non-positive samples occupy the lowest ranks (clamped to min).
  EXPECT_EQ(a.percentile(0.0), -3.0);
  EXPECT_NEAR(a.p95(), 100.0, 100.0 * 0.08);
}

}  // namespace
}  // namespace repseq
