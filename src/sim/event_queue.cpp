#include "sim/event_queue.hpp"

#include "util/check.hpp"

namespace repseq::sim {

EventQueue::Handle EventQueue::schedule(SimTime t, Callback fn) {
  auto e = std::make_shared<Entry>(Entry{t, next_seq_++, std::move(fn), false});
  heap_.push(e);
  ++live_;
  return e;
}

void EventQueue::cancel(const Handle& h) {
  if (h && !h->cancelled) {
    h->cancelled = true;
    --live_;
  }
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && heap_.top()->cancelled) {
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  drop_cancelled();
  REPSEQ_CHECK(!heap_.empty(), "next_time() on empty event queue");
  return heap_.top()->time;
}

EventQueue::Handle EventQueue::pop() {
  drop_cancelled();
  REPSEQ_CHECK(!heap_.empty(), "pop() on empty event queue");
  Handle e = heap_.top();
  heap_.pop();
  --live_;
  return e;
}

}  // namespace repseq::sim
