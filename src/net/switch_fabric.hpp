// Output-queued store-and-forward Ethernet switch model for unicast traffic.
//
// Each destination port is a serializing resource: back-to-back frames for
// the same destination queue behind each other at link rate.  This is the
// second half of the paper's contention story -- when N-1 nodes request
// diffs from the master at once, the *responses* also serialize on the
// master's uplink (modeled by Nic::reserve_uplink) while the *requests*
// arrive effectively in parallel on distinct input ports.
#pragma once

#include <vector>

#include "net/message.hpp"
#include "net/net_config.hpp"
#include "sim/clock.hpp"
#include "sim/engine.hpp"

namespace repseq::net {

class SwitchFabric {
 public:
  SwitchFabric(sim::Engine& eng, const NetConfig& cfg, std::size_t ports)
      : eng_(eng), cfg_(cfg), port_free_(ports) {}

  /// Schedules the switch->destination leg for a frame whose last byte
  /// arrived at the switch at `arrival`.  Returns the delivery completion
  /// time at the destination NIC.
  sim::SimTime forward(NodeId dst, std::size_t wire_bytes, sim::SimTime arrival);

 private:
  sim::Engine& eng_;
  const NetConfig& cfg_;
  std::vector<sim::SimTime> port_free_;
};

}  // namespace repseq::net
