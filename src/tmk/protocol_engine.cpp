#include "tmk/protocol_engine.hpp"

#include "util/check.hpp"

namespace repseq::tmk {

void ProtocolEngine::on(MsgKind kind, Handler h) {
  const auto key = static_cast<std::uint32_t>(kind);
  REPSEQ_CHECK(!handlers_.contains(key),
               "duplicate handler registration for message kind " + std::to_string(key));
  handlers_.emplace(key, std::move(h));
}

bool ProtocolEngine::dispatch(NodeRuntime& rt, const net::Message& msg) const {
  auto it = handlers_.find(msg.kind);
  if (it == handlers_.end()) return false;
  it->second(rt, msg);
  return true;
}

}  // namespace repseq::tmk
