// Contention explorer: a synthetic hot-spot workload that makes the paper's
// Section 3 visible.  The master writes K pages in a sequential section;
// all other nodes then read disjoint slices simultaneously.  The tool
// prints, for growing cluster sizes, the average and worst diff-request
// response time and an ASCII bar of the master's service backlog effect.
//
// Build & run:   ./build/examples/contention_explorer
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "ompnow/team.hpp"
#include "rse/controller.hpp"
#include "tmk/access.hpp"
#include "tmk/runtime.hpp"

using namespace repseq;

namespace {

struct Sample {
  double avg_ms;
  double max_ms;
};

Sample probe(std::size_t nodes, bool replicated, const net::NetConfig& ncfg) {
  tmk::TmkConfig cfg;
  cfg.heap_bytes = 8u << 20;
  tmk::Cluster cl(cfg, ncfg, nodes);
  rse::RseController rse(cl, rse::FlowControl::Chained);
  ompnow::Team team(cl, replicated ? ompnow::SeqMode::Replicated : ompnow::SeqMode::MasterOnly,
                    &rse);

  constexpr std::size_t kIntsPerPage = 4096 / sizeof(int);
  const std::size_t elems = 64 * kIntsPerPage;  // 64 hot pages
  auto data = tmk::ShArray<int>::alloc(cl, elems, /*page_aligned=*/true);

  cl.run([&](tmk::NodeRuntime&) {
    team.sequential([&](const ompnow::Ctx&) {
      for (std::size_t i = 0; i < elems; ++i) data.store(i, static_cast<int>(i));
    });
    team.parallel([&](const ompnow::Ctx& ctx) {
      const auto r = ompnow::block_range(0, static_cast<long>(elems), ctx.tid, ctx.nthreads);
      long sum = 0;
      for (long i = r.lo; i < r.hi; ++i) sum += data.load(static_cast<std::size_t>(i));
      if (sum < 0) std::abort();  // keep the loop alive
    });
  });

  util::Accumulator acc;
  for (net::NodeId n = 0; n < nodes; ++n) {
    acc.merge(cl.node(n).stats().par.response_ms);
  }
  return {acc.mean(), acc.max()};
}

}  // namespace

int main(int argc, char** argv) {
  net::NetConfig ncfg;
  if (argc > 1) {
    const auto kind = net::parse_transport(argv[1]);
    if (!kind) {
      std::fprintf(stderr, "usage: %s [hub|tree|direct|sharded] [shards]\n", argv[0]);
      return 2;
    }
    ncfg.transport = *kind;
  }
  if (argc > 2) {
    const long shards = std::atol(argv[2]);
    if (shards < 1) {
      std::fprintf(stderr, "shard count must be >= 1, got '%s'\n", argv[2]);
      return 2;
    }
    ncfg.hub_shards = static_cast<std::size_t>(shards);
  }
  std::printf("Hot-spot response time vs cluster size (64 master-written pages)\n");
  if (ncfg.transport == net::TransportKind::ShardedHub) {
    std::printf("transport: %s (%zu shards)\n\n", net::transport_name(ncfg.transport),
                ncfg.hub_shards);
  } else {
    std::printf("transport: %s\n\n", net::transport_name(ncfg.transport));
  }
  std::printf("%6s | %-28s | %-28s\n", "nodes", "base avg/max response (ms)",
              "replicated avg/max (ms)");
  std::printf("-------+------------------------------+-----------------------------\n");
  for (std::size_t nodes : {2, 4, 8, 16, 24, 32}) {
    const Sample base = probe(nodes, false, ncfg);
    const Sample repl = probe(nodes, true, ncfg);
    const int bar = std::min(24, static_cast<int>(base.avg_ms * 4.0));
    std::printf("%6zu | %6.2f / %-7.2f %-12s | %6.2f / %.2f\n", nodes, base.avg_ms,
                base.max_ms, std::string(static_cast<std::size_t>(bar), '#').c_str(),
                repl.avg_ms, repl.max_ms);
  }
  std::printf("\nBase-system response time grows with the requester count (FIFO service\n"
              "at the master, paper Section 3); replication removes those faults.\n");
  return 0;
}
