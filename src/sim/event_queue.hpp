// Cancellable event queue for the discrete-event engine, built for zero
// steady-state allocation: entries live in a slab of pooled slots reused
// through a free list, callbacks are stored inline (no per-event
// std::function heap cell), and the ready structure is an implicit d-ary
// heap of 24-byte plain records.
//
// Ties on the timestamp are broken by insertion sequence number, which makes
// the event order -- and therefore the whole simulation -- deterministic,
// and makes the pop sequence independent of the heap's arity (the (time,
// seq) order is total).  REPSEQ_EVENTQ=binary|quad selects the arity at
// construction; the 4-ary default won the schedule/pop microbenchmark on
// the 256-node sweeps (shallower tree, sift-down touches one cache line of
// children per level).
//
// Cancellation is O(1) and eager on the slot, lazy on the heap: the slot's
// callback is destroyed and the slot recycled immediately (generation
// counters make the stale heap record inert), while the 24-byte heap record
// is skipped when it surfaces.  The CPU-preemption model cancels and
// reschedules wake events frequently, so cancel must not pay a heap
// removal.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/clock.hpp"

namespace repseq::sim {

/// Type-erased one-shot callback with inline storage sized so that every
/// event closure in the simulator (the largest captures a net::Message plus
/// a receiver list) fits without a heap allocation.  Oversized callables
/// still work -- they fall back to a heap cell -- but the hot paths are
/// audited to stay inline.
class EventFn {
 public:
  static constexpr std::size_t kInlineBytes = 104;

  EventFn() = default;

  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, EventFn>>>
  EventFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    emplace(std::forward<F>(f));
  }

  EventFn(EventFn&& o) noexcept { move_from(o); }
  EventFn& operator=(EventFn&& o) noexcept {
    if (this != &o) {
      reset();
      move_from(o);
    }
    return *this;
  }

  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;

  ~EventFn() { reset(); }

  template <typename F>
  void emplace(F&& f) {
    using D = std::decay_t<F>;
    reset();
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t)) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      invoke_ = [](void* p) { (*static_cast<D*>(p))(); };
      manage_ = [](Action a, void* p, void* other) {
        if (a == Action::Destroy) {
          static_cast<D*>(p)->~D();
        } else {
          ::new (other) D(std::move(*static_cast<D*>(p)));
          static_cast<D*>(p)->~D();
        }
      };
    } else {
      *reinterpret_cast<D**>(buf_) = new D(std::forward<F>(f));
      invoke_ = [](void* p) { (**static_cast<D**>(p))(); };
      manage_ = [](Action a, void* p, void* other) {
        if (a == Action::Destroy) {
          delete *static_cast<D**>(p);
        } else {
          *static_cast<D**>(other) = *static_cast<D**>(p);
        }
      };
    }
  }

  void reset() {
    if (manage_ != nullptr) {
      manage_(Action::Destroy, buf_, nullptr);
      manage_ = nullptr;
      invoke_ = nullptr;
    }
  }

  [[nodiscard]] explicit operator bool() const { return invoke_ != nullptr; }

  void operator()() { invoke_(buf_); }

 private:
  enum class Action : std::uint8_t { Destroy, MoveTo };

  void move_from(EventFn& o) noexcept {
    invoke_ = o.invoke_;
    manage_ = o.manage_;
    if (manage_ != nullptr) {
      manage_(Action::MoveTo, o.buf_, buf_);
      o.manage_ = nullptr;
      o.invoke_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  void (*invoke_)(void*) = nullptr;
  void (*manage_)(Action, void*, void*) = nullptr;
};

class EventQueue {
 public:
  using Callback = EventFn;

  /// Generation-counted reference to a scheduled event.  Handles are small
  /// values; a handle whose event already ran (or was cancelled, or whose
  /// slot was recycled) is simply inert -- cancel() on it is a no-op.
  struct Handle {
    std::uint32_t slot = kNil;
    std::uint32_t gen = 0;

    Handle() = default;
    Handle(std::uint32_t s, std::uint32_t g) : slot(s), gen(g) {}
    Handle(std::nullptr_t) {}  // NOLINT: ergonomic `handle = nullptr` reset
    Handle& operator=(std::nullptr_t) {
      slot = kNil;
      gen = 0;
      return *this;
    }
    [[nodiscard]] explicit operator bool() const { return slot != kNil; }
    [[nodiscard]] bool operator==(std::nullptr_t) const { return slot == kNil; }
    [[nodiscard]] bool operator!=(std::nullptr_t) const { return slot != kNil; }
  };

  /// An event surfaced by pop(): its timestamp and the callback, moved out
  /// of the pool (the slot is recycled before pop() returns, so the
  /// callback may freely schedule new events).
  struct Popped {
    SimTime time;
    EventFn fn;
  };

  /// Arity 2 or 4; defaults to the REPSEQ_EVENTQ environment axis
  /// (binary|quad), quad when unset.
  EventQueue();
  explicit EventQueue(std::size_t arity);

  /// Schedules `fn` to run at absolute time `t`.  Returns a handle usable
  /// with cancel().  The callback is constructed directly in its pooled
  /// slot; no allocation happens unless the slab or heap must grow.
  template <typename F>
  Handle schedule(SimTime t, F&& fn) {
    const std::uint32_t slot = acquire_slot();
    slots_[slot].fn.emplace(std::forward<F>(fn));
    const Handle h{slot, slots_[slot].gen};
    heap_.push_back(Item{t, next_seq_++, slot, h.gen});
    sift_up(heap_.size() - 1);
    ++live_;
    if (live_ > peak_live_) peak_live_ = live_;
    return h;
  }

  /// Cancels an event: O(1), safe to call twice or on a handle whose event
  /// already ran.  The callback is destroyed and the slot recycled
  /// immediately; the stale heap record is pruned when it surfaces.
  void cancel(Handle h);

  /// True when no live (non-cancelled) events remain.
  [[nodiscard]] bool empty() const;

  /// Time of the earliest live event.  Precondition: !empty().
  [[nodiscard]] SimTime next_time() const;

  /// Removes and returns the earliest live event.  Precondition: !empty().
  Popped pop();

  [[nodiscard]] std::size_t live_count() const { return live_; }
  /// High-water mark of simultaneously scheduled live events.
  [[nodiscard]] std::size_t peak_live() const { return peak_live_; }
  /// Total events ever scheduled (cancellations included).
  [[nodiscard]] std::uint64_t scheduled_total() const { return next_seq_; }
  [[nodiscard]] std::size_t arity() const { return arity_; }

 private:
  static constexpr std::uint32_t kNil = 0xffffffffu;

  struct Slot {
    EventFn fn;
    std::uint32_t gen = 0;
    std::uint32_t next_free = kNil;
  };

  /// One heap record.  `gen` pins the slot generation this record refers
  /// to; a mismatch means the event was cancelled and the record is dead.
  struct Item {
    SimTime time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t gen;

    [[nodiscard]] bool before(const Item& o) const {
      return time != o.time ? time < o.time : seq < o.seq;
    }
  };

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot);

  [[nodiscard]] bool item_dead(const Item& it) const { return slots_[it.slot].gen != it.gen; }

  /// Removes dead records from the heap top so that the public observers
  /// never see a cancelled head.  Called from const observers: the heap and
  /// pool are mutable because pruning is a pure cache-maintenance effect
  /// (live_ and the pop order are unchanged).
  void drop_cancelled() const;

  void sift_up(std::size_t i) const;
  void sift_down(std::size_t i) const;
  /// Removes the heap top (no slot bookkeeping).
  void heap_pop_top() const;

  std::size_t arity_;
  // mutable: drop_cancelled() prunes dead records from const observers.
  mutable std::vector<Item> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNil;
  std::uint64_t next_seq_ = 0;
  std::size_t live_ = 0;
  std::size_t peak_live_ = 0;
};

}  // namespace repseq::sim
