// An unbounded FIFO channel between fibers (message inboxes, reply slots).
// Mesa semantics: push wakes one waiter, waiters re-check the queue.
#pragma once

#include <deque>
#include <optional>
#include <utility>

#include "sim/engine.hpp"
#include "util/check.hpp"

namespace repseq::sim {

template <typename T>
class Channel {
 public:
  explicit Channel(Engine& eng) : eng_(eng) {}

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Enqueues a value; callable from fibers or event callbacks.
  void push(T v) {
    queue_.push_back(std::move(v));
    wake_one();
  }

  /// Blocks the calling fiber until a value is available.
  T pop() {
    while (queue_.empty()) {
      WaitToken tok(eng_);
      waiters_.push_back(&tok);
      tok.wait();
      remove_waiter(&tok);
    }
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Blocks up to `timeout`; empty optional on expiry.
  std::optional<T> pop_with_timeout(SimDuration timeout) {
    const SimTime deadline = eng_.now() + timeout;
    while (queue_.empty()) {
      const SimDuration remaining = deadline - eng_.now();
      if (remaining.ns <= 0) return std::nullopt;
      WaitToken tok(eng_);
      waiters_.push_back(&tok);
      const bool signalled = tok.wait(remaining);
      remove_waiter(&tok);
      if (!signalled && queue_.empty()) return std::nullopt;
    }
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  /// Non-blocking take.
  std::optional<T> try_pop() {
    if (queue_.empty()) return std::nullopt;
    T v = std::move(queue_.front());
    queue_.pop_front();
    return v;
  }

  [[nodiscard]] std::size_t size() const { return queue_.size(); }
  [[nodiscard]] bool empty() const { return queue_.empty(); }

 private:
  void wake_one() {
    // Signal the first waiter that accepts the wake (signal() is a no-op on
    // tokens that already timed out).
    for (WaitToken* w : waiters_) {
      if (w->signal()) return;
    }
  }

  void remove_waiter(WaitToken* tok) {
    for (auto it = waiters_.begin(); it != waiters_.end(); ++it) {
      if (*it == tok) {
        waiters_.erase(it);
        return;
      }
    }
  }

  Engine& eng_;
  std::deque<T> queue_;
  std::deque<WaitToken*> waiters_;
};

}  // namespace repseq::sim
