#include "tmk/diff.hpp"

#include <cstring>

#include "util/check.hpp"

namespace repseq::tmk {

Diff Diff::create(std::span<const std::byte> twin, std::span<const std::byte> current) {
  REPSEQ_CHECK(twin.size() == current.size(), "twin/page size mismatch");
  REPSEQ_CHECK(twin.size() % 4 == 0, "page size must be a multiple of 4");
  const std::size_t words = twin.size() / 4;

  Diff d;
  std::size_t w = 0;
  while (w < words) {
    // Skip unchanged words.
    while (w < words && std::memcmp(twin.data() + 4 * w, current.data() + 4 * w, 4) == 0) {
      ++w;
    }
    if (w >= words) break;
    Run run;
    run.word_index = static_cast<std::uint32_t>(w);
    while (w < words && std::memcmp(twin.data() + 4 * w, current.data() + 4 * w, 4) != 0) {
      std::uint32_t v;
      std::memcpy(&v, current.data() + 4 * w, 4);
      run.values.push_back(v);
      ++w;
    }
    d.runs_.push_back(std::move(run));
  }
  return d;
}

void Diff::apply(std::span<std::byte> page) const {
  for (const Run& r : runs_) {
    REPSEQ_CHECK((r.word_index + r.values.size()) * 4 <= page.size(), "diff run out of range");
    std::memcpy(page.data() + 4 * r.word_index, r.values.data(), 4 * r.values.size());
  }
}

std::size_t Diff::word_count() const {
  std::size_t n = 0;
  for (const Run& r : runs_) n += r.values.size();
  return n;
}

std::size_t Diff::wire_bytes() const {
  // 12-byte header (page id, owner, interval) + 8 bytes per run + payload.
  return 12 + 8 * runs_.size() + 4 * word_count();
}

}  // namespace repseq::tmk
